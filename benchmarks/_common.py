"""Shared helpers for the benchmark harness.

Every bench prints the experiment table it reproduces and also writes it to
``benchmarks/results/<name>.txt`` so the tables survive pytest's output
capture (EXPERIMENTS.md is assembled from those files).
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, table) -> None:
    """Print a table and persist it under benchmarks/results/."""
    rendered = table.render()
    print()
    print(rendered)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(rendered + "\n")


def run_once(benchmark, fn):
    """Time *fn* exactly once (experiment sweeps are too slow for rounds)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
