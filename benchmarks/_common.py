"""Shared helpers for the benchmark harness.

Every bench prints the experiment table it reproduces and also writes it to
``benchmarks/results/<name>.txt`` so the tables survive pytest's output
capture (EXPERIMENTS.md is assembled from those files).
"""

from __future__ import annotations

import os
import tempfile

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, table) -> None:
    """Print a table and persist it under benchmarks/results/.

    The write is atomic (temp file in the same directory + ``os.replace``):
    concurrent bench/sweep runs may race on the same result name, and a
    reader — or a crashed writer — must never observe a truncated file.
    """
    rendered = table.render()
    print()
    print(rendered)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=RESULTS_DIR, prefix=f".{name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(rendered + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, os.path.join(RESULTS_DIR, f"{name}.txt"))
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def run_once(benchmark, fn):
    """Time *fn* exactly once (experiment sweeps are too slow for rounds)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
