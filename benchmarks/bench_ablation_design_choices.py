"""Ablation benches for the design choices DESIGN.md calls out.

**A1 — bottom-up min-filling vs proportional load splitting.**  Footnote 1
of the paper explains why (IP-2) is not simply augmented with fractional
share variables ``y_{αij}``: a proportional split of each set's volume over
its machines need not admit a valid schedule.  The ablation quantifies this:
on random feasible (IP-2) pairs, the naive split ``LOAD[i,α] = vol(α)/|α|``
overloads some machine (cumulative load > T) in a large fraction of
instances, while Algorithm 2's bottom-up min-filling never does
(Lemma IV.1).

**A2 — vertex vs non-vertex LP solutions for LST rounding.**  The rounding
of Section V needs *basic* solutions (pseudo-forest support).  Averaging two
distinct optimal vertices yields feasible non-basic solutions whose support
contains extra cycles; the ablation measures how often the rounding would be
impossible without re-solving.
"""

from fractions import Fraction

from _common import emit, run_once

from repro.analysis import Table
from repro.core.assignment import set_volumes
from repro.core.hierarchical import allocate_loads
from repro.rounding.pseudoforest import connected_components, is_pseudoforest
from repro.workloads import random_feasible_pair, rng_from_seed
from repro.workloads.generators import monotone_instance, random_laminar_family


def _naive_split_overloads(instance, assignment, T) -> bool:
    """True when the proportional split exceeds T on some machine."""
    volumes = set_volumes(instance, assignment)
    load = {i: Fraction(0) for i in instance.machines}
    for alpha, volume in volumes.items():
        share = volume / len(alpha)
        for i in alpha:
            load[i] += share
    return any(v > T for v in load.values())


def run_a1(trials: int = 60, seed: int = 314):
    rng = rng_from_seed(seed)
    rows = []
    for m in (4, 6, 8, 10):
        family = random_laminar_family(rng, m, split_probability=0.9)
        inst = monotone_instance(rng, family, n=2 * m)
        naive_bad = 0
        algo2_bad = 0
        for _ in range(trials):
            assignment, T = random_feasible_pair(rng, inst)
            if _naive_split_overloads(inst, assignment, T):
                naive_bad += 1
            allocation = allocate_loads(inst, assignment, T)  # raises on fail
            if any(v > T for v in allocation.tot_load.values()):
                algo2_bad += 1  # pragma: no cover - Lemma IV.1 forbids it
        rows.append((m, trials, naive_bad, algo2_bad))
    table = Table(
        "A1 — naive proportional split vs Algorithm 2 (overload frequency)",
        ["m", "trials", "naive split overloads", "Algorithm 2 overloads"],
    )
    for row in rows:
        table.add_row(*row)
    return rows, table


def run_a2(trials: int = 40, seed: int = 159):
    """Uniform-spread feasible solutions vs exact-simplex vertices.

    For near-identical machines, ``x_ij = 1/m`` is a perfectly feasible LP
    solution at the balanced horizon — but its support is the complete
    bipartite graph, which for n, m ≥ 3 has more edges than nodes, so the
    LST matching argument does not apply.  Vertex solutions from the exact
    simplex must always be pseudo-forests.
    """
    import numpy as np

    from repro.lp.solve import solve_lp
    from repro.rounding.lst import build_unrelated_lp

    rng = np.random.default_rng(seed)
    uniform_bad = 0
    vertex_bad = 0
    attempted = 0
    for _ in range(trials):
        n, m = int(rng.integers(3, 8)), int(rng.integers(3, 5))
        p_value = int(rng.integers(2, 10))
        p = {j: {i: p_value for i in range(m)} for j in range(n)}
        T = Fraction(n * p_value, m)
        if T < p_value:
            continue
        attempted += 1
        # The uniform spread is feasible: each machine load = n·p/m = T.
        uniform_edges = [
            (("job", j), ("machine", i)) for j in range(n) for i in range(m)
        ]
        if not is_pseudoforest(uniform_edges):
            uniform_bad += 1
        lp = build_unrelated_lp(p, T)
        vertex = solve_lp(lp, backend="exact")
        assert vertex.is_optimal
        vertex_edges = [
            (("job", j), ("machine", i))
            for (tag, i, j), v in vertex.values.items()
            if tag == "x" and 0 < v < 1
        ]
        if vertex_edges and not is_pseudoforest(vertex_edges):
            vertex_bad += 1  # pragma: no cover - basic solutions forbid it
    table = Table(
        "A2 — feasible-but-non-vertex LP solutions break the LST premise",
        ["trials", "uniform spread non-pseudoforest", "vertex non-pseudoforest"],
    )
    table.add_row(attempted, uniform_bad, vertex_bad)
    return (attempted, uniform_bad, vertex_bad), table


def test_ablation_a1_naive_split(benchmark):
    (rows, table) = run_once(benchmark, run_a1)
    emit("ablation_a1", table)
    # Algorithm 2 never overloads (Lemma IV.1); the naive split does, often.
    assert all(algo2 == 0 for _m, _t, _naive, algo2 in rows)
    assert sum(naive for _m, _t, naive, _a in rows) > 0


def test_ablation_a2_vertex_requirement(benchmark):
    (stats, table) = run_once(benchmark, run_a2)
    emit("ablation_a2", table)
    attempted, uniform_bad, vertex_bad = stats
    assert attempted > 0
    assert uniform_bad > 0     # the natural feasible solution breaks the premise
    assert vertex_bad == 0     # basic solutions never do
