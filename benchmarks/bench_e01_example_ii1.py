"""E01 — Example II.1: semi-partitioned optimum 2 vs unrelated collapse 3."""

from _common import emit, run_once

from repro.experiments import e01_example_ii1 as exp


def test_e01_example_ii1(benchmark):
    result = run_once(benchmark, exp.run)
    emit("e01", result.table)
    assert result.opt_semi == 2
    assert result.opt_collapse == 3
    assert result.T_lp == 2
