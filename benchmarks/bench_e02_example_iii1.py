"""E02 — Example III.1: Algorithm 1 reproduces the paper's schedule."""

from _common import emit, run_once

from repro.experiments import e02_example_iii1 as exp


def test_e02_example_iii1(benchmark):
    result = run_once(benchmark, exp.run)
    emit("e02", result.table)
    assert result.valid and result.makespan == 2
    assert result.migrations_of_global_job == 1
