"""E03 — Proposition III.2: migration/preemption bounds under load."""

from _common import emit, run_once

from repro.experiments import e03_migration_bounds as exp


def test_e03_migration_bounds(benchmark):
    result = run_once(
        benchmark,
        lambda: exp.run(machine_counts=(2, 3, 4, 6, 8, 12), trials=60, n_jobs=16),
    )
    emit("e03", result.table)
    for row in result.rows:
        assert row.within_bounds, row
