"""E04 — Theorem III.1: Algorithm 1 validity rate at scale."""

from _common import emit, run_once

from repro.experiments import e04_semi_partitioned_validity as exp


def test_e04_semi_partitioned_validity(benchmark):
    result = run_once(
        benchmark,
        lambda: exp.run(shapes=((8, 2), (16, 4), (32, 8), (64, 12)), trials=30),
    )
    emit("e04", result.table)
    assert result.all_valid
