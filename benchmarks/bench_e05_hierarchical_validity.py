"""E05 — Theorem IV.3 + Lemmas IV.1/IV.2: hierarchical scheduler at scale."""

from _common import emit, run_once

from repro.experiments import e05_hierarchical_validity as exp


def test_e05_hierarchical_validity(benchmark):
    result = run_once(
        benchmark,
        lambda: exp.run(machine_counts=(3, 4, 6, 8, 12, 16), trials=30, n_jobs=20),
    )
    emit("e05", result.table)
    assert result.all_valid
    assert result.lemma_iv2_holds
