"""E06 — Lemma V.1: push-down feasibility preservation at scale."""

from _common import emit, run_once

from repro.experiments import e06_pushdown as exp


def test_e06_pushdown(benchmark):
    result = run_once(
        benchmark,
        lambda: exp.run(machine_counts=(3, 4, 6, 8, 10), n_jobs=10),
    )
    emit("e06", result.table)
    assert result.lemma_holds
