"""E07 — Theorem V.2: empirical approximation ratios."""

from _common import emit, run_once

from repro.experiments import e07_two_approx_ratio as exp


def test_e07_two_approx_ratio(benchmark):
    result = run_once(
        benchmark,
        lambda: exp.run(
            shapes=((4, 3), (6, 3), (8, 4), (12, 5), (16, 6)),
            trials=8,
            exact_job_limit=8,
            backend="scipy",
        ),
    )
    emit("e07", result.table)
    assert result.bound_holds
