"""E08 — Example V.1: the gap series (2n−3)/(n−1) → 2."""

from _common import emit, run_once

from repro.experiments import e08_gap_family as exp


def test_e08_gap_family(benchmark):
    result = run_once(
        benchmark, lambda: exp.run(sizes=(3, 4, 5, 6, 8, 10, 12, 14))
    )
    emit("e08", result.table)
    assert result.matches_paper
