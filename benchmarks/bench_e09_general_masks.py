"""E09 — Section II: 8-approximation on non-laminar masks."""

from _common import emit, run_once

from repro.experiments import e09_general_masks as exp


def test_e09_general_masks(benchmark):
    result = run_once(
        benchmark,
        lambda: exp.run(
            shapes=((4, 3), (6, 4), (10, 5), (14, 6)), trials=10, backend="scipy"
        ),
    )
    emit("e09", result.table)
    assert result.bound_holds
