"""E10 — Theorem VI.1: Model 1 bicriteria rounding ratios."""

from _common import emit, run_once

from repro.experiments import e10_memory_model1 as exp


def test_e10_memory_model1(benchmark):
    result = run_once(
        benchmark,
        lambda: exp.run(
            shapes=(("semi", 6, 2), ("semi", 8, 4), ("clustered", 8, 4), ("clustered", 12, 6)),
            trials=6,
        ),
    )
    emit("e10", result.table)
    assert result.bounds_hold
