"""E11 — Theorem VI.3: Model 2 bicriteria vs σ = 2 + H_k."""

from _common import emit, run_once

from repro.experiments import e11_memory_model2 as exp


def test_e11_memory_model2(benchmark):
    result = run_once(
        benchmark,
        lambda: exp.run(configs=((2, 2, 4), (4, 2, 6), (8, 2, 8), (8, 3, 10)), trials=5),
    )
    emit("e11", result.table)
    assert result.bounds_hold
    assert all(r.fallback_drops == 0 for r in result.rows)
