"""E12 — scheduler classes (global/partitioned/clustered/semi/hierarchical)."""

from _common import emit, run_once

from repro.experiments import e12_scheduler_comparison as exp


def test_e12_scheduler_comparison(benchmark):
    result = run_once(benchmark, lambda: exp.run(n_jobs=7, trials=3))
    emit("e12", result.table)
    assert result.hierarchy_never_loses
