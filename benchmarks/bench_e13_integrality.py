"""E13 — integrality gaps: random instances + the R||Cmax gap family."""

from _common import emit, run_once

from repro.experiments import e13_integrality as exp


def test_e13_integrality(benchmark):
    result = run_once(
        benchmark, lambda: exp.run(trials=20, n=6, m=3, gap_ms=(2, 3, 4, 5, 6))
    )
    emit("e13", result.table)
    assert result.gaps_at_most_2
