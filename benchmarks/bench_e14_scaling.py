"""E14 — runtime scaling of the 2-approximation pipeline."""

from _common import emit, run_once

from repro.experiments import e14_scaling as exp


def test_e14_scaling(benchmark):
    result = run_once(
        benchmark,
        lambda: exp.run(shapes=((6, 3), (10, 4), (16, 6), (24, 8), (32, 10))),
    )
    emit("e14", result.table)
    assert all(r.ratio_vs_lp <= 2.0 + 1e-9 for r in result.rows)
