"""E15 — acceptance ratio vs utilization per scheduler class."""

from _common import emit, run_once

from repro.experiments import e15_schedulability as exp


def test_e15_schedulability(benchmark):
    result = run_once(
        benchmark,
        lambda: exp.run(
            utilizations=(0.5, 0.7, 0.8, 0.9, 0.95, 1.0),
            m=4,
            T_ref=30,
            trials=8,
        ),
    )
    emit("e15", result.table)
    assert result.hierarchy_dominates
    # Acceptance is non-increasing in utilization for the dominant class.
    curve = result.acceptance_curve("hierarchical")
    assert curve[0] >= curve[-1]
