"""E19 — analytic schedulability: verdict throughput and the zero-LP proof.

Two claims, both machine-checked:

1. **Zero LP solves.**  The whole analytic path — demand profiles, packing
   strategies, busy-window bounds, and the exact branch-and-bound truth it
   is soundness-checked against — runs under
   :func:`repro.lp.stats.collect_stats` and the recorded counters must be
   identically zero.  Any simplex work sneaking into the "no simulation,
   no LP" engine fails the bench (and, via the artifact, the CI perf gate).
2. **Throughput.**  Per-query wall-clock of ``analytic_schedulable`` vs
   ``exact_schedulable_within`` on the same workloads — the polynomial
   bounds should answer in a fraction of the search's time, which is the
   point of having them in the admission pre-filter.

Script mode writes ``BENCH_e19_analytic.json`` (counters + verdict tallies
+ timing), which CI uploads next to the LP perf-gate artifact::

    PYTHONPATH=src python benchmarks/bench_e19_analytic.py --out /tmp/analytic.json

Exit status is 1 when any LP counter is nonzero or a verdict disagrees
with the exact truth (``exp.run`` raises ``AnalyticSoundnessError``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.baselines.restrictions import exact_schedulable_within  # noqa: E402
from repro.experiments import e19_analytic_vs_simulated as exp  # noqa: E402
from repro.lp.stats import collect_stats  # noqa: E402
from repro.rta import analytic_schedulable  # noqa: E402
from repro.workloads import derive_seed, rng_from_seed  # noqa: E402
from repro.workloads.families import make_topology  # noqa: E402
from repro.workloads.generators import utilization_workload  # noqa: E402

T_REF = 20
#: Grid for the throughput leg (class × utilization × trials queries).
THROUGHPUT_CLASSES = ("global", "partitioned", "hierarchical")
THROUGHPUT_UTILIZATIONS = (0.5, 0.8, 0.95, 1.05)
THROUGHPUT_TRIALS = 4


def run(trials: int = 3) -> Dict:
    """Run E19 plus a timing leg, all inside one LP-counter scope."""
    with collect_stats() as stats:
        result = exp.run(
            utilizations=(0.5, 0.8, 0.95),
            scheduler_classes=("global", "partitioned", "hierarchical"),
            topologies=("flat4", "clustered4x2"),
            T_ref=T_REF,
            trials=trials,
        )

        # Throughput: identical workloads through both deciders.
        topology = make_topology("flat4")
        analytic_s = exact_s = 0.0
        queries = 0
        tally = {"SCHEDULABLE": 0, "UNSCHEDULABLE": 0, "UNKNOWN": 0}
        for u in THROUGHPUT_UTILIZATIONS:
            for trial in range(THROUGHPUT_TRIALS):
                seed = derive_seed(190, "bench-e19", str(u), trial)
                inst = utilization_workload(
                    rng_from_seed(seed), topology.family, u, T_REF
                )
                for cls in THROUGHPUT_CLASSES:
                    start = time.perf_counter()
                    verdict = analytic_schedulable(inst, cls, T_REF)
                    analytic_s += time.perf_counter() - start
                    start = time.perf_counter()
                    exact_schedulable_within(inst, cls, T_REF)
                    exact_s += time.perf_counter() - start
                    tally[verdict.status] += 1
                    queries += 1

    counters = stats.to_json()
    lp_free = stats.solves == 0 and stats.pivots == 0
    speedup: Optional[float] = (
        round(exact_s / analytic_s, 2) if analytic_s > 0 else None
    )
    return {
        "family": "e19_analytic",
        "T_ref": T_REF,
        "rows": [
            {
                "topology": r.topology,
                "class": r.scheduler_class,
                "utilization": r.utilization,
                "trials": r.trials,
                "exact_schedulable": r.exact_schedulable,
                "analytic_schedulable": r.analytic_schedulable,
                "analytic_unschedulable": r.analytic_unschedulable,
                "unknown": r.unknown,
                "decided": str(r.decided),
            }
            for r in result.rows
        ],
        "unknown_total": result.unknown_total,
        "throughput": {
            "queries": queries,
            "verdicts": tally,
            "analytic_seconds": round(analytic_s, 4),
            "exact_seconds": round(exact_s, 4),
            "analytic_speedup_over_exact": speedup,
        },
        "lp_counters": counters,
        "lp_free": lp_free,
        "table": result.table.render(),
    }


def test_e19_analytic(benchmark):
    """pytest-benchmark entry point (mirrors the sibling bench idiom)."""
    from _common import emit, run_once

    with collect_stats() as stats:
        result = run_once(
            benchmark,
            lambda: exp.run(
                utilizations=(0.5, 0.8, 0.95),
                scheduler_classes=("global", "partitioned", "hierarchical"),
                trials=3,
            ),
        )
    emit("e19", result.table)
    assert result.sound
    # The acceptance criterion, by counter: the analytic engine (and the
    # LP-free exact search it is checked against) performs zero LP work.
    assert stats.solves == 0 and stats.pivots == 0, stats.to_json()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=os.path.join(REPO_ROOT, "BENCH_e19_analytic.json"),
        help="output JSON path (default: repo root)",
    )
    parser.add_argument(
        "--trials", type=int, default=3,
        help="trials per (topology, utilization) grid point",
    )
    args = parser.parse_args(argv)

    payload = run(trials=args.trials)

    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    results_dir = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "results"
    )
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, "BENCH_e19_analytic.json"), "w") as fh:
        json.dump(payload, fh, indent=2)

    print(payload["table"])
    thr = payload["throughput"]
    print(
        f"\nthroughput: {thr['queries']} queries  "
        f"analytic {thr['analytic_seconds']}s vs exact {thr['exact_seconds']}s  "
        f"(speedup {thr['analytic_speedup_over_exact']}x)  "
        f"verdicts {thr['verdicts']}"
    )
    print(
        f"lp counters: solves={payload['lp_counters']['solves']} "
        f"pivots={payload['lp_counters']['pivots']}"
    )
    if not payload["lp_free"]:
        print("FAIL: analytic path performed LP work", file=sys.stderr)
        return 1
    print("analytic path LP-free: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
