"""Micro-benchmarks of the core algorithmic kernels (multi-round timings).

Unlike the experiment benches (single-round sweeps), these time the paper's
individual algorithms on fixed representative instances so solver-level
regressions are measurable.
"""

import pytest

from repro import schedule_hierarchical, schedule_semi_partitioned, two_approximation
from repro.baselines import mcnaughton_schedule
from repro.core.hierarchical import allocate_loads
from repro.core.programs import build_ip3, minimal_fractional_T
from repro.lp.solve import solve_lp
from repro.rounding.lst import lst_round
from repro.workloads import (
    random_feasible_pair,
    random_hierarchical,
    random_semi_partitioned,
    rng_from_seed,
)


@pytest.fixture(scope="module")
def semi_fixture():
    rng = rng_from_seed(1001)
    inst = random_semi_partitioned(rng, n=48, m=8)
    assignment, T = random_feasible_pair(rng, inst)
    return inst, assignment, T


@pytest.fixture(scope="module")
def hier_fixture():
    rng = rng_from_seed(1002)
    inst = random_hierarchical(rng, n=32, m=12, split_probability=0.9)
    assignment, T = random_feasible_pair(rng, inst)
    return inst, assignment, T


def test_kernel_algorithm1_semi_partitioned(benchmark, semi_fixture):
    inst, assignment, T = semi_fixture
    schedule = benchmark(
        lambda: schedule_semi_partitioned(inst, assignment, T, check_feasibility=False)
    )
    assert schedule.makespan() <= T


def test_kernel_algorithm2_load_allocation(benchmark, hier_fixture):
    inst, assignment, T = hier_fixture
    allocation = benchmark(lambda: allocate_loads(inst, assignment, T))
    assert allocation.T == T


def test_kernel_algorithm3_hierarchical_schedule(benchmark, hier_fixture):
    inst, assignment, T = hier_fixture
    schedule = benchmark(
        lambda: schedule_hierarchical(inst, assignment, T, check_feasibility=False)
    )
    assert schedule.makespan() <= T


def test_kernel_exact_simplex_ip3(benchmark):
    rng = rng_from_seed(1003)
    inst = random_hierarchical(rng, n=10, m=5)
    _lo, hi = inst.trivial_bounds()
    lp = build_ip3(inst, hi)
    solution = benchmark(lambda: solve_lp(lp, backend="exact"))
    assert solution.is_optimal


def test_kernel_scipy_lp_ip3(benchmark):
    rng = rng_from_seed(1003)
    inst = random_hierarchical(rng, n=30, m=10)
    _lo, hi = inst.trivial_bounds()
    lp = build_ip3(inst, hi)
    solution = benchmark(lambda: solve_lp(lp, backend="scipy"))
    assert solution.is_optimal


def test_kernel_lst_rounding(benchmark):
    rng = rng_from_seed(1004)
    n, m = 24, 6
    p = {
        j: {i: int(rng.integers(1, 20)) for i in range(m)} for j in range(n)
    }
    from repro.baselines import minimal_unrelated_T

    T = minimal_unrelated_T(p, backend="scipy")
    mapping = benchmark(lambda: lst_round(p, T, backend="scipy"))
    assert len(mapping) == n


def test_kernel_two_approximation_end_to_end(benchmark):
    rng = rng_from_seed(1005)
    inst = random_hierarchical(rng, n=16, m=6)
    result = benchmark.pedantic(
        lambda: two_approximation(inst, backend="scipy"), rounds=3, iterations=1
    )
    assert result.makespan <= result.bound


def test_kernel_mcnaughton(benchmark):
    rng = rng_from_seed(1006)
    lengths = [int(rng.integers(1, 100)) for _ in range(2000)]
    T, schedule = benchmark(lambda: mcnaughton_schedule(lengths, 64))
    assert schedule.makespan() == T
