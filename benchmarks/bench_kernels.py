"""Micro-benchmarks of the core algorithmic kernels (multi-round timings).

Unlike the experiment benches (single-round sweeps), these time the paper's
individual algorithms on fixed representative instances so solver-level
regressions are measurable.

Run as a script, it micro-benchmarks the **LU basis kernel**
(:class:`repro.lp.basis.LUBasis`: factorize, ftran, btran, rank-one update)
on optimal IP-3 bases across the E14 shapes and writes ``BENCH_kernels.json``
to the repository root (mirrored under ``benchmarks/results/``)::

    PYTHONPATH=src python benchmarks/bench_kernels.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

import pytest

from repro import schedule_hierarchical, schedule_semi_partitioned, two_approximation
from repro.baselines import mcnaughton_schedule
from repro.core.hierarchical import allocate_loads
from repro.core.programs import build_ip3, minimal_fractional_T
from repro.lp.solve import solve_lp
from repro.rounding.lst import lst_round
from repro.workloads import (
    random_feasible_pair,
    random_hierarchical,
    random_semi_partitioned,
    rng_from_seed,
)


@pytest.fixture(scope="module")
def semi_fixture():
    rng = rng_from_seed(1001)
    inst = random_semi_partitioned(rng, n=48, m=8)
    assignment, T = random_feasible_pair(rng, inst)
    return inst, assignment, T


@pytest.fixture(scope="module")
def hier_fixture():
    rng = rng_from_seed(1002)
    inst = random_hierarchical(rng, n=32, m=12, split_probability=0.9)
    assignment, T = random_feasible_pair(rng, inst)
    return inst, assignment, T


def test_kernel_algorithm1_semi_partitioned(benchmark, semi_fixture):
    inst, assignment, T = semi_fixture
    schedule = benchmark(
        lambda: schedule_semi_partitioned(inst, assignment, T, check_feasibility=False)
    )
    assert schedule.makespan() <= T


def test_kernel_algorithm2_load_allocation(benchmark, hier_fixture):
    inst, assignment, T = hier_fixture
    allocation = benchmark(lambda: allocate_loads(inst, assignment, T))
    assert allocation.T == T


def test_kernel_algorithm3_hierarchical_schedule(benchmark, hier_fixture):
    inst, assignment, T = hier_fixture
    schedule = benchmark(
        lambda: schedule_hierarchical(inst, assignment, T, check_feasibility=False)
    )
    assert schedule.makespan() <= T


def test_kernel_exact_simplex_ip3(benchmark):
    rng = rng_from_seed(1003)
    inst = random_hierarchical(rng, n=10, m=5)
    _lo, hi = inst.trivial_bounds()
    lp = build_ip3(inst, hi)
    solution = benchmark(lambda: solve_lp(lp, backend="exact"))
    assert solution.is_optimal


def test_kernel_scipy_lp_ip3(benchmark):
    rng = rng_from_seed(1003)
    inst = random_hierarchical(rng, n=30, m=10)
    _lo, hi = inst.trivial_bounds()
    lp = build_ip3(inst, hi)
    solution = benchmark(lambda: solve_lp(lp, backend="scipy"))
    assert solution.is_optimal


def test_kernel_lst_rounding(benchmark):
    rng = rng_from_seed(1004)
    n, m = 24, 6
    p = {
        j: {i: int(rng.integers(1, 20)) for i in range(m)} for j in range(n)
    }
    from repro.baselines import minimal_unrelated_T

    T = minimal_unrelated_T(p, backend="scipy")
    mapping = benchmark(lambda: lst_round(p, T, backend="scipy"))
    assert len(mapping) == n


def test_kernel_two_approximation_end_to_end(benchmark):
    rng = rng_from_seed(1005)
    inst = random_hierarchical(rng, n=16, m=6)
    result = benchmark.pedantic(
        lambda: two_approximation(inst, backend="scipy"), rounds=3, iterations=1
    )
    assert result.makespan <= result.bound


def test_kernel_mcnaughton(benchmark):
    rng = rng_from_seed(1006)
    lengths = [int(rng.integers(1, 100)) for _ in range(2000)]
    T, schedule = benchmark(lambda: mcnaughton_schedule(lengths, 64))
    assert schedule.makespan() == T


# ---------------------------------------------------------------------------
# LU basis kernel (factorize / ftran / btran / rank-one update)
# ---------------------------------------------------------------------------

#: E14 shapes the script-mode microbench sweeps (pytest uses the smallest).
LU_SHAPES = ((16, 6), (24, 8), (32, 10), (48, 12), (64, 16))


def _lu_fixture(n, m, seed=140):
    """An optimal IP-3 basis at the top breakpoint, in kernel terms.

    Returns ``(solver, basis_columns)`` where *solver* is the revised
    driver's scaled-integer view of the LP and *basis_columns* are the
    sparse columns of an optimal basis — exactly what a warm-started probe
    factorizes, so the timings reflect production inputs, not random
    matrices.
    """
    from fractions import Fraction

    from repro.core.programs import IP3Builder
    from repro.lp.revised import _RevisedSolver, solve_standard_revised
    from repro.lp.simplex import standard_form

    inst = random_hierarchical(rng_from_seed(seed), n=n, m=m)
    builder = IP3Builder(inst)
    coeff, senses, rhs, active = builder.probe_rows(builder.breakpoints[-1])
    objective = [Fraction(0)] * len(active)
    std = standard_form(coeff, senses, rhs, objective)
    solver = _RevisedSolver(std, objective, 5000, 200000, "dantzig")
    result = solve_standard_revised(coeff, senses, rhs, objective)
    assert result.status == "optimal"
    return solver, [solver.cols[c] for c in result.basis]


def _time_lu_ops(solver, basis_columns, rounds=3):
    """Wall-clock the four kernel operations on a realistic basis."""
    import time

    from repro.lp.basis import LUBasis

    m = solver.m
    times = {"factorize_ms": [], "ftran_us": [], "btran_us": [], "update_ms": []}
    for _ in range(rounds):
        start = time.perf_counter()
        lub = LUBasis.factorize(m, basis_columns, solver.b_int)
        times["factorize_ms"].append((time.perf_counter() - start) * 1e3)
        assert lub is not None

        sample = solver.cols[: min(len(solver.cols), 128)]
        start = time.perf_counter()
        for col in sample:
            lub.ftran(col)
        times["ftran_us"].append((time.perf_counter() - start) * 1e6 / len(sample))

        cb = {i: 1 for i in range(0, m, 3)}
        start = time.perf_counter()
        for _ in range(16):
            lub.btran(cb)
        times["btran_us"].append((time.perf_counter() - start) * 1e6 / 16)

        # Update pairs: pivot a non-basic column in, then the displaced one
        # back (both legal exchanges), so the basis — and therefore the
        # per-op cost — is identical across iterations.
        basic = set()
        pairs = 0
        start = time.perf_counter()
        for j, col in enumerate(solver.cols):
            if pairs >= 8:
                break
            alpha = lub.ftran(col)
            row = next(
                (r for r in range(m) if alpha[r] != 0 and r not in basic), None
            )
            if row is None:
                continue
            old = basis_columns[row]
            lub.update(row, alpha)
            lub.update(row, lub.ftran(old))
            basic.add(row)
            pairs += 1
        if pairs:
            times["update_ms"].append(
                (time.perf_counter() - start) * 1e3 / (2 * pairs)
            )
    return {op: round(min(vals), 4) for op, vals in times.items() if vals}


def _time_repr_ops(solver, basis_columns, rounds=3):
    """Sparse rows (as factorized) vs dense-forced rows for ftran/btran.

    The sparse representation is whatever :class:`LUBasis` chose per row
    under :data:`~repro.lp.basis.DENSIFY_THRESHOLD`; the dense twin is the
    same factorization with every row expanded, so the delta is purely the
    representation's doing.
    """
    import time

    from repro.lp.basis import LUBasis, _to_dense

    m = solver.m
    sparse = LUBasis.factorize(m, basis_columns, solver.b_int)
    dense = LUBasis.factorize(m, basis_columns, solver.b_int)
    assert sparse is not None and dense is not None
    for i in range(m):
        row = dense.inv[i]
        if type(row) is dict:
            dense.inv[i] = _to_dense(row, m)
    sample = solver.cols[: min(len(solver.cols), 128)]
    cb = {i: 1 for i in range(0, m, 3)}
    out = {
        "sparse_row_fraction": round(
            sum(1 for i in range(m) if type(sparse.inv[i]) is dict) / m, 4
        ),
        "mean_row_density": round(
            sum(sparse.row_density(i) for i in range(m)) / m, 4
        ),
    }
    for name, lub in (("sparse", sparse), ("dense", dense)):
        ftran_best = btran_best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            for col in sample:
                lub.ftran(col)
            ftran_best = min(
                ftran_best, (time.perf_counter() - start) * 1e6 / len(sample)
            )
            start = time.perf_counter()
            for _ in range(16):
                lub.btran(cb)
            btran_best = min(
                btran_best, (time.perf_counter() - start) * 1e6 / 16
            )
        out[f"ftran_{name}_us"] = round(ftran_best, 4)
        out[f"btran_{name}_us"] = round(btran_best, 4)
    return out


def _pricing_pivots(n, m, seed=140):
    """Cold-solve pivot counts per pricing rule on the assignment LP at T*.

    The LST assignment LP is the hardest single cold solve of the E14
    pipeline (wide, degenerate), so it is where the pricing rules actually
    diverge.  Non-canonical solves (vertex identity irrelevant), so each
    rule runs free — the point of the column is the pivot-count spread,
    with ``dantzig`` as the tableau-identical reference.
    """
    from repro._fraction import is_inf, to_fraction
    from repro.core.programs import minimal_fractional_T
    from repro.lp.revised import PRICINGS, solve_standard_revised
    from repro.rounding.lst import build_unrelated_lp

    inst = random_hierarchical(rng_from_seed(seed), n=n, m=m).with_singletons()
    T = minimal_fractional_T(inst, backend="exact")
    p_matrix = {}
    for j in range(inst.n):
        row = {}
        for i in sorted(inst.machines):
            value = inst.p(j, frozenset([i]))
            if not is_inf(value):
                row[i] = to_fraction(value)
        p_matrix[j] = row
    lp = build_unrelated_lp(p_matrix, T)
    coeff, senses, rhs, objective = lp.to_standard_rows()
    out = {}
    for pricing in PRICINGS:
        result = solve_standard_revised(
            coeff, senses, rhs, objective, pricing=pricing, canonical=False
        )
        assert result.status == "optimal"
        out[f"pivots_{pricing}"] = result.pivots
    return out


def test_kernel_lu_basis_ops(benchmark):
    solver, basis_columns = _lu_fixture(*LU_SHAPES[0])
    from repro.lp.basis import LUBasis

    lub = benchmark(lambda: LUBasis.factorize(solver.m, basis_columns, solver.b_int))
    assert lub is not None and lub.den != 0


def lu_main(argv=None):
    """Script mode: emit BENCH_kernels.json across the E14 shapes."""
    import argparse
    import json
    import os

    parser = argparse.ArgumentParser(description="LU basis kernel microbench")
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument(
        "--out", default=os.path.join(repo_root, "BENCH_kernels.json")
    )
    parser.add_argument("--quick", action="store_true", help="two shapes only")
    args = parser.parse_args(argv)

    shapes = LU_SHAPES[:2] if args.quick else LU_SHAPES
    rows = []
    for n, m in shapes:
        solver, basis_columns = _lu_fixture(n, m)
        ops = _time_lu_ops(solver, basis_columns)
        ops.update(_time_repr_ops(solver, basis_columns))
        ops.update(_pricing_pivots(n, m))
        row = {
            "n": n,
            "m": m,
            "rows": solver.m,
            "cols": len(solver.cols),
            **ops,
        }
        rows.append(row)
        print(
            f"n={n:3d} m={m:3d} rows={solver.m:4d} cols={len(solver.cols):5d}  "
            + "  ".join(f"{k}={v}" for k, v in ops.items())
        )
    payload = {"family": "e14_scaling", "kernel": "LUBasis", "rows": rows}
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    results_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, "BENCH_kernels.json"), "w") as fh:
        json.dump(payload, fh, indent=2)
    return 0


if __name__ == "__main__":
    raise SystemExit(lu_main())
