"""LP backend benchmark: certified ``hybrid`` vs ``exact`` vs ``scipy``.

Runs the full Theorem V.2 pipeline (the E14 scaling family: binary search
for ``T*`` + LST rounding + scheduling) under each backend on identical
instances, verifies that the certified backends agree on ``T*`` to *exact*
equality, and records wall-clock times plus the hybrid-over-exact speedup.

Results are written to ``BENCH_lp_backends.json`` at the repository root
(the perf-trajectory artifact CI uploads) and mirrored under
``benchmarks/results/``.

Usage::

    PYTHONPATH=src python benchmarks/bench_lp_backends.py          # full run
    PYTHONPATH=src python benchmarks/bench_lp_backends.py --quick  # CI smoke

The full run asserts the ≥3× aggregate speedup of ``hybrid`` over ``exact``
on the scaling family; the quick run only checks exact ``T*`` agreement
(timing noise on small instances makes a speedup assertion meaningless
there).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.approx import two_approximation  # noqa: E402
from repro.workloads import random_hierarchical, rng_from_seed  # noqa: E402

#: The E14 scaling family, extended upward to where backend choice matters.
FULL_SHAPES: Tuple[Tuple[int, int], ...] = ((16, 6), (24, 8), (32, 10), (48, 12), (64, 16))
QUICK_SHAPES: Tuple[Tuple[int, int], ...] = ((10, 4), (16, 6))

#: Aggregate hybrid-over-exact speedup the full run must demonstrate.
SPEEDUP_TARGET = 3.0


def run(
    shapes: Tuple[Tuple[int, int], ...] = FULL_SHAPES,
    backends: Tuple[str, ...] = ("exact", "hybrid", "scipy"),
    seed: int = 140,
) -> Dict:
    rows: List[Dict] = []
    totals: Dict[str, float] = {b: 0.0 for b in backends}
    for n, m in shapes:
        # Same instance for every backend (fresh rng per shape).
        inst = random_hierarchical(rng_from_seed(seed), n=n, m=m)
        t_star: Dict[str, str] = {}
        for backend in backends:
            start = time.perf_counter()
            result = two_approximation(inst, backend=backend)
            elapsed = time.perf_counter() - start
            totals[backend] += elapsed
            t_star[backend] = str(result.T_lp)
            rows.append(
                {
                    "n": n,
                    "m": m,
                    "backend": backend,
                    "seconds": round(elapsed, 4),
                    "T_star": str(result.T_lp),
                    "makespan": str(result.makespan),
                    "ratio_vs_lp": float(result.ratio_vs_lp),
                }
            )
            print(
                f"n={n:3d} m={m:3d} backend={backend:7s} "
                f"{elapsed:8.3f}s  T*={result.T_lp}"
            )
        # Certification claim: every backend lands on the same exact T*.
        assert len(set(t_star.values())) == 1, (
            f"backends disagree on T* at (n={n}, m={m}): {t_star}"
        )
    speedup: Optional[float] = None
    if "exact" in totals and "hybrid" in totals and totals["hybrid"] > 0:
        speedup = totals["exact"] / totals["hybrid"]
    return {
        "family": "e14_scaling",
        "seed": seed,
        "shapes": [list(s) for s in shapes],
        "rows": rows,
        "totals_seconds": {b: round(t, 4) for b, t in totals.items()},
        "speedup_hybrid_over_exact": round(speedup, 3) if speedup else None,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small shapes, no speedup assertion (CI smoke)",
    )
    parser.add_argument(
        "--out", default=os.path.join(REPO_ROOT, "BENCH_lp_backends.json"),
        help="output JSON path (default: repo root)",
    )
    parser.add_argument(
        "--shapes", default=None, metavar="NxM,NxM,…",
        help="explicit shape list, e.g. 16x6,24x8 (overrides --quick/full "
        "shapes; used by the CI perf gate to match the committed baseline). "
        "Disables the speedup assertion like --quick does.",
    )
    args = parser.parse_args(argv)

    if args.shapes:
        shapes = tuple(
            tuple(int(v) for v in part.split("x")) for part in args.shapes.split(",")
        )
    else:
        shapes = QUICK_SHAPES if args.quick else FULL_SHAPES
    payload = run(shapes=shapes)
    payload["mode"] = "quick" if args.quick or args.shapes else "full"

    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    results_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, "BENCH_lp_backends.json"), "w") as fh:
        json.dump(payload, fh, indent=2)

    speedup = payload["speedup_hybrid_over_exact"]
    print(f"\ntotals: {payload['totals_seconds']}")
    print(f"hybrid over exact: {speedup}x  (target ≥{SPEEDUP_TARGET}x, full mode)")
    if not args.quick and not args.shapes and speedup is not None and speedup < SPEEDUP_TARGET:
        print("FAIL: speedup target not met")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
