"""LP backend × kernel benchmark: ``hybrid`` vs ``exact`` vs ``scipy``.

Runs the full Theorem V.2 pipeline (the E14 scaling family: binary search
for ``T*`` + LST rounding + scheduling) under each backend **and each exact
pivoting kernel** (``revised`` — factorized basis, the default — and
``tableau`` — dense fraction-free) on identical instances, verifies that
every certified configuration agrees on ``T*`` to *exact* equality — and,
per backend, on the rounded makespan — and records wall-clock times plus
solver counters (pivots, refactorizations) from
:func:`repro.lp.stats.collect_stats`.

Results are written to ``BENCH_lp_backends.json`` at the repository root
(the perf-trajectory artifact CI uploads) and mirrored under
``benchmarks/results/``.  Rows carry a ``kernel`` field; the rows the CI
perf gate and the totals consume are the *default-kernel* ones
(``revised`` for exact/hybrid, ``float`` for scipy) — see
``check_perf_regression.py``, which treats rows without a kernel field
(older baselines) as canonical.

Usage::

    PYTHONPATH=src python benchmarks/bench_lp_backends.py          # full run
    PYTHONPATH=src python benchmarks/bench_lp_backends.py --quick  # CI smoke

The full run asserts two perf claims: hybrid ≥3× over exact (aggregate)
and the revised kernel ≥2× over the tableau kernel (median over shapes,
exact backend).  The quick run only checks exact ``T*``/makespan agreement
(timing noise on small instances makes speedup assertions meaningless
there).
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from typing import Dict, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.approx import two_approximation  # noqa: E402
from repro.lp.simplex import get_default_kernel, set_default_kernel  # noqa: E402
from repro.lp.stats import collect_stats  # noqa: E402
from repro.workloads import random_hierarchical, rng_from_seed  # noqa: E402

#: The E14 scaling family, extended upward to where backend choice matters.
FULL_SHAPES: Tuple[Tuple[int, int], ...] = ((16, 6), (24, 8), (32, 10), (48, 12), (64, 16))
QUICK_SHAPES: Tuple[Tuple[int, int], ...] = ((10, 4), (16, 6))

#: Aggregate hybrid-over-exact speedup the full run must demonstrate.
#: Re-based (3.0 → 1.3) when the revised kernel landed: the exact core got
#: ~4× faster, so hybrid's *relative* advantage shrank even though its
#: absolute time halved — the gate keeps hybrid strictly ahead of exact.
SPEEDUP_TARGET = 1.3
#: Median revised-over-tableau speedup (exact backend) the full run must
#: demonstrate — the revised-simplex tentpole claim.
KERNEL_SPEEDUP_TARGET = 2.0

#: Kernels benchmarked per backend ("float" marks the kernel-less scipy path).
_KERNELS_OF = {
    "exact": ("revised", "tableau"),
    "hybrid": ("revised", "tableau"),
    "scipy": ("float",),
}


def run(
    shapes: Tuple[Tuple[int, int], ...] = FULL_SHAPES,
    backends: Tuple[str, ...] = ("exact", "hybrid", "scipy"),
    seed: int = 140,
) -> Dict:
    rows: List[Dict] = []
    totals: Dict[str, float] = {b: 0.0 for b in backends}
    kernel_seconds: Dict[Tuple[str, str], List[float]] = {}
    saved_kernel = get_default_kernel()
    try:
        for n, m in shapes:
            # Same instance for every configuration (fresh rng per shape).
            inst = random_hierarchical(rng_from_seed(seed), n=n, m=m)
            makespan: Dict[Tuple[str, str], str] = {}
            for backend in backends:
                for kernel in _KERNELS_OF[backend]:
                    # The scipy path still performs exact re-check/repair
                    # solves; pin them to the default kernel rather than
                    # whatever the previous configuration left behind.
                    set_default_kernel(kernel if kernel != "float" else "revised")
                    with collect_stats() as stats:
                        start = time.perf_counter()
                        result = two_approximation(inst, backend=backend)
                        elapsed = time.perf_counter() - start
                    if kernel in ("revised", "float"):
                        totals[backend] += elapsed
                    kernel_seconds.setdefault((backend, kernel), []).append(elapsed)
                    makespan[(backend, kernel)] = str(result.makespan)
                    row = {
                        "n": n,
                        "m": m,
                        "backend": backend,
                        "kernel": kernel,
                        "seconds": round(elapsed, 4),
                        "T_star": str(result.T_lp),
                        "makespan": str(result.makespan),
                        "ratio_vs_lp": float(result.ratio_vs_lp),
                    }
                    # Full counter record, not hand-picked fields: the exact
                    # to_json round-trip keeps bench rows and the sweep
                    # hand-back on one schema (the perf gate reads both).
                    row.update(stats.to_json())
                    rows.append(row)
                    print(
                        f"n={n:3d} m={m:3d} backend={backend:7s} kernel={kernel:8s} "
                        f"{elapsed:8.3f}s  T*={result.T_lp}  pivots={stats.pivots}"
                    )
                    # Certification claims: kernels agree per backend on the
                    # rounded makespan (identical pivot sequences) …
                    assert len({r for (b, _k), r in makespan.items() if b == backend}) == 1, (
                        f"kernels disagree on makespan at (n={n}, m={m}, "
                        f"backend={backend}): {makespan}"
                    )
            # … and every configuration lands on the same exact T*.
            all_t = {row["T_star"] for row in rows if row["n"] == n and row["m"] == m}
            assert len(all_t) == 1, (
                f"configurations disagree on T* at (n={n}, m={m}): {all_t}"
            )
    finally:
        set_default_kernel(saved_kernel)

    speedup: Optional[float] = None
    if "exact" in totals and "hybrid" in totals and totals["hybrid"] > 0:
        speedup = totals["exact"] / totals["hybrid"]
    kernel_speedups: Dict[str, Optional[float]] = {}
    for backend in ("exact", "hybrid"):
        rev = kernel_seconds.get((backend, "revised"))
        tab = kernel_seconds.get((backend, "tableau"))
        if rev and tab and all(s > 0 for s in rev):
            kernel_speedups[backend] = round(
                statistics.median(t / r for t, r in zip(tab, rev)), 3
            )
        else:
            kernel_speedups[backend] = None
    return {
        "family": "e14_scaling",
        "seed": seed,
        "shapes": [list(s) for s in shapes],
        "rows": rows,
        "totals_seconds": {b: round(t, 4) for b, t in totals.items()},
        "speedup_hybrid_over_exact": round(speedup, 3) if speedup else None,
        "kernel_speedup_revised_over_tableau": kernel_speedups,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small shapes, no speedup assertion (CI smoke)",
    )
    parser.add_argument(
        "--out", default=os.path.join(REPO_ROOT, "BENCH_lp_backends.json"),
        help="output JSON path (default: repo root)",
    )
    parser.add_argument(
        "--shapes", default=None, metavar="NxM,NxM,…",
        help="explicit shape list, e.g. 16x6,24x8 (overrides --quick/full "
        "shapes; used by the CI perf gate to match the committed baseline). "
        "Disables the speedup assertion like --quick does.",
    )
    args = parser.parse_args(argv)

    if args.shapes:
        shapes = tuple(
            tuple(int(v) for v in part.split("x")) for part in args.shapes.split(",")
        )
    else:
        shapes = QUICK_SHAPES if args.quick else FULL_SHAPES
    payload = run(shapes=shapes)
    payload["mode"] = "quick" if args.quick or args.shapes else "full"

    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    results_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, "BENCH_lp_backends.json"), "w") as fh:
        json.dump(payload, fh, indent=2)

    speedup = payload["speedup_hybrid_over_exact"]
    kernel_speedup = payload["kernel_speedup_revised_over_tableau"]
    print(f"\ntotals: {payload['totals_seconds']}")
    print(f"hybrid over exact: {speedup}x  (target ≥{SPEEDUP_TARGET}x, full mode)")
    print(
        f"revised over tableau: {kernel_speedup}  "
        f"(target ≥{KERNEL_SPEEDUP_TARGET}x median on exact, full mode)"
    )
    if not args.quick and not args.shapes:
        failed = False
        if speedup is not None and speedup < SPEEDUP_TARGET:
            print("FAIL: hybrid speedup target not met")
            failed = True
        exact_kernel = kernel_speedup.get("exact")
        if exact_kernel is not None and exact_kernel < KERNEL_SPEEDUP_TARGET:
            print("FAIL: revised-kernel speedup target not met")
            failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
