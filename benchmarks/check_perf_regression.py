"""Perf-regression gate: fresh ``BENCH_lp_backends.json`` vs the committed one.

CI regenerates the benchmark (``bench_lp_backends.py --quick``) and calls
this script with the committed artifact as baseline.  For every (n, m)
shape present in **both** files it computes the hybrid backend's slowdown
and fails when the *median* slowdown exceeds the threshold (default 1.5×).

By default the slowdown is **normalized**: each file's hybrid seconds are
divided by the *same run's* ``exact``-backend seconds before comparing, so
raw machine speed cancels out — the committed artifact comes from a
developer workstation while CI runs on shared runners, and an absolute
wall-clock gate across machines would trip on hardware, not regressions.
What the normalized gate catches is the thing the hybrid backend exists
for: its advantage over the exact core eroding.  ``--absolute`` switches to
raw hybrid seconds for same-machine comparisons (e.g. artifact hand-off
between CI runs).

It also re-checks the certification invariant: where both files share a
shape, they must agree on the exact ``T*`` string — a perf artifact from a
solver that changed its answers is worse than useless.

Orthogonal to wall-clock, the gate compares **solver counters** per
(backend, kernel, n, m) row: pivot counts and basis refactorizations are
deterministic for a given code generation and instance, so — unlike
seconds — they compare exactly across machines.  A fresh row may exceed
its baseline by at most ``--max-counter-growth`` (ratio) plus
``--counter-slack`` (absolute, so a 0-refactorization baseline doesn't
forbid 1).  Rows whose baseline predates counter recording are skipped.

Usage::

    python benchmarks/check_perf_regression.py BASELINE.json FRESH.json \
        [--max-slowdown 1.5] [--backend hybrid] [--absolute] \
        [--max-counter-growth 1.1] [--counter-slack 4]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from typing import Dict, List, Optional, Tuple

Shape = Tuple[int, int]


def _canonical(row: Dict) -> bool:
    """Whether a row is the default-kernel measurement for its backend.

    Newer artifacts carry one row per (backend, kernel); the gate compares
    the default-kernel rows (``revised`` for exact/hybrid, ``float`` for
    scipy).  Rows without a ``kernel`` field — pre-kernel baselines — are
    canonical by definition.
    """
    return row.get("kernel") in (None, "revised", "float")


def _seconds_by_shape(payload: Dict, backend: str) -> Dict[Shape, float]:
    out: Dict[Shape, float] = {}
    for row in payload.get("rows", []):
        if row.get("backend") == backend and _canonical(row):
            out[(int(row["n"]), int(row["m"]))] = float(row["seconds"])
    return out


def _t_star_by_shape(payload: Dict, backend: str) -> Dict[Shape, str]:
    return {
        (int(r["n"]), int(r["m"])): str(r["T_star"])
        for r in payload.get("rows", [])
        if r.get("backend") == backend and _canonical(r)
    }


def _metric(
    payload: Dict, backend: str, normalize_by: Optional[str]
) -> Dict[Shape, float]:
    secs = _seconds_by_shape(payload, backend)
    if normalize_by is None:
        return secs
    ref = _seconds_by_shape(payload, normalize_by)
    return {
        shape: secs[shape] / ref[shape]
        for shape in secs
        if shape in ref and ref[shape] > 0
    }


#: Counters gated per row.  Deterministic given (code, instance), so the
#: comparison is exact — no normalization needed.
_GATED_COUNTERS = ("pivots", "refactorizations")


def _counter_rows(payload: Dict) -> Dict[Tuple, Dict[str, int]]:
    """``(backend, kernel, n, m) → {counter: value}`` for rows that carry
    counters (older baselines without them are silently absent)."""
    out: Dict[Tuple, Dict[str, int]] = {}
    for row in payload.get("rows", []):
        if "pivots" not in row:
            continue
        key = (
            str(row.get("backend")),
            str(row.get("kernel")),
            int(row["n"]),
            int(row["m"]),
        )
        out[key] = {
            counter: int(row.get(counter, 0)) for counter in _GATED_COUNTERS
        }
    return out


def check_counters(
    baseline: Dict, fresh: Dict, max_growth: float, slack: int
) -> int:
    """Gate pivot/refactorization counts per (backend, kernel, shape) row.

    Returns the number of violations (0 = pass).  A fresh value passes when
    ``fresh <= baseline * max_growth + slack``.
    """
    base = _counter_rows(baseline)
    new = _counter_rows(fresh)
    common = sorted(set(base) & set(new))
    if not common:
        print("counter gate: no common rows carry counters — skipped")
        return 0
    failures = 0
    for key in common:
        backend, kernel, n, m = key
        for counter in _GATED_COUNTERS:
            b, f = base[key][counter], new[key][counter]
            allowed = b * max_growth + slack
            ok = f <= allowed
            marker = "ok" if ok else "FAIL"
            if not ok or f != b:
                print(
                    f"  {marker}: n={n:3d} m={m:3d} {backend}/{kernel} "
                    f"{counter}: baseline {b}, fresh {f} "
                    f"(allowed ≤ {allowed:.1f})"
                )
            failures += 0 if ok else 1
    print(
        f"counter gate: {len(common)} (backend, kernel, shape) rows, "
        f"{failures} violation(s) "
        f"(growth ≤ {max_growth}x + {slack})"
    )
    return failures


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_lp_backends.json")
    parser.add_argument("fresh", help="freshly generated BENCH_lp_backends.json")
    parser.add_argument("--backend", default="hybrid")
    parser.add_argument("--normalize-by", default="exact")
    parser.add_argument("--max-slowdown", type=float, default=1.5)
    parser.add_argument(
        "--absolute", action="store_true",
        help="compare raw seconds (only meaningful when baseline and fresh "
        "ran on the same machine)",
    )
    parser.add_argument(
        "--max-counter-growth", type=float, default=1.1,
        help="allowed pivot/refactorization growth ratio per row "
        "(default 1.1)",
    )
    parser.add_argument(
        "--counter-slack", type=int, default=4,
        help="absolute slack added to the counter bound (default 4; keeps "
        "tiny baselines from gating on ±1)",
    )
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.fresh) as fh:
        fresh = json.load(fh)

    normalize_by = None if args.absolute else args.normalize_by
    base_vals = _metric(baseline, args.backend, normalize_by)
    fresh_vals = _metric(fresh, args.backend, normalize_by)
    common = sorted(set(base_vals) & set(fresh_vals))
    if not common:
        print(
            f"FAIL: no common (n, m) shapes between baseline {sorted(base_vals)} "
            f"and fresh {sorted(fresh_vals)} — regenerate the committed artifact"
        )
        return 2

    # Drift is checked on every shape both files measured — including any a
    # zero-rounded reference timing excluded from the slowdown metric.
    base_t = _t_star_by_shape(baseline, args.backend)
    fresh_t = _t_star_by_shape(fresh, args.backend)
    for shape in sorted(set(base_t) & set(fresh_t)):
        if base_t.get(shape) != fresh_t.get(shape):
            print(
                f"FAIL: exact T* drifted at (n={shape[0]}, m={shape[1]}): "
                f"baseline {base_t.get(shape)} vs fresh {fresh_t.get(shape)}"
            )
            return 1

    unit = "s" if args.absolute else f"x {args.normalize_by}"
    slowdowns = []
    for shape in common:
        ratio = fresh_vals[shape] / base_vals[shape] if base_vals[shape] > 0 else 1.0
        slowdowns.append(ratio)
        print(
            f"n={shape[0]:3d} m={shape[1]:3d} {args.backend}: "
            f"baseline {base_vals[shape]:.4f}{unit}  "
            f"fresh {fresh_vals[shape]:.4f}{unit}  slowdown {ratio:.2f}x"
        )
    median = statistics.median(slowdowns)
    print(
        f"median {args.backend} slowdown over {len(common)} shape(s): "
        f"{median:.2f}x (gate: {args.max_slowdown}x, "
        f"{'absolute seconds' if args.absolute else 'normalized by ' + args.normalize_by})"
    )
    if median > args.max_slowdown:
        print("FAIL: perf regression gate tripped")
        return 1
    counter_failures = check_counters(
        baseline, fresh, args.max_counter_growth, args.counter_slack
    )
    if counter_failures:
        print("FAIL: solver-counter regression gate tripped")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
