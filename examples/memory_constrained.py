"""Memory-constrained scheduling: the Section VI bicriteria models.

Model 1: per-machine budgets ``B_i``; a job's footprint is charged on every
machine of its mask (so wide masks are memory-expensive).  Model 2: a
uniform tree where a node of height h holds ``µ^h`` memory (root unbounded).
Both are rounded with the iterative schemes of Section VI; the example
prints the measured makespan/memory ratios against the theorems'
guarantees (3 for Model 1, σ = 2 + H_k for Model 2).

Run:  python examples/memory_constrained.py
"""

from fractions import Fraction

from repro import Instance
from repro.analysis import Table
from repro.core.memory import (
    harmonic,
    minimal_model1_T,
    minimal_model2_T,
    solve_model1,
    solve_model2,
)
from repro.workloads import rng_from_seed


def model1_demo() -> None:
    print("=== Model 1: per-machine budgets ===")
    inst = Instance.semi_partitioned(
        p_local=[[2, 2], [2, 3], [3, 2], [2, 2], [3, 3]],
        p_global=[3, 4, 4, 3, 4],
    )
    rng = rng_from_seed(61)
    space = [[int(rng.integers(1, 3)) for _ in range(2)] for _ in range(5)]
    budgets = {0: 5, 1: 5}
    T = minimal_model1_T(inst, space, budgets)
    result = solve_model1(inst, space, budgets, T)
    table = Table(
        f"Model 1 at the minimal LP-feasible horizon T = {T}",
        ["quantity", "guarantee", "measured"],
    )
    table.add_row("makespan / T", "≤ 3", result.makespan_ratio)
    table.add_row("max memory / budget", "≤ 3", result.max_memory_ratio)
    table.add_row("fallback drops", "0 expected", result.rounding.fallback_drops)
    print(table.render())
    for i in sorted(result.budgets):
        print(f"  machine {i}: memory {result.memory_usage[i]} / budget {result.budgets[i]}")


def model2_demo() -> None:
    print("\n=== Model 2: per-level capacities µ^h ===")
    inst = Instance.clustered(
        2,
        p_local=[[2, 2, 2, 2]] * 6,
        p_cluster=[[3, 3]] * 6,
        p_global=[4] * 6,
    )
    sizes = [Fraction(1, 2)] * 6
    mu = Fraction(2)
    T = minimal_model2_T(inst, sizes, mu)
    result = solve_model2(inst, sizes, mu, T)
    k = inst.family.num_levels
    table = Table(
        f"Model 2 (k = {k} levels, µ = {mu}) at T = {T}",
        ["quantity", "guarantee", "measured"],
    )
    table.add_row("σ = 2 + H_k", 2 + harmonic(k), result.sigma)
    table.add_row("makespan / T", f"≤ σ", result.makespan_ratio)
    table.add_row("max memory / capacity", f"≤ σ", result.max_memory_ratio)
    print(table.render())
    for alpha in sorted(result.capacities, key=lambda a: (-len(a), sorted(a))):
        print(
            f"  node {sorted(alpha)} (height {inst.family.height(alpha)}): "
            f"memory {result.memory_usage[alpha]} / capacity {result.capacities[alpha]}"
        )


if __name__ == "__main__":
    model1_demo()
    model2_demo()
