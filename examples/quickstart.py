"""Quickstart: model, solve and validate a hierarchical scheduling instance.

The running example is the paper's Example II.1 / III.1: two machines, two
pinned jobs and one flexible job.  We build the instance, check the (IP-1)
constraints, run the paper's Algorithm 1, validate the schedule exactly, and
compare against the exact optimum and the 2-approximation.

Run:  python examples/quickstart.py
"""

from repro import (
    INF,
    Assignment,
    Instance,
    schedule_semi_partitioned,
    solve_exact,
    summarize,
    two_approximation,
    validate_schedule,
    verify_ip1,
)


def main() -> None:
    # --- 1. model --------------------------------------------------------
    # Example II.1: job 0 only runs on machine 0 (time 1), job 1 only on
    # machine 1 (time 1), job 2 takes 2 units anywhere (even migrating).
    instance = Instance.semi_partitioned(
        p_local=[[1, INF], [INF, 1], [2, 2]],
        p_global=[INF, INF, 2],
    )
    print(f"instance: {instance}")

    # --- 2. pick an assignment and check (IP-1) ---------------------------
    M = frozenset({0, 1})
    assignment = Assignment({0: {0}, 1: {1}, 2: M})
    report = verify_ip1(instance, assignment, T=2)
    print(f"(IP-1) feasible at T=2: {report.feasible}")

    # --- 3. schedule with the paper's Algorithm 1 -------------------------
    schedule = schedule_semi_partitioned(instance, assignment, T=2)
    print("\nAlgorithm 1 schedule (matches the paper's Example III.1):")
    print(schedule.as_table())

    validation = validate_schedule(instance, assignment, schedule)
    print(f"\nschedule valid: {validation.valid}")
    print(f"summary: {summarize(schedule)}")

    # --- 4. exact optimum and the Theorem V.2 2-approximation -------------
    exact = solve_exact(instance)
    print(f"\nexact optimal makespan: {exact.optimum} "
          f"(assignment: {exact.assignment})")

    approx = two_approximation(instance)
    print(
        f"2-approximation: makespan {approx.makespan}, "
        f"LP lower bound T* = {approx.T_lp}, guarantee ≤ {approx.bound}"
    )

    # The unrelated collapse (no migration) needs makespan 3 — migrating
    # job 2 is exactly what the hierarchical model buys (Example II.1).
    collapse_opt = solve_exact(instance.unrelated_collapse()).optimum
    print(f"unrelated collapse optimum (no migration): {collapse_opt}")


if __name__ == "__main__":
    main()
