"""Semi-partitioned scheduling study: planners, bounds and migration budgets.

A deeper dive into Section III on a randomized workload mix:

1. generate a semi-partitioned instance with specialists and flexible jobs;
2. solve it four ways — exact (IP-1) optimum, Theorem V.2's 2-approximation,
   the literature-style greedy FFD planner, and pure partitioning;
3. report makespans against the LP lower bound ``T*``;
4. verify Proposition III.2's transition bounds on the optimal schedule.

Run:  python examples/semi_partitioned_study.py
"""

from fractions import Fraction

from repro import (
    minimal_fractional_T,
    schedule_semi_partitioned,
    solve_exact,
    two_approximation,
)
from repro.analysis import Table
from repro.baselines import solve_semi_greedy, solve_unrelated_2approx
from repro.schedule.metrics import (
    total_migrations_processing_order,
    total_preemptions_and_migrations,
)
from repro.workloads import random_semi_partitioned, rng_from_seed


def main() -> None:
    rng = rng_from_seed(33)
    n, m = 12, 3
    instance = random_semi_partitioned(
        rng, n=n, m=m, flexible_fraction=0.5, specialist_fraction=0.3
    )
    print(f"instance: {instance}")

    T_star = minimal_fractional_T(instance)
    exact = solve_exact(instance)
    approx = two_approximation(instance)
    greedy = solve_semi_greedy(instance)

    # Pure partitioning = LST on the unrelated collapse.
    collapse = instance.unrelated_collapse()
    p_matrix = {
        j: {
            i: collapse.p(j, frozenset([i]))
            for i in range(m)
            if collapse.allows(j, frozenset([i]))
        }
        for j in range(n)
    }
    partitioned = solve_unrelated_2approx(p_matrix, list(range(m)))

    table = Table(
        f"semi-partitioned study (n={n}, m={m}, LP bound T* = {T_star})",
        ["method", "makespan", "vs T*", "migratory jobs"],
    )
    root = frozenset(range(m))
    table.add_row(
        "exact (IP-1)",
        exact.optimum,
        exact.optimum / T_star,
        len(exact.assignment.jobs_on(root)),
    )
    table.add_row("2-approx (Thm V.2)", approx.makespan, approx.ratio_vs_lp, 0)
    table.add_row(
        "greedy FFD planner",
        greedy.makespan,
        greedy.makespan / T_star,
        greedy.num_migratory,
    )
    table.add_row(
        "pure partitioned (LST)",
        partitioned.makespan,
        partitioned.makespan / T_star,
        0,
    )
    print()
    print(table.render())

    # --- Proposition III.2 on the optimal schedule ------------------------
    schedule = schedule_semi_partitioned(instance, exact.assignment, exact.optimum)
    migrations = total_migrations_processing_order(schedule)
    transitions = total_preemptions_and_migrations(schedule)
    print(
        f"\nProposition III.2 on the optimal schedule: "
        f"{migrations} migrations (bound {m - 1}), "
        f"{transitions} total transitions (bound {2 * m - 2})"
    )
    assert migrations <= m - 1 and transitions <= 2 * m - 2


if __name__ == "__main__":
    main()
