"""Scheduling on an SMP-CMP cluster with migration-cost-derived masks.

This example grounds the paper's introduction: a two-node cluster of
dual-core chips (the "dual-core Xeon" story) where migration costs differ by
domain — intra-CMP < inter-CMP < inter-node.  Mask-dependent processing
times are derived from the topology's migration budgets, the hierarchy is
solved exactly, and the resulting schedule is *executed* on the simulator to
show the migration events and verify the charged overheads stay within the
masks' budgets.

Run:  python examples/smp_cmp_cluster.py
"""

from repro.baselines import compare_scheduler_classes
from repro.core.hierarchical import schedule_hierarchical
from repro.core.exact import solve_exact
from repro.simulation import CostModel, Topology, check_overhead_budgets, simulate
from repro.workloads import rng_from_seed
from repro.workloads.generators import instance_from_topology


def main() -> None:
    # --- the machine: 2 nodes × 1 chip × 2 cores --------------------------
    topology = Topology.smp_cmp(nodes=2, chips_per_node=1, cores_per_chip=2)
    costs = CostModel.xeon_like()
    print(f"topology: {topology.m} cores, levels {topology.level_names}")
    for a, b in [(0, 1), (0, 2)]:
        tier = topology.migration_tier(a, b)
        print(
            f"  migrating core {a} -> {b}: {topology.tier_name(tier)} domain, "
            f"cost {costs.cost_of_tier(tier)}"
        )

    # --- a workload whose mask overheads ARE the migration budgets --------
    rng = rng_from_seed(2017)
    instance, base_work = instance_from_topology(
        rng, topology, costs, n=topology.m + 1,
        base_range=(40, 44), flexible_fraction=1.0, specialist_fraction=0.0,
    )
    print(f"\nworkload: {instance}")

    # --- solve the hierarchical problem exactly ---------------------------
    exact = solve_exact(instance)
    schedule = schedule_hierarchical(instance, exact.assignment, exact.optimum)
    print(f"optimal makespan: {exact.optimum}")
    print(schedule.as_table())

    # --- execute on the simulator and audit migration costs --------------
    trace = simulate(schedule, topology, costs)
    print(f"\nsimulated events: {len(trace.events)}")
    print(f"migrations by tier: "
          f"{ {topology.tier_name(t): c for t, c in trace.tier_histogram().items()} }")
    print(f"total charged overhead: {trace.total_overhead}")

    reports = check_overhead_budgets(
        trace, instance, exact.assignment, base_work, topology, costs
    )
    ok = all(r.within_budget for r in reports)
    print(f"charged overhead within every mask's P_j(α) budget: {ok}")

    # --- how would the other scheduler classes do? ------------------------
    print("\nscheduler-class comparison (exact per class):")
    comparison = compare_scheduler_classes(instance, method="exact")
    for name, outcome in comparison.items():
        if outcome.feasible:
            print(f"  {name:13s} makespan {outcome.makespan}")
        else:
            print(f"  {name:13s} infeasible under this class")


if __name__ == "__main__":
    main()
