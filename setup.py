"""Setup shim so `pip install -e .` works offline (no wheel package available).

All metadata lives in pyproject.toml; this file only enables the legacy
editable-install code path (PEP 660 builds require the `wheel` package,
which is not installed in the offline environment).
"""

from setuptools import setup

setup()
