"""repro — reproduction of *Algorithms for Hierarchical and Semi-Partitioned
Parallel Scheduling* (Bonifaci, D'Angelo, Marchetti-Spaccamela, IPDPS 2017).

The package implements the paper's scheduling model — jobs assigned to
*affinity masks* drawn from a laminar family, with monotone set-dependent
processing times — together with:

* the combinatorial schedulers of Sections III and IV (Algorithms 1-3),
* the LP-rounding 2-approximation of Section V (Theorem V.2),
* the memory-constrained bicriteria roundings of Section VI,
* exact solvers, classical baselines, workload generators and a SimSo-style
  execution simulator used by the experiment suite.

Quick start::

    from repro import Instance, two_approximation
    inst = Instance.semi_partitioned(p_local=[[1, 4], [4, 1], [2, 2]],
                                     p_global=[5, 5, 2])
    result = two_approximation(inst)
    print(result.schedule.as_table())
"""

from ._fraction import INF
from .core import (
    Assignment,
    FractionalAssignment,
    GeneralMaskInstance,
    Instance,
    LaminarFamily,
    eight_approximation,
    min_T_for_assignment,
    minimal_fractional_T,
    schedule_assignment,
    schedule_hierarchical,
    schedule_semi_partitioned,
    solve_exact,
    solve_model1,
    solve_model2,
    two_approximation,
    verify_ip1,
    verify_ip2,
    verify_lp,
)
from .schedule import Schedule, summarize, validate_schedule

__version__ = "1.0.0"

__all__ = [
    "Assignment",
    "FractionalAssignment",
    "GeneralMaskInstance",
    "INF",
    "Instance",
    "LaminarFamily",
    "Schedule",
    "eight_approximation",
    "min_T_for_assignment",
    "minimal_fractional_T",
    "schedule_assignment",
    "schedule_hierarchical",
    "schedule_semi_partitioned",
    "solve_exact",
    "solve_model1",
    "solve_model2",
    "summarize",
    "two_approximation",
    "validate_schedule",
    "verify_ip1",
    "verify_ip2",
    "verify_lp",
]
