"""``python -m repro`` entry point."""

import sys

from .cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # Downstream pager/head closed the pipe — the Unix-polite exit.
    sys.stderr.close()
    sys.exit(0)
