"""Exact-arithmetic helpers shared across the package.

The correctness arguments of the paper (Theorems III.1 and IV.3 in
particular) are exact combinatorial identities on loads and interval
endpoints.  Validating them with floating point would force tolerances that
can hide genuine violations, so every core algorithm works on
:class:`fractions.Fraction`.  This module centralizes coercion so that the
public API accepts ``int``, ``Fraction``, exact ``float`` values and numpy
scalars interchangeably.
"""

from __future__ import annotations

import math
import os
from fractions import Fraction
from typing import Union

Number = Union[int, float, Fraction]

#: Sentinel for "this job may not run on this machine set" (the paper's ∞).
INF = math.inf

# ---------------------------------------------------------------------------
# Optional big-integer backend
# ---------------------------------------------------------------------------
# The exact LP kernels spend their time multiplying scaled integers whose
# bit-length grows with pivot depth.  gmpy2's mpz (GMP) multiplies large
# integers asymptotically faster than CPython's int; when the package is
# importable we route kernel integers through it.  mpz registers as
# numbers.Integral, so Fraction(mpz, mpz), comparisons and mixed arithmetic
# with plain ints all behave; results crossing the kernel boundary are
# coerced back to int for hashing/serialization safety.
#
# ``REPRO_BIGINT=python`` is the escape hatch: it forces the pure-python
# path even when gmpy2 is installed (bit-for-bit reference behaviour).

try:
    if os.environ.get("REPRO_BIGINT", "").lower() == "python":
        raise ImportError("REPRO_BIGINT=python requested the built-in int")
    from gmpy2 import mpz as _mpz  # type: ignore[import-not-found]

    HAVE_GMPY2 = True
except ImportError:  # pragma: no cover - exercised via subprocess test
    _mpz = int
    HAVE_GMPY2 = False

#: Coerce a kernel integer to the active big-integer type.  ``bigint(0)``
#: is the kernel's zero; sums/products stay in the fast type automatically.
bigint = _mpz


def bigint_backend() -> str:
    """Name of the active integer backend: ``"gmpy2"`` or ``"python"``."""
    return "gmpy2" if HAVE_GMPY2 else "python"


def is_inf(value: object) -> bool:
    """Return ``True`` when *value* is the infinite-processing-time sentinel."""
    return isinstance(value, float) and math.isinf(value)


def to_fraction(value: Number) -> Fraction:
    """Coerce *value* to an exact :class:`Fraction`.

    Floats are converted exactly (their binary expansion), which is the right
    thing for values like ``0.5`` produced by user code; values that came out
    of an LP float backend should be rationalized explicitly by the caller
    instead (see :func:`rationalize`).
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("bool is not a valid numeric value")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        if math.isinf(value) or math.isnan(value):
            raise ValueError(f"cannot convert non-finite float {value!r} to Fraction")
        return Fraction(value)
    # numpy integer / floating scalars expose item()
    item = getattr(value, "item", None)
    if item is not None:
        return to_fraction(item())
    raise TypeError(f"cannot interpret {value!r} as an exact number")


def to_fraction_finite(value: Number, what: str = "value") -> Fraction:
    """Guarded coercion: domain error instead of ``ValueError`` on INF/NaN.

    :func:`to_fraction` treats a non-finite float as a programming error
    (``ValueError``).  Call sites where the INF sentinel can legitimately
    appear in *input data* — job-length vectors, assignment loads — should
    use this helper instead, so a forbidden pair surfaces as the library's
    own :class:`~repro.exceptions.InvalidInstanceError` with a message
    naming the offending quantity, not as a bare coercion crash.
    """
    if isinstance(value, float) and (math.isinf(value) or math.isnan(value)):
        from .exceptions import InvalidInstanceError

        kind = "infinite (the INF sentinel)" if math.isinf(value) else "NaN"
        raise InvalidInstanceError(
            f"{what} is {kind} where a finite number is required"
        )
    return to_fraction(value)


def rationalize(value: float, max_denominator: int = 10**9) -> Fraction:
    """Convert a float produced by a numeric solver to a nearby rational.

    Unlike :func:`to_fraction` this snaps to a small denominator, which is
    appropriate when the float is a noisy image of an underlying rational
    (e.g. an LP vertex with rational data).
    """
    if math.isinf(value) or math.isnan(value):
        raise ValueError(f"cannot rationalize non-finite float {value!r}")
    return Fraction(value).limit_denominator(max_denominator)


def as_int_if_integral(value: Fraction) -> Union[int, Fraction]:
    """Return an ``int`` when *value* is integral, else the Fraction itself."""
    frac = to_fraction(value)
    if frac.denominator == 1:
        return int(frac)
    return frac


def fsum(values) -> Fraction:
    """Exact sum of an iterable of numbers as a Fraction."""
    total = Fraction(0)
    for value in values:
        total += to_fraction(value)
    return total
