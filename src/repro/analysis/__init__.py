"""Experiment analysis helpers: tables and ratio statistics."""

from .ratios import RatioStats, geometric_mean
from .tables import Table, fmt

__all__ = ["RatioStats", "Table", "fmt", "geometric_mean"]
