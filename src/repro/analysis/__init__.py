"""Experiment analysis helpers: tables and ratio statistics."""

from .ratios import RatioStats, geometric_mean
from .tables import Table, decode_cell, encode_cell, fmt

__all__ = [
    "RatioStats",
    "Table",
    "decode_cell",
    "encode_cell",
    "fmt",
    "geometric_mean",
]
