"""ASCII Gantt rendering of schedules.

Renders a :class:`~repro.schedule.schedule.Schedule` as one row of character
cells per machine, resolution chosen so the horizon fits the terminal.  Jobs
are labelled 0-9 then a-z then A-Z, cycling; idle time is ``.``.  Fractional
segment boundaries are rounded to the cell grid for display only — the
underlying schedule stays exact.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List

from ..schedule.schedule import Schedule

_LABELS = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def job_label(job: int) -> str:
    """One-character display label for a job id (cycling 0-9a-zA-Z)."""
    return _LABELS[job % len(_LABELS)]


def render_gantt(schedule: Schedule, width: int = 72) -> str:
    """Render the schedule as an ASCII Gantt chart.

    Each machine gets one line of *width* cells spanning ``[0, T]``.  When
    two jobs share one cell the later-starting one wins the pixel — the
    exact schedule is still machine-exclusive.
    """
    T = schedule.T if schedule.T > 0 else schedule.makespan()
    if T == 0:
        return "\n".join(f"m{m:<3d} (empty)" for m in schedule.machines)
    lines: List[str] = []
    header = "     " + "".join(
        "|" if (c * T / width).denominator == 1 and width >= 10 and c % (width // 8 or 1) == 0
        else " "
        for c in range(width)
    )
    for machine in schedule.machines:
        cells = ["."] * width
        for seg in schedule.timeline(machine):
            start_cell = int(seg.start * width / T)
            end_cell = int(seg.end * width / T)
            if end_cell == start_cell:
                end_cell = start_cell + 1
            for c in range(start_cell, min(end_cell, width)):
                cells[c] = job_label(seg.job)
        lines.append(f"m{machine:<3d} " + "".join(cells))
    scale = f"     0{' ' * (width - len(str(T)) - 1)}{T}"
    return "\n".join(lines + [scale])
