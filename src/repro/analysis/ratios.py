"""Ratio bookkeeping for the approximation-quality experiments."""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, List, Sequence, Union

Number = Union[int, float, Fraction]


@dataclass(frozen=True)
class RatioStats:
    count: int
    mean: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[Number]) -> "RatioStats":
        if not values:
            return cls(0, float("nan"), float("nan"), float("nan"))
        floats = [float(v) for v in values]
        return cls(
            count=len(floats),
            mean=sum(floats) / len(floats),
            minimum=min(floats),
            maximum=max(floats),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean:.3f} "
            f"min={self.minimum:.3f} max={self.maximum:.3f}"
        )


def geometric_mean(values: Sequence[Number]) -> float:
    """Geometric mean — the standard aggregate for speedup ratios."""
    if not values:
        return float("nan")
    product = 1.0
    for v in values:
        product *= float(v)
    return product ** (1.0 / len(values))
