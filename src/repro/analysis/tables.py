"""ASCII table rendering for the experiment harness.

Every benchmark prints the table it reproduces; this keeps formatting in one
place so EXPERIMENTS.md and the bench output stay visually identical.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, Fraction, None]


def fmt(value: Cell, digits: int = 3) -> str:
    """Human formatting: Fractions become fixed-point floats, ints stay."""
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return str(value.numerator)
        return f"{float(value):.{digits}f}"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


class Table:
    """A fixed-header ASCII table with right-aligned numeric columns."""

    def __init__(self, title: str, headers: Sequence[str], digits: int = 3):
        self.title = title
        self.headers = list(headers)
        self.digits = digits
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([fmt(c, self.digits) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for k, cell in enumerate(row):
                widths[k] = max(widths[k], len(cell))
        sep = "+".join("-" * (w + 2) for w in widths)
        sep = f"+{sep}+"
        out = [self.title, sep]
        header = "|".join(f" {h.ljust(widths[k])} " for k, h in enumerate(self.headers))
        out.append(f"|{header}|")
        out.append(sep)
        for row in self.rows:
            line = "|".join(f" {cell.rjust(widths[k])} " for k, cell in enumerate(row))
            out.append(f"|{line}|")
        out.append(sep)
        return "\n".join(out)

    def print(self) -> None:  # pragma: no cover - passthrough
        print()
        print(self.render())
