"""ASCII table rendering + exact JSON serialization for the experiment harness.

Every benchmark prints the table it reproduces; this keeps formatting in one
place so EXPERIMENTS.md and the bench output stay visually identical.

Tables hold their cells **raw** (``Fraction`` stays ``Fraction``) and only
format at :meth:`Table.render` time.  That is what lets the sweep runner
(:mod:`repro.runner`) persist tables to its results store and reassemble
them later without losing exactness: :meth:`Table.to_json` /
:meth:`Table.from_json` round-trip every cell bit-for-bit (Fractions are
tagged, not floated), and :meth:`Table.from_records` rebuilds an accumulated
table from store records.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

Cell = Union[str, int, float, Fraction, bool, None]


def fmt(value: Cell, digits: int = 3) -> str:
    """Human formatting: Fractions become fixed-point floats, ints stay."""
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return str(value.numerator)
        return f"{float(value):.{digits}f}"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def encode_cell(value: Cell) -> Any:
    """A strict-JSON-safe encoding of one cell, exactness preserved.

    ``Fraction`` cells become ``{"$frac": [num, den]}`` (arbitrary-precision
    ints survive JSON), non-finite floats become ``{"$float": "inf"|...}``;
    everything JSON-native passes through.  Unknown cell types fall back to
    their ``str`` form — they render identically, which is all ``fmt`` ever
    guaranteed for them.
    """
    if isinstance(value, Fraction):
        return {"$frac": [value.numerator, value.denominator]}
    if isinstance(value, float) and not math.isfinite(value):
        return {"$float": repr(value)}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def decode_cell(value: Any) -> Cell:
    """Inverse of :func:`encode_cell`."""
    if isinstance(value, dict):
        if "$frac" in value:
            num, den = value["$frac"]
            return Fraction(int(num), int(den))
        if "$float" in value:
            return float(value["$float"])
    return value


class Table:
    """A fixed-header ASCII table with right-aligned numeric columns.

    ``rows`` holds the raw cells (exact values); formatting happens in
    :meth:`render`.
    """

    def __init__(self, title: str, headers: Sequence[str], digits: int = 3):
        self.title = title
        self.headers = list(headers)
        self.digits = digits
        self.rows: List[List[Cell]] = []

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        formatted = [[fmt(c, self.digits) for c in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in formatted:
            for k, cell in enumerate(row):
                widths[k] = max(widths[k], len(cell))
        sep = "+".join("-" * (w + 2) for w in widths)
        sep = f"+{sep}+"
        out = [self.title, sep]
        header = "|".join(f" {h.ljust(widths[k])} " for k, h in enumerate(self.headers))
        out.append(f"|{header}|")
        out.append(sep)
        for row in formatted:
            line = "|".join(f" {cell.rjust(widths[k])} " for k, cell in enumerate(row))
            out.append(f"|{line}|")
        out.append(sep)
        return "\n".join(out)

    def to_json(self) -> Dict[str, Any]:
        """A strict-JSON-safe dict; :meth:`from_json` inverts it exactly."""
        return {
            "title": self.title,
            "headers": list(self.headers),
            "digits": self.digits,
            "rows": [[encode_cell(c) for c in row] for row in self.rows],
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "Table":
        """Rebuild a table from :meth:`to_json` output (exact round trip)."""
        table = cls(payload["title"], payload["headers"], payload.get("digits", 3))
        for row in payload["rows"]:
            table.add_row(*(decode_cell(c) for c in row))
        return table

    @classmethod
    def from_records(
        cls,
        records: Iterable[Mapping[str, Cell]],
        title: str = "",
        headers: Optional[Sequence[str]] = None,
        digits: int = 3,
    ) -> "Table":
        """Assemble a table from row mappings (header → cell).

        Headers default to first-seen order across the records; missing keys
        render as ``-``.  This is how ``repro report`` turns accumulated
        store records back into one E07/E14/E15-style table.
        """
        materialized = [dict(rec) for rec in records]
        if headers is None:
            headers = []
            for rec in materialized:
                for key in rec:
                    if key not in headers:
                        headers.append(key)
        table = cls(title, headers, digits)
        for rec in materialized:
            table.add_row(*(rec.get(h) for h in headers))
        return table

    def print(self) -> None:  # pragma: no cover - passthrough
        print()
        print(self.render())
