"""Classical baselines: McNaughton, list scheduling, LST, greedy planners."""

from .list_scheduling import list_schedule, lpt_makespan
from .lst_unrelated import LSTResult, minimal_unrelated_T, solve_unrelated_2approx
from .mcnaughton import mcnaughton_makespan, mcnaughton_schedule
from .partitioned import first_fit_decreasing, greedy_partition, partition_schedule
from .preemptive_unrelated import preemptive_lp, preemptive_makespan, preemptive_schedule
from .restrictions import (
    SCHEDULER_CLASSES,
    ClassComparison,
    compare_scheduler_classes,
    restrict_instance,
    restricted_family_for,
    solve_restricted,
)
from .semi_greedy import SemiGreedyResult, solve_semi_greedy

__all__ = [
    "SCHEDULER_CLASSES",
    "ClassComparison",
    "LSTResult",
    "SemiGreedyResult",
    "compare_scheduler_classes",
    "first_fit_decreasing",
    "greedy_partition",
    "list_schedule",
    "lpt_makespan",
    "mcnaughton_makespan",
    "mcnaughton_schedule",
    "minimal_unrelated_T",
    "partition_schedule",
    "preemptive_lp",
    "preemptive_makespan",
    "preemptive_schedule",
    "restrict_instance",
    "restricted_family_for",
    "solve_restricted",
    "solve_unrelated_2approx",
]
