"""Non-preemptive list scheduling on identical machines (Graham).

Greedy list scheduling (next job to the least-loaded machine) is a
``2 − 1/m`` approximation; with the LPT order (longest processing time
first) the ratio improves to ``4/3 − 1/(3m)``.  These serve as cheap
non-preemptive reference points next to McNaughton's preemptive optimum in
the experiment tables.
"""

from __future__ import annotations

import heapq
from fractions import Fraction
from typing import Dict, List, Sequence, Tuple, Union

from .._fraction import to_fraction_finite
from ..exceptions import InvalidInstanceError
from ..schedule.schedule import Schedule

Time = Union[int, Fraction]


def list_schedule(
    lengths: Sequence[Time],
    m: int,
    order: str = "input",
) -> Tuple[Fraction, Schedule, Dict[int, int]]:
    """Greedy list scheduling; returns ``(makespan, schedule, job->machine)``.

    ``order="lpt"`` sorts jobs longest-first (LPT rule), ``"input"`` keeps
    the given order (Graham's original analysis).
    """
    if m <= 0:
        raise InvalidInstanceError("m must be positive")
    values = [to_fraction_finite(v, f"length of job {j}") for j, v in enumerate(lengths)]
    if any(v < 0 for v in values):
        raise InvalidInstanceError("negative job length")
    if order == "lpt":
        sequence = sorted(range(len(values)), key=lambda j: (-values[j], j))
    elif order == "input":
        sequence = list(range(len(values)))
    else:
        raise InvalidInstanceError(f"unknown order {order!r}")

    # (load, machine) heap; Fractions compare exactly.
    heap: List[Tuple[Fraction, int]] = [(Fraction(0), i) for i in range(m)]
    heapq.heapify(heap)
    placement: Dict[int, int] = {}
    start_times: Dict[int, Fraction] = {}
    for j in sequence:
        load, i = heapq.heappop(heap)
        placement[j] = i
        start_times[j] = load
        heapq.heappush(heap, (load + values[j], i))
    makespan = max((start_times[j] + values[j] for j in placement), default=Fraction(0))
    schedule = Schedule(range(m), makespan)
    for j, i in placement.items():
        if values[j] > 0:
            schedule.add_segment(i, j, start_times[j], start_times[j] + values[j])
    return makespan, schedule, placement


def lpt_makespan(lengths: Sequence[Time], m: int) -> Fraction:
    """Convenience: the LPT makespan only."""
    makespan, _schedule, _placement = list_schedule(lengths, m, order="lpt")
    return makespan
