"""The full Lenstra–Shmoys–Tardos 2-approximation for ``R||Cmax``.

Binary search over the processing-time breakpoints for the smallest horizon
at which the assignment LP is feasible, then the rounding of
:mod:`repro.rounding.lst`.  This is simultaneously

* the classical algorithm the paper builds Theorem V.2 on,
* the *partitioned scheduling* reference in experiment E12, and
* the engine of the Section II 8-approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Mapping, Sequence, Union

from .._fraction import is_inf, to_fraction
from ..exceptions import InfeasibleError
from ..lp.solve import solve_lp
from ..rounding.lst import build_unrelated_lp, lst_round
from ..schedule.schedule import Schedule
from .partitioned import partition_schedule

PMatrix = Mapping[int, Mapping[int, Union[int, Fraction, float]]]


@dataclass
class LSTResult:
    T_lp: Fraction
    """Smallest LP-feasible horizon — a lower bound on the optimum."""

    placement: Dict[int, int]
    makespan: Fraction
    schedule: Schedule

    @property
    def bound(self) -> Fraction:
        return 2 * self.T_lp

    @property
    def ratio_vs_lp(self) -> Fraction:
        return self.makespan / self.T_lp if self.T_lp else Fraction(0)


def _min_T_lp_above(p: PMatrix, anchor: Fraction, backend: str) -> Fraction:
    """Minimize T over the assignment LP with ``R = R(anchor)``, ``T ≥ anchor``."""
    from ..lp.model import LinearProgram

    t_key = ("__T__",)
    lp = LinearProgram()
    lp.add_variable(t_key, lb=0)
    machines = {}
    for j in sorted(p):
        allowed = []
        for i in sorted(p[j]):
            value = p[j][i]
            if not is_inf(value) and to_fraction(value) <= anchor:
                lp.add_variable(("x", i, j), lb=0, ub=1)
                allowed.append(i)
                machines.setdefault(i, []).append(j)
        if not allowed:
            raise InfeasibleError(f"job {j} cannot run anywhere within {anchor}")
        lp.add_constraint({("x", i, j): 1 for i in allowed}, "==", 1)
    for i in sorted(machines):
        row = {("x", i, j): to_fraction(p[j][i]) for j in machines[i]}
        row[t_key] = Fraction(-1)
        lp.add_constraint(row, "<=", 0)
    lp.add_constraint({t_key: 1}, ">=", anchor)
    lp.set_objective({t_key: 1})
    solution = solve_lp(lp, backend=backend)
    if not solution.is_optimal:  # pragma: no cover - always feasible for T big
        raise InfeasibleError("min-T assignment LP failed")
    return to_fraction(solution.value(t_key))


def minimal_unrelated_T(p: PMatrix, backend: str = "exact") -> Fraction:
    """Smallest horizon at which the R||Cmax assignment LP is feasible.

    Binary search over the processing-time breakpoints; when the load bound
    dominates (optimum above every processing time), a min-T LP with the
    full pruning set settles the exact value.
    """
    finite = sorted(
        {
            to_fraction(v)
            for row in p.values()
            for v in row.values()
            if not is_inf(v)
        }
    )
    if not finite:
        raise InfeasibleError("no finite processing time in the matrix")
    lo, hi = 0, len(finite) - 1
    if not solve_lp(build_unrelated_lp(p, finite[hi]), backend=backend).is_optimal:
        return _min_T_lp_above(p, finite[hi], backend)
    while lo < hi:
        mid = (lo + hi) // 2
        if solve_lp(build_unrelated_lp(p, finite[mid]), backend=backend).is_optimal:
            hi = mid
        else:
            lo = mid + 1
    anchor = finite[lo]
    if lo > 0:
        # The optimum may sit strictly inside the previous bracket, where
        # the pruning set is smaller but the load bound is the binding one.
        try:
            t_prev = _min_T_lp_above(p, finite[lo - 1], backend)
        except InfeasibleError:
            t_prev = None
        if t_prev is not None and t_prev < anchor:
            return t_prev
    return anchor


def solve_unrelated_2approx(
    p: PMatrix,
    machines: Sequence[int],
    backend: str = "exact",
) -> LSTResult:
    """Run the full LST algorithm; the makespan is at most ``2·T_lp``."""
    T_lp = minimal_unrelated_T(p, backend=backend)
    placement = lst_round(p, T_lp, backend=backend)
    schedule = partition_schedule(p, machines, placement)
    return LSTResult(
        T_lp=T_lp,
        placement=placement,
        makespan=schedule.makespan(),
        schedule=schedule,
    )
