"""McNaughton's wrap-around rule for ``P|pmtn|Cmax`` (1959).

The optimal preemptive makespan on identical machines is

    T = max( max_j p_j , Σ_j p_j / m )

and McNaughton's rule achieves it: lay the jobs out as one line and cut it
into ``m`` chunks of length ``T``.  This is the ancestral special case of
the paper's Algorithm 1 (the global-jobs phase with no local jobs) and the
*global scheduling* baseline of experiment E12.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Sequence, Tuple, Union

from .._fraction import to_fraction, to_fraction_finite
from ..exceptions import InvalidInstanceError
from ..schedule.schedule import Schedule

Time = Union[int, Fraction]


def mcnaughton_makespan(lengths: Sequence[Time], m: int) -> Fraction:
    """The optimal preemptive makespan ``max(max p_j, Σ p_j / m)``."""
    if m <= 0:
        raise InvalidInstanceError("m must be positive")
    if not lengths:
        return Fraction(0)
    values = [to_fraction_finite(v, f"length of job {j}") for j, v in enumerate(lengths)]
    if any(v < 0 for v in values):
        raise InvalidInstanceError("negative job length")
    return max(max(values), sum(values, Fraction(0)) / m)


def mcnaughton_schedule(lengths: Sequence[Time], m: int) -> Tuple[Fraction, Schedule]:
    """Build the wrap-around schedule; returns ``(T, schedule)``.

    Jobs are numbered by their position in *lengths*; machines ``0..m-1``.
    At most ``m − 1`` jobs are split, each into exactly two pieces on
    adjacent machines — never overlapping in time because each piece sits at
    the same offsets of consecutive ``[0, T)`` windows.
    """
    T = mcnaughton_makespan(lengths, m)
    schedule = Schedule(range(m), T)
    if T == 0:
        return T, schedule
    machine = 0
    cursor = Fraction(0)
    for job, raw in enumerate(lengths):
        left = to_fraction_finite(raw, f"length of job {job}")
        while left > 0:
            available = T - cursor
            piece = min(left, available)
            if piece > 0:
                schedule.add_segment(machine, job, cursor, cursor + piece)
                cursor += piece
                left -= piece
            if cursor == T:
                machine += 1
                cursor = Fraction(0)
                if machine >= m and left > 0:  # pragma: no cover - T bound
                    raise InvalidInstanceError("wrap-around overflow")
    return T, schedule
