"""Partitioned (non-migrating) heuristics for unrelated machines.

Pure partitioning is the paper's strawman: every job pinned to one machine.
Besides the LP-based 2-approximation (see
:mod:`repro.baselines.lst_unrelated`), the experiment tables include the
practical heuristics real systems use:

* **min-load greedy** — place each job on the machine where the resulting
  load is smallest (jobs in input order);
* **greedy-LPT** — same, but jobs sorted by decreasing cheapest time;
* **first-fit decreasing with target T** — bin-packing style feasibility
  check used by semi-partitioned planners to decide which jobs overflow.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .._fraction import INF, is_inf, to_fraction
from ..exceptions import InfeasibleError
from ..schedule.schedule import Schedule

Time = Union[int, Fraction]
PMatrix = Mapping[int, Mapping[int, Union[int, Fraction, float]]]


def _finite_row(p: PMatrix, j: int) -> Dict[int, Fraction]:
    row = {}
    for i, value in p[j].items():
        if not is_inf(value):
            row[i] = to_fraction(value)
    if not row:
        raise InfeasibleError(f"job {j} cannot run on any machine")
    return row


def greedy_partition(
    p: PMatrix,
    machines: Sequence[int],
    order: str = "input",
) -> Tuple[Fraction, Dict[int, int]]:
    """Min-load greedy partitioning; returns ``(makespan, job->machine)``.

    ``order="lpt"`` processes jobs by decreasing cheapest processing time.
    """
    jobs = sorted(p)
    if order == "lpt":
        jobs.sort(key=lambda j: (-min(_finite_row(p, j).values()), j))
    loads: Dict[int, Fraction] = {i: Fraction(0) for i in machines}
    placement: Dict[int, int] = {}
    for j in jobs:
        row = _finite_row(p, j)
        best_i: Optional[int] = None
        best_load: Optional[Fraction] = None
        for i in sorted(row):
            candidate = loads[i] + row[i]
            if best_load is None or candidate < best_load:
                best_load = candidate
                best_i = i
        assert best_i is not None
        placement[j] = best_i
        loads[best_i] += row[best_i]
    makespan = max(loads.values(), default=Fraction(0))
    return makespan, placement


def first_fit_decreasing(
    p: PMatrix,
    machines: Sequence[int],
    T: Time,
) -> Tuple[Dict[int, int], List[int]]:
    """First-fit decreasing against per-machine capacity *T*.

    Returns ``(placed: job -> machine, overflow: jobs that fit nowhere)``.
    This is the partitioning phase of classical semi-partitioned planners:
    overflow jobs are the candidates for migration.
    """
    T = to_fraction(T)
    jobs = sorted(p, key=lambda j: (-min(_finite_row(p, j).values()), j))
    loads: Dict[int, Fraction] = {i: Fraction(0) for i in machines}
    placed: Dict[int, int] = {}
    overflow: List[int] = []
    for j in jobs:
        row = _finite_row(p, j)
        target: Optional[int] = None
        for i in sorted(row):
            if loads[i] + row[i] <= T:
                target = i
                break
        if target is None:
            overflow.append(j)
        else:
            placed[j] = target
            loads[target] += row[target]
    return placed, sorted(overflow)


def partition_schedule(
    p: PMatrix,
    machines: Sequence[int],
    placement: Mapping[int, int],
) -> Schedule:
    """Materialize a partitioned placement as a (sequential) schedule."""
    loads: Dict[int, Fraction] = {i: Fraction(0) for i in machines}
    for j in sorted(placement):
        loads[placement[j]] += to_fraction(p[j][placement[j]])
    horizon = max(loads.values(), default=Fraction(0))
    schedule = Schedule(machines, horizon)
    cursor: Dict[int, Fraction] = {i: Fraction(0) for i in machines}
    for j in sorted(placement):
        i = placement[j]
        length = to_fraction(p[j][i])
        if length > 0:
            schedule.add_segment(i, j, cursor[i], cursor[i] + length)
            cursor[i] += length
    return schedule
