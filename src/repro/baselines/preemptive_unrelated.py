"""Optimal preemptive unrelated-machines scheduling (R|pmtn|Cmax).

The classic Lawler–Labetoulle LP: with ``t_ij`` the time job *j* spends on
machine *i*,

    min T
    s.t.  Σ_i t_ij / p_ij = 1     ∀ j   (each job completes)
          Σ_i t_ij ≤ T            ∀ j   (a job never runs in parallel with itself)
          Σ_j t_ij ≤ T            ∀ i   (machine capacity)
          t ≥ 0

has optimum exactly the preemptive makespan.  A schedule matching it is
constructed with the open-shop padding argument (Gonzalez–Sahni /
Birkhoff–von Neumann): pad ``t`` to a square non-negative matrix whose row
and column sums all equal ``T``; its positive cells then always contain a
perfect matching, and peeling matchings off as time slices yields the
schedule in at most ``(n+m)²`` slices.

The paper's Section II uses the LP optimum as the lower bound in the
8-approximation for general affinity masks; the constructed schedule doubles
as the optimal *global* baseline in experiment E12.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Tuple, Union

from .._fraction import is_inf, to_fraction
from ..exceptions import InfeasibleError, InvalidInstanceError, SolverError
from ..lp.model import LinearProgram
from ..lp.solve import solve_lp
from ..rounding.matching import maximum_bipartite_matching
from ..schedule.schedule import Schedule

Time = Union[int, Fraction]
PMatrix = Mapping[int, Mapping[int, Union[int, Fraction, float]]]

_T_KEY = ("__T__",)


def _finite_positive(p: PMatrix) -> Dict[int, Dict[int, Fraction]]:
    """Jobs with their finite machine times; zero-time jobs are dropped.

    A job with ``p_ij = 0`` somewhere completes instantly on that machine
    and contributes nothing to the makespan.
    """
    cleaned: Dict[int, Dict[int, Fraction]] = {}
    for j in sorted(p):
        row: Dict[int, Fraction] = {}
        instant = False
        for i in sorted(p[j]):
            value = p[j][i]
            if is_inf(value):
                continue
            value = to_fraction(value)
            if value < 0:
                raise InvalidInstanceError(f"negative processing time p[{j}][{i}]")
            if value == 0:
                instant = True
                break
            row[i] = value
        if instant:
            continue
        if not row:
            raise InfeasibleError(f"job {j} cannot run on any machine")
        cleaned[j] = row
    return cleaned


def preemptive_lp(p: Mapping[int, Mapping[int, Fraction]]) -> LinearProgram:
    """The Lawler–Labetoulle LP (all processing times finite and positive)."""
    lp = LinearProgram()
    lp.add_variable(_T_KEY, lb=0)
    machines: Dict[int, List[int]] = {}
    for j in sorted(p):
        for i in sorted(p[j]):
            lp.add_variable(("t", i, j), lb=0)
            machines.setdefault(i, []).append(j)
        lp.add_constraint(
            {("t", i, j): Fraction(1) / to_fraction(p[j][i]) for i in p[j]},
            "==",
            1,
            name=f"complete[{j}]",
        )
        row: Dict = {("t", i, j): Fraction(1) for i in p[j]}
        row[_T_KEY] = Fraction(-1)
        lp.add_constraint(row, "<=", 0, name=f"jobcap[{j}]")
    for i in sorted(machines):
        row = {("t", i, j): Fraction(1) for j in machines[i]}
        row[_T_KEY] = Fraction(-1)
        lp.add_constraint(row, "<=", 0, name=f"machcap[{i}]")
    lp.set_objective({_T_KEY: 1})
    return lp


def preemptive_makespan(p: PMatrix, backend: str = "exact") -> Fraction:
    """The optimal preemptive makespan of the unrelated instance *p*."""
    cleaned = _finite_positive(p)
    if not cleaned:
        return Fraction(0)
    solution = solve_lp(preemptive_lp(cleaned), backend=backend)
    if not solution.is_optimal:  # pragma: no cover - always feasible
        raise SolverError("Lawler–Labetoulle LP failed")
    return to_fraction(solution.value(_T_KEY))


def preemptive_schedule(p: PMatrix, backend: str = "exact") -> Tuple[Fraction, Schedule]:
    """Optimal preemptive schedule via the padded matching decomposition."""
    cleaned = _finite_positive(p)
    machines = sorted({i for j in p for i in p[j]})
    if not cleaned:
        return Fraction(0), Schedule(machines or [0], 0)
    solution = solve_lp(preemptive_lp(cleaned), backend=backend)
    if not solution.is_optimal:  # pragma: no cover
        raise SolverError("Lawler–Labetoulle LP failed")
    T = to_fraction(solution.value(_T_KEY))
    schedule = Schedule(machines, T)
    if T == 0:
        return T, schedule

    jobs = sorted(cleaned)
    n, m = len(jobs), len(machines)
    job_pos = {j: idx for idx, j in enumerate(jobs)}
    mach_pos = {i: idx for idx, i in enumerate(machines)}

    # Square padded matrix of size (n+m): rows = jobs + dummy jobs (one per
    # machine), cols = machines + dummy machines (one per job).  All row and
    # column sums equal T, so positive cells always hold a perfect matching.
    size = n + m
    A: List[List[Fraction]] = [[Fraction(0)] * size for _ in range(size)]
    for key, value in solution.values.items():
        if isinstance(key, tuple) and key[0] == "t" and value > 0:
            _tag, i, j = key
            A[job_pos[j]][mach_pos[i]] = to_fraction(value)
    job_total = [sum(A[r][:m], Fraction(0)) for r in range(n)]
    mach_total = [
        sum((A[r][c] for r in range(n)), Fraction(0)) for c in range(m)
    ]
    for r in range(n):  # job idle time on its dedicated dummy machine
        A[r][m + r] = T - job_total[r]
    for c in range(m):  # machine idle time on its dedicated dummy job
        A[n + c][c] = T - mach_total[c]
    # The dummy-dummy block balances: row n+c still needs mach_total[c],
    # column m+r still needs job_total[r]; totals agree, fill NW-corner.
    need_row = [mach_total[c] for c in range(m)]
    need_col = [job_total[r] for r in range(n)]
    r_idx, c_idx = 0, 0
    while r_idx < m and c_idx < n:
        if need_row[r_idx] == 0:
            r_idx += 1
            continue
        if need_col[c_idx] == 0:
            c_idx += 1
            continue
        amount = min(need_row[r_idx], need_col[c_idx])
        A[n + r_idx][m + c_idx] = amount
        need_row[r_idx] -= amount
        need_col[c_idx] -= amount

    remaining = T
    clock = Fraction(0)
    guard = 0
    while remaining > 0:
        guard += 1
        if guard > size * size + size + 4:  # pragma: no cover - theory bound
            raise SolverError("preemptive decomposition failed to terminate")
        adjacency = {
            r: [c for c in range(size) if A[r][c] > 0] for r in range(size)
        }
        matching = maximum_bipartite_matching(adjacency)
        if len(matching) < size:  # pragma: no cover - Birkhoff guarantees it
            raise SolverError("padded matrix lost its perfect matching")
        delta = min(A[r][matching[r]] for r in range(size))
        delta = min(delta, remaining)
        for r in range(size):
            c = matching[r]
            if r < n and c < m:
                schedule.add_segment(machines[c], jobs[r], clock, clock + delta)
            A[r][c] -= delta
        clock += delta
        remaining -= delta
    return T, schedule
