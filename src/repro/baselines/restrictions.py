"""Scheduler-class baselines via family restriction.

The paper frames global, partitioned, clustered and semi-partitioned
scheduling as special admissible families (Section II).  Experiment E12
compares the classes on a *common* hierarchical instance by restricting the
family to the sets each class may use and re-solving:

* ``global``      — ``{M}`` only (McNaughton within the full machine set);
* ``partitioned`` — singletons only (R||Cmax);
* ``clustered``   — one chosen level of clusters (global within a cluster);
* ``semi``        — ``{M}`` ∪ singletons;
* ``hierarchical``— the full family (the paper's contribution).

Restriction can make a specific job infeasible (all its restricted masks
have ``P = ∞``); the result records this instead of raising, because a class
losing instances *is* the phenomenon the comparison measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from .._fraction import INF, is_inf
from ..core.approx import TwoApproxResult, two_approximation
from ..core.instance import Instance
from ..core.laminar import LaminarFamily, MachineSet
from ..exceptions import InfeasibleError, InvalidFamilyError


def restrict_instance(instance: Instance, sets: Iterable[Iterable[int]]) -> Instance:
    """A new instance whose family is the given subset of admissible sets.

    Processing times carry over unchanged; every chosen set must already be
    admissible in the source instance.
    """
    chosen = [frozenset(s) for s in sets]
    for alpha in chosen:
        if alpha not in instance.family:
            raise InvalidFamilyError(
                f"{sorted(alpha)} is not admissible in the source instance"
            )
    family = LaminarFamily(instance.machines, chosen)
    processing = {
        j: {alpha: instance.p(j, alpha) for alpha in chosen}
        for j in range(instance.n)
    }
    return Instance(family, processing, validate=False)


def _level_sets(instance: Instance, predicate) -> List[MachineSet]:
    return [alpha for alpha in instance.family.sets if predicate(alpha)]


SCHEDULER_CLASSES = ("global", "partitioned", "clustered", "semi", "hierarchical")


def restricted_family_for(instance: Instance, scheduler_class: str) -> List[MachineSet]:
    """The admissible sets the given scheduler class may use."""
    family = instance.family
    root = frozenset(instance.machines)
    if scheduler_class == "global":
        if root not in family:
            raise InvalidFamilyError("the family lacks the full machine set M")
        return [root]
    if scheduler_class == "partitioned":
        singles = _level_sets(instance, lambda a: len(a) == 1)
        if len(singles) != instance.m:
            raise InvalidFamilyError("the family lacks some singleton")
        return singles
    if scheduler_class == "semi":
        if root not in family:
            raise InvalidFamilyError("the family lacks the full machine set M")
        singles = _level_sets(instance, lambda a: len(a) == 1)
        if len(singles) != instance.m:
            raise InvalidFamilyError("the family lacks some singleton")
        return [root] + singles
    if scheduler_class == "clustered":
        clusters = _level_sets(instance, lambda a: 1 < len(a) < instance.m)
        if not clusters:
            raise InvalidFamilyError("the family has no intermediate clusters")
        # Use the topmost intermediate level plus singletons for leftovers.
        maximal = [
            a for a in clusters
            if not any(a < b for b in clusters)
        ]
        covered = frozenset().union(*maximal)
        extras = [
            frozenset([i]) for i in sorted(instance.machines - covered)
            if frozenset([i]) in family
        ]
        return maximal + extras
    if scheduler_class == "hierarchical":
        return list(family.sets)
    raise InvalidFamilyError(f"unknown scheduler class {scheduler_class!r}")


def exact_schedulable_within(
    instance: Instance,
    scheduler_class: str,
    T,
    node_limit: int = 2_000_000,
) -> bool:
    """Exact ground truth for the schedulability studies (E15, E19).

    ``True`` iff an assignment with makespan ≤ *T* exists within the
    class's restricted family.  Structural inapplicability of the class
    (:class:`InvalidFamilyError`) counts as ``False`` — a class losing
    instances is the phenomenon the comparisons measure — but a
    :class:`~repro.exceptions.SolverError` (node-limit blowup) propagates:
    "the search gave up" must never be tabulated as "not schedulable".
    """
    try:
        sets = restricted_family_for(instance, scheduler_class)
    except InvalidFamilyError:
        return False
    restricted = restrict_instance(instance, sets)
    from ..core.exact import find_assignment_within

    return find_assignment_within(restricted, T, node_limit=node_limit) is not None


@dataclass
class ClassComparison:
    scheduler_class: str
    feasible: bool
    makespan: Optional[Fraction]
    T_lp: Optional[Fraction]
    result: Optional[TwoApproxResult]
    schedule: Optional[object] = None
    """The realized schedule (set for both solve methods when feasible)."""


def solve_restricted(
    instance: Instance,
    scheduler_class: str,
    backend: str = "exact",
    method: str = "approx",
) -> ClassComparison:
    """Solve the instance within one scheduler class.

    ``method="approx"`` runs the Theorem V.2 pipeline (scales, but its LST
    step always lands on singleton masks, so it cannot exhibit the migration
    advantage of the richer classes — Example V.1's phenomenon);
    ``method="exact"`` runs branch-and-bound over the restricted masks and
    does exhibit it (small instances only).
    """
    try:
        sets = restricted_family_for(instance, scheduler_class)
        restricted = restrict_instance(instance, sets)
        for j in range(restricted.n):
            if not restricted.allowed_sets(j):
                raise InfeasibleError(f"job {j} infeasible under {scheduler_class}")
        if method == "exact":
            from ..core.exact import solve_exact
            from ..core.hierarchical import schedule_hierarchical

            exact = solve_exact(restricted)
            schedule = schedule_hierarchical(
                restricted, exact.assignment, exact.optimum
            )
            return ClassComparison(
                scheduler_class=scheduler_class,
                feasible=True,
                makespan=exact.optimum,
                T_lp=None,
                result=None,
                schedule=schedule,
            )
        result = two_approximation(restricted, backend=backend)
    except (InfeasibleError, InvalidFamilyError):
        return ClassComparison(scheduler_class, False, None, None, None)
    return ClassComparison(
        scheduler_class=scheduler_class,
        feasible=True,
        makespan=result.makespan,
        T_lp=result.T_lp,
        result=result,
        schedule=result.schedule,
    )


def compare_scheduler_classes(
    instance: Instance,
    classes: Tuple[str, ...] = SCHEDULER_CLASSES,
    backend: str = "exact",
    method: str = "approx",
) -> Dict[str, ClassComparison]:
    """Run every scheduler class on the same instance (experiment E12)."""
    return {
        c: solve_restricted(instance, c, backend=backend, method=method)
        for c in classes
    }
