"""A practical greedy semi-partitioned planner (literature-style baseline).

Mirrors how semi-partitioned schedulers in the real-time literature operate
(the paper cites Bastoni–Brandenburg–Anderson): first *partition* as many
jobs as possible under a capacity target using first-fit decreasing, then
let the overflow jobs *migrate* globally.  Binary search shrinks the target
until the combined (IP-1) system stops being feasible.

This is deliberately LP-free — it is the "engineering" reference point the
exact/2-approx algorithms are measured against in experiments E04/E12.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional, Tuple, Union

from .._fraction import INF, is_inf, to_fraction
from ..core.assignment import Assignment, min_T_for_assignment, verify_ip1
from ..core.instance import Instance
from ..core.semi_partitioned import schedule_semi_partitioned
from ..exceptions import InfeasibleError, InvalidFamilyError
from ..schedule.schedule import Schedule
from .partitioned import first_fit_decreasing


@dataclass
class SemiGreedyResult:
    assignment: Assignment
    makespan: Fraction
    schedule: Schedule
    num_migratory: int
    """How many jobs ended up with the global mask."""


def _local_matrix(instance: Instance) -> Dict[int, Dict[int, Fraction]]:
    p: Dict[int, Dict[int, Fraction]] = {}
    for j in range(instance.n):
        row: Dict[int, Fraction] = {}
        for i in sorted(instance.machines):
            value = instance.p(j, frozenset([i]))
            if not is_inf(value):
                row[i] = to_fraction(value)
        p[j] = row
    return p


def _try_target(instance: Instance, T: Fraction) -> Optional[Assignment]:
    """FFD-partition under *T*, overflow goes global; None when infeasible."""
    root = frozenset(instance.machines)
    p = _local_matrix(instance)
    partitionable = {j: row for j, row in p.items() if row}
    placed, overflow = first_fit_decreasing(
        partitionable, sorted(instance.machines), T
    )
    overflow += [j for j in p if not p[j]]  # no finite local time at all
    masks: Dict[int, frozenset] = {j: frozenset([i]) for j, i in placed.items()}
    for j in sorted(set(overflow)):
        if is_inf(instance.p(j, root)) or to_fraction(instance.p(j, root)) > T:
            return None
        masks[j] = root
    assignment = Assignment(masks)
    if not verify_ip1(instance, assignment, T).feasible:
        return None
    return assignment


def solve_semi_greedy(instance: Instance) -> SemiGreedyResult:
    """Greedy semi-partitioned planning on a semi-partitioned instance.

    Requires the family ``{M} ∪ singletons``.  Binary-searches the capacity
    target over processing-time breakpoints and the derived bounds, keeping
    the best feasible plan.
    """
    root = frozenset(instance.machines)
    expected = {root} | {frozenset([i]) for i in instance.machines}
    if set(instance.family.sets) != expected:
        raise InvalidFamilyError("solve_semi_greedy needs the semi-partitioned family")

    lower, upper = instance.trivial_bounds()
    # Candidate targets: breakpoints of the processing times within bounds,
    # plus the load-balance bound itself.
    candidates = {lower, upper}
    for j in range(instance.n):
        for alpha in instance.family.sets:
            value = instance.p(j, alpha)
            if not is_inf(value):
                value = to_fraction(value)
                if lower <= value <= upper:
                    candidates.add(value)
    # FFD feasibility is not monotone in the target (bin-packing anomalies),
    # so scan the candidate targets in increasing order and keep the first
    # plan that checks out.
    assignment: Optional[Assignment] = None
    for target in sorted(candidates):
        assignment = _try_target(instance, target)
        if assignment is not None:
            break
    if assignment is None:
        # Guaranteed fallback: min-load greedy on local times, global for
        # jobs with no finite local option; feasible at its own min-T by
        # Theorem IV.3.
        p = _local_matrix(instance)
        placeable = {j: row for j, row in p.items() if row}
        masks: Dict[int, frozenset] = {}
        if placeable:
            from .partitioned import greedy_partition

            _mk, placement = greedy_partition(placeable, sorted(instance.machines))
            masks.update({j: frozenset([i]) for j, i in placement.items()})
        for j in range(instance.n):
            if j not in masks:
                if is_inf(instance.p(j, root)):
                    raise InfeasibleError(f"job {j} has no admissible mask")
                masks[j] = root
        assignment = Assignment(masks)
    T = min_T_for_assignment(instance, assignment)
    schedule = schedule_semi_partitioned(instance, assignment, T)
    num_migratory = sum(1 for j, a in assignment.items() if a == root)
    return SemiGreedyResult(
        assignment=assignment,
        makespan=schedule.makespan(),
        schedule=schedule,
        num_migratory=num_migratory,
    )
