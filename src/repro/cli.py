"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments [ids…] [--backend hybrid|exact|scipy]``
    Run (a subset of) the E01–E15 experiment suite at test scale and print
    the tables.  ``--backend`` overrides the LP backend for every experiment
    whose runner accepts one.
``solve --demo <name> [--backend hybrid|exact|scipy]``
    Solve one of the built-in demo instances (``ii1``, ``v1``, ``smp``) with
    the exact solver and the 2-approximation, printing schedules as Gantt
    charts.
``version``
    Print the package version.

Backend guide: ``hybrid`` (default) = HiGHS speed with exact certification;
``exact`` = pure rational simplex; ``scipy`` = uncertified floats (fast,
re-checked at the call sites that need exactness).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__


_EXPERIMENTS = {
    "e01": ("experiments.e01_example_ii1", {}),
    "e02": ("experiments.e02_example_iii1", {}),
    "e03": ("experiments.e03_migration_bounds", dict(machine_counts=(2, 3, 4), trials=10, n_jobs=8)),
    "e04": ("experiments.e04_semi_partitioned_validity", dict(shapes=((6, 2), (10, 4)), trials=8)),
    "e05": ("experiments.e05_hierarchical_validity", dict(machine_counts=(3, 5, 8), trials=8, n_jobs=10)),
    "e06": ("experiments.e06_pushdown", dict(machine_counts=(3, 4, 6), n_jobs=6)),
    "e07": ("experiments.e07_two_approx_ratio", dict(shapes=((4, 3), (6, 3), (8, 4)), trials=4)),
    "e08": ("experiments.e08_gap_family", dict(sizes=(3, 4, 5, 6, 8))),
    "e09": ("experiments.e09_general_masks", dict(shapes=((4, 3), (6, 4)), trials=5)),
    "e10": ("experiments.e10_memory_model1", dict(shapes=(("semi", 6, 2), ("clustered", 6, 4)), trials=3)),
    "e11": ("experiments.e11_memory_model2", dict(configs=((2, 2, 4), (4, 2, 6)), trials=3)),
    "e12": ("experiments.e12_scheduler_comparison", dict(n_jobs=5, trials=2)),
    "e13": ("experiments.e13_integrality", dict(trials=8, gap_ms=(2, 3, 4))),
    "e14": ("experiments.e14_scaling", dict(shapes=((6, 3), (10, 4)))),
    "e15": ("experiments.e15_schedulability", dict(utilizations=(0.6, 0.9), m=4, T_ref=20, trials=3)),
}


def _run_experiments(ids: List[str], backend: Optional[str] = None) -> int:
    import importlib
    import inspect

    chosen = ids or sorted(_EXPERIMENTS)
    for exp_id in chosen:
        if exp_id not in _EXPERIMENTS:
            print(f"unknown experiment {exp_id!r}; choose from {sorted(_EXPERIMENTS)}")
            return 2
        module_name, kwargs = _EXPERIMENTS[exp_id]
        module = importlib.import_module(f"repro.{module_name}")
        kwargs = dict(kwargs)
        if backend is not None:
            parameters = inspect.signature(module.run).parameters
            if "backend" in parameters:
                kwargs["backend"] = backend
            elif "backends" in parameters:
                kwargs["backends"] = (backend,)
        result = module.run(**kwargs)
        print()
        print(result.table.render())
    return 0


def _solve_demo(name: str, backend: str = "hybrid") -> int:
    from .analysis.gantt import render_gantt
    from .core.approx import two_approximation
    from .core.exact import solve_exact
    from .core.hierarchical import schedule_hierarchical

    if name == "ii1":
        from .workloads import example_ii1

        instance = example_ii1()
    elif name == "v1":
        from .workloads import example_v1

        instance = example_v1(6)
    elif name == "smp":
        from .simulation import CostModel, Topology
        from .workloads import rng_from_seed
        from .workloads.generators import instance_from_topology

        topo = Topology.smp_cmp(2, 1, 2)
        instance, _ = instance_from_topology(
            rng_from_seed(2017), topo, CostModel.xeon_like(), n=topo.m + 1,
            base_range=(20, 24), flexible_fraction=1.0, specialist_fraction=0.0,
        )
    else:
        print(f"unknown demo {name!r}; choose from ii1, v1, smp")
        return 2

    print(f"instance: {instance}")
    exact = solve_exact(instance)
    schedule = schedule_hierarchical(instance, exact.assignment, exact.optimum)
    print(f"\nexact optimum: {exact.optimum}")
    print(render_gantt(schedule))
    approx = two_approximation(instance, backend=backend)
    print(f"\n2-approximation: makespan {approx.makespan} "
          f"(T* = {approx.T_lp}, guarantee ≤ {approx.bound}, "
          f"backend = {backend})")
    print(render_gantt(approx.schedule))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro``; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Algorithms for hierarchical and "
        "semi-partitioned parallel scheduling' (IPDPS 2017)",
    )
    sub = parser.add_subparsers(dest="command")
    exp = sub.add_parser("experiments", help="run the E01–E15 suite (test scale)")
    exp.add_argument("ids", nargs="*", help="experiment ids, e.g. e01 e08")
    exp.add_argument(
        "--backend",
        choices=("hybrid", "exact", "scipy"),
        default=None,
        help="LP backend override (default: each experiment's own)",
    )
    solve = sub.add_parser("solve", help="solve a built-in demo instance")
    solve.add_argument("--demo", default="ii1", help="ii1 | v1 | smp")
    solve.add_argument(
        "--backend",
        choices=("hybrid", "exact", "scipy"),
        default="hybrid",
        help="LP backend for the 2-approximation (default: hybrid)",
    )
    sub.add_parser("version", help="print the package version")

    args = parser.parse_args(argv)
    if args.command == "experiments":
        return _run_experiments(args.ids, backend=args.backend)
    if args.command == "solve":
        return _solve_demo(args.demo, backend=args.backend)
    if args.command == "version":
        print(__version__)
        return 0
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main
    sys.exit(main())
