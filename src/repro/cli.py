"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments [ids…|list] [--backend hybrid|exact|scipy]``
    Run (a subset of) the E01–E15 experiment suite at test scale and print
    the tables; ``experiments list`` prints every registered experiment id
    with its one-line summary.  ``--backend`` overrides the LP backend for
    every experiment whose runner accepts one.
``sweep <ids…> [--jobs N] [--store PATH] [--seeds K] [--seed0 S] [--shard K/N] [--params k=v …]``
    Shard the selected experiments' parameter spaces across a process pool
    and persist results in a resumable store (SQLite index + JSONL
    payloads).  Completed tasks are skipped on re-runs; ``--jobs N`` output
    is bit-identical to ``--jobs 1``.  ``--shard K/N`` runs only the K-th
    of N deterministic round-robin slices of the task list, so independent
    CI machines can split one sweep and a final un-sharded run resumes
    with nothing left to execute.  Fault tolerance: ``--task-timeout`` /
    ``--task-pivots`` / ``--task-memory`` budget each attempt,
    ``--task-retries`` bounds retries, failures land in the store's
    ledger (quarantined after the budget; ``--retry-failed`` re-runs
    them), and ``--chaos SPEC`` injects deterministic faults to prove the
    recovery paths work.
``report <store> [ids…] [--timings]``
    Reassemble accumulated sweep tables from a results store;
    ``--failures`` renders the failure ledger instead.
``solve --demo <name> [--backend hybrid|exact|scipy]``
    Solve one of the built-in demo instances (``ii1``, ``v1``, ``smp``) with
    the exact solver and the 2-approximation, printing schedules as Gantt
    charts.
``analyze [--demo <name> | --topology <name> --utilization U] [--class C] [--T X]``
    Analytic schedulability (the :mod:`repro.rta` engine): print the
    SCHEDULABLE / UNSCHEDULABLE / UNKNOWN verdict with its certificate —
    per-job busy-window response bounds for witnesses, the violated demand
    bound for refutations — all exact Fractions, zero LP solves
    (``--profile`` proves it by counter; ``--trace`` shows the ``rta.*``
    spans).
``store stats <store>``
    Inspect a store/cache directory: bucket entry counts and payload sizes,
    solve-cache hit rates, per-experiment solver counters.
``version``
    Print the package version.

Backend guide: ``hybrid`` (default) = HiGHS speed with exact certification;
``exact`` = pure rational simplex; ``scipy`` = uncertified floats (fast,
re-checked at the call sites that need exactness).

Orthogonal to the backend, ``--kernel revised|tableau`` (on ``experiments``
and ``solve``) selects the exact pivoting engine — ``revised`` (default) is
the factorized-basis simplex, ``tableau`` the dense fraction-free tableau —
and ``--profile`` prints aggregated solver counters (solves, pivots,
refactorizations, warm-start hits, probe shortcuts, cache hits/misses)
after the run, so perf claims can cite counters instead of wall-clock.

``--cache PATH`` (on ``experiments`` and ``solve``) opens a persistent
solve cache at PATH and makes it the process default: every
:class:`repro.session.Session` the run constructs looks solves up by
content key before computing.  A warm second run performs **zero** LP
solves — ``--profile`` shows only cache hits.  The store format is the
sweep store's (SQLite index + JSONL payloads), so a cache directory can be
inspected with the same tooling.

``--trace FILE`` (on ``experiments``, ``sweep`` and ``solve``) records the
run's span tree — LP solves with phase boundaries, binary-search probes,
session cache lookups, admission windows, sweep tasks — through
:mod:`repro.obs`.  A ``.jsonl`` suffix streams one canonical JSON span per
line; any other suffix writes a Chrome ``trace_event`` file that opens in
``chrome://tracing`` or https://ui.perfetto.dev.  Sweeps merge worker span
trees into the driver's trace.  ``repro report --profile <store>`` and
``repro store stats <store>`` read the measured side back from a store
index: per-experiment and fleet-wide solver counters, bucket sizes, cache
hit rates.
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import Any, Dict, List, Optional

from . import __version__


def _parse_params(pairs: List[str]) -> Dict[str, Any]:
    """``k=v`` pairs with Python-literal values (``trials=2``,
    ``shapes="((4,3),(6,3))"``); non-literals stay strings."""
    overrides: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--params expects key=value, got {pair!r}")
        key, _, raw = pair.partition("=")
        try:
            overrides[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            overrides[key] = raw
    return overrides


def _list_experiments() -> int:
    from .runner import all_specs

    for spec in all_specs():
        print(f"{spec.id}  {spec.summary}")
    return 0


def _run_experiments(ids: List[str], backend: Optional[str] = None) -> int:
    from .runner import experiment_ids, get_spec

    if ids and ids[0] == "list":
        return _list_experiments()
    chosen = ids or experiment_ids()
    for exp_id in chosen:
        try:
            spec = get_spec(exp_id)
        except KeyError:
            print(f"unknown experiment {exp_id!r}; choose from {experiment_ids()}")
            return 2
        kwargs = dict(spec.cli_params)
        if backend is not None:
            if spec.accepts("backend"):
                kwargs["backend"] = backend
            elif spec.accepts("backends"):
                kwargs["backends"] = (backend,)
        result = spec.run(**kwargs)
        print()
        print(result.table.render())
    return 0


def _parse_shard(raw: Optional[str]):
    """``K/N`` → ``(K, N)`` with 1 ≤ K ≤ N (SystemExit on malformed input)."""
    if raw is None:
        return None
    try:
        k_str, _, n_str = raw.partition("/")
        k, n = int(k_str), int(n_str)
    except ValueError:
        raise SystemExit(f"--shard expects K/N (e.g. 1/3), got {raw!r}")
    if n < 1 or not 1 <= k <= n:
        raise SystemExit(f"--shard requires 1 ≤ K ≤ N, got {raw!r}")
    return (k, n)


def _run_sweep(
    ids: List[str],
    jobs: int,
    store_path: str,
    seeds: int,
    seed0: Optional[int],
    params: List[str],
    shard: Optional[str] = None,
    trace: bool = False,
    task_timeout: Optional[float] = None,
    task_retries: int = 0,
    task_memory: Optional[float] = None,
    task_pivots: Optional[int] = None,
    chaos: Optional[str] = None,
    retry_failed: bool = False,
) -> int:
    from .runner import ResultsStore, TaskBudget, experiment_ids, get_spec, run_sweep
    from .runner.chaos import resolve as resolve_chaos

    chosen = ids or experiment_ids()
    known = set(experiment_ids())
    unknown = [i for i in chosen if i not in known]
    if unknown:
        print(f"unknown experiment(s) {unknown}; choose from {sorted(known)}")
        return 2
    overrides = _parse_params(params)
    # A key no selected experiment accepts is almost certainly a typo; a
    # silently-dropped override would cache default-parameter results the
    # user believes were overridden.
    for key in overrides:
        takers = [i for i in chosen if get_spec(i).accepts(key)]
        if not takers:
            print(
                f"--params key {key!r} is not accepted by any of {chosen}; "
                "check `repro experiments list` and the run() signatures"
            )
            return 2
    if seeds > 1 or seed0 is not None:
        seedable = [i for i in chosen if get_spec(i).seedable]
        if not seedable:
            print(
                f"--seeds/--seed0 have no effect: none of {chosen} takes a "
                "seed (deterministic worked examples run once per point)"
            )
            return 2
        unseedable = sorted(set(chosen) - set(seedable))
        if unseedable:
            print(f"note: {unseedable} take no seed; replicates apply to {seedable}")
    shard_kn = _parse_shard(shard)
    try:
        budget = TaskBudget(
            wall_seconds=task_timeout,
            max_pivots=task_pivots,
            max_memory_mb=task_memory,
            retries=task_retries,
        )
        chaos_spec = resolve_chaos(chaos)
    except ValueError as exc:
        raise SystemExit(str(exc))
    with ResultsStore(store_path) as store:
        stats = run_sweep(
            chosen,
            store,
            jobs=jobs,
            overrides=overrides,
            seeds=seeds,
            seed0=seed0,
            shard=shard_kn,
            echo=print,
            trace=trace,
            budget=budget,
            chaos=chaos_spec,
            retry_failed=retry_failed,
        )
    shard_note = f", shard {shard}" if shard_kn else ""
    fault_note = ""
    if stats.quarantined:
        fault_note += f", {stats.quarantined} quarantined"
    if stats.retried:
        fault_note += f", {stats.retried} retried"
    if stats.budget_kills:
        fault_note += f", {stats.budget_kills} budget kills"
    print(
        f"\nsweep: {stats.total} tasks{shard_note} — {stats.executed} executed, "
        f"{stats.skipped} skipped (cached), {stats.failed} failed{fault_note}  "
        f"[store: {store_path}]"
    )
    if stats.failed or stats.quarantined:
        print(
            "failures are recorded in the store ledger; inspect with "
            f"`repro report --failures {store_path}`, re-run quarantined "
            "tasks with `repro sweep --retry-failed`"
        )
    return 1 if stats.failed or stats.quarantined else 0


def _run_report(
    store_path: str, ids: List[str], timings: bool, profile: bool = False,
    failures: bool = False,
) -> int:
    import os

    from .runner import ResultsStore, assemble_table

    if not os.path.isdir(store_path):
        print(f"no results store at {store_path!r}")
        return 2
    with ResultsStore(store_path) as store:
        if failures:
            return _render_failures(store, ids or None)
        chosen = ids or store.experiments()
        if not chosen and not profile:
            print(f"store {store_path!r} holds no completed tasks yet")
            return 0
        for exp_id in chosen:
            table = assemble_table(store, exp_id, timings=timings)
            if table is None:
                print(f"\n{exp_id}: no completed tasks in store")
                continue
            print()
            print(table.render())
        if profile:
            print()
            _render_store_profile(store, ids or None)
    return 0


def _render_failures(store, ids: Optional[List[str]] = None) -> int:
    """``repro report --failures``: render the store's failure ledger."""
    rows = store.failures()
    if ids:
        wanted = set(ids)
        rows = [row for row in rows if row["experiment"] in wanted]
    if not rows:
        print("failure ledger is empty (no open failures)")
        return 0
    print(f"failure ledger: {len(rows)} open failure(s)")
    for row in rows:
        attempts = row["attempts"]
        print(
            f"\n{row['experiment']}  key={row['key'][:12]}  "
            f"attempts={attempts}  elapsed={row['elapsed_s']:.2f}s"
        )
        print(f"  {row['error_class']}: {row['message']}")
        if row.get("params_json"):
            print(f"  params: {row['params_json']}")
        if row.get("traceback"):
            last = row["traceback"].rstrip().splitlines()[-1]
            print(f"  traceback (last line): {last}")
    print(
        "\nre-run with `repro sweep --retry-failed` to retry quarantined "
        "tasks; a successful run clears its ledger row"
    )
    return 0


def _render_store_profile(store, ids: Optional[List[str]] = None) -> None:
    """Per-experiment and fleet-wide solver counters from a store index."""
    from .lp.stats import SolverStats

    totals = store.stats_totals()
    if ids:
        totals = {name: totals[name] for name in ids if name in totals}
    if not totals:
        print(
            "no solver counters in the store index (tasks recorded before "
            "the observability layer carry none; re-run the sweep to fill "
            "them in)"
        )
        return
    print("per-experiment solver counters (store index):")
    for name in sorted(totals):
        s = totals[name]
        kernels = ", ".join(
            f"{k}×{v}" for k, v in sorted(s.kernels.items())
        ) or "none"
        print(
            f"  {name}: solves={s.solves} ({kernels}) pivots={s.pivots} "
            f"refactorizations={s.refactorizations} "
            f"cache={s.cache_hits}h/{s.cache_misses}m"
        )
    fleet = SolverStats()
    for s in totals.values():
        fleet.add(s)
    print()
    print("fleet-wide " + fleet.render())


def _store_stats(store_path: str) -> int:
    """``repro store stats``: bucket sizes, hit rates, solver counters."""
    import os

    from .lp.stats import SolverStats
    from .session.cache import SolveCache

    if not os.path.isdir(store_path):
        print(f"no store at {store_path!r}")
        return 2
    with SolveCache(store_path) as cache:
        summary = cache.bucket_summary()
        if not summary:
            print(f"store {store_path!r} holds no completed entries yet")
            return 0
        totals = cache.stats_totals()
        print(f"store: {cache.root}")
        print()
        header = (
            f"{'bucket':<24} {'entries':>7} {'payload':>10} {'elapsed':>9} "
            f"{'solves':>7} {'pivots':>8} {'refac':>6} {'cache h/m':>10}"
        )
        print(header)
        print("-" * len(header))
        for name in sorted(summary):
            info = summary[name]
            s = totals.get(name, SolverStats())
            print(
                f"{name:<24} {info['entries']:>7} "
                f"{info['payload_bytes']:>9}B {info['elapsed_s']:>8.2f}s "
                f"{s.solves:>7} {s.pivots:>8} {s.refactorizations:>6} "
                f"{f'{s.cache_hits}/{s.cache_misses}':>10}"
            )
        fleet = SolverStats()
        for s in totals.values():
            fleet.add(s)
        lookups = fleet.cache_hits + fleet.cache_misses
        print()
        if lookups:
            rate = 100.0 * fleet.cache_hits / lookups
            print(
                f"solve-cache lookups: {lookups} "
                f"({fleet.cache_hits} hits, {rate:.0f}% hit rate)"
            )
        open_failures = cache.failure_count()
        if open_failures:
            print(
                f"failure ledger: {open_failures} open failure(s) — "
                "`repro report --failures` for details"
            )
        print("fleet-wide " + fleet.render())
    return 0


def _demo_instance(name: str):
    """The built-in demo instances shared by ``solve`` and ``analyze``."""
    if name == "ii1":
        from .workloads import example_ii1

        return example_ii1()
    if name == "v1":
        from .workloads import example_v1

        return example_v1(6)
    if name == "smp":
        from .simulation import CostModel, Topology
        from .workloads import rng_from_seed
        from .workloads.generators import instance_from_topology

        topo = Topology.smp_cmp(2, 1, 2)
        instance, _ = instance_from_topology(
            rng_from_seed(2017), topo, CostModel.xeon_like(), n=topo.m + 1,
            base_range=(20, 24), flexible_fraction=1.0, specialist_fraction=0.0,
        )
        return instance
    return None


def _solve_demo(name: str, backend: str = "hybrid", kernel: Optional[str] = None) -> int:
    from .analysis.gantt import render_gantt
    from .session import Session

    instance = _demo_instance(name)
    if instance is None:
        print(f"unknown demo {name!r}; choose from ii1, v1, smp")
        return 2

    print(f"instance: {instance}")
    with Session(backend=backend, kernel=kernel) as session:
        exact = session.solve_exact(instance)
        schedule = session.template(instance, exact.assignment, exact.optimum)
        print(f"\nexact optimum: {exact.optimum}")
        print(render_gantt(schedule))
        approx = session.two_approximation(instance)
        print(f"\n2-approximation: makespan {approx.makespan} "
              f"(T* = {approx.T_lp}, guarantee ≤ {approx.bound}, "
              f"backend = {backend})")
        print(render_gantt(approx.schedule))
    return 0


def _analyze(
    demo: Optional[str],
    topology: Optional[str],
    utilization: float,
    seed: int,
    scheduler_class: str,
    T: Optional[str],
) -> int:
    """``repro analyze``: analytic schedulability verdict + certificate."""
    from fractions import Fraction

    from .rta import SCHEDULABLE, UNSCHEDULABLE, analytic_schedulable

    if topology is not None:
        from .workloads import rng_from_seed
        from .workloads.families import make_topology
        from .workloads.generators import utilization_workload

        topo = make_topology(topology)
        T_ref = Fraction(T) if T is not None else Fraction(20)
        instance = utilization_workload(
            rng_from_seed(seed), topo.family, utilization, T_ref
        )
    else:
        instance = _demo_instance(demo or "ii1")
        if instance is None:
            print(f"unknown demo {demo!r}; choose from ii1, v1, smp")
            return 2
        T_ref = Fraction(T) if T is not None else instance.trivial_bounds()[0]

    print(f"instance: {instance}")
    verdict = analytic_schedulable(instance, scheduler_class, T_ref)
    print(f"\nverdict: {verdict.status}")
    print(f"class:   {verdict.scheduler_class}")
    print(f"T:       {verdict.T}")
    print(f"reason:  {verdict.reason}")
    cert = verdict.certificate
    if verdict.status == SCHEDULABLE:
        print(f"strategy: {cert['strategy']}")
        print(f"makespan bound: {cert['makespan_bound']}")
        print("per-job response bounds (busy windows):")
        for j, bound in sorted(verdict.response_bounds.items()):
            mask = ",".join(map(str, cert["masks"][j]))
            print(f"  job {j} on {{{mask}}}: ≤ {bound}")
    elif verdict.status == UNSCHEDULABLE:
        print(f"violated test: {cert.get('test')}")
        print(f"  {cert.get('detail')}")
        if cert.get("lhs") is not None:
            print(f"  bound: {cert['lhs']} > {cert['rhs']}")
    else:
        print(f"strategies tried: {', '.join(cert['strategies_tried'])}")
        print(f"demand margin: {cert['demand_margin']}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro``; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Algorithms for hierarchical and "
        "semi-partitioned parallel scheduling' (IPDPS 2017)",
    )
    sub = parser.add_subparsers(dest="command")
    exp = sub.add_parser(
        "experiments", help="run the E01–E15 suite (test scale), or list ids"
    )
    exp.add_argument("ids", nargs="*", help="experiment ids (e.g. e01 e08), or 'list'")
    exp.add_argument(
        "--backend",
        choices=("hybrid", "exact", "scipy"),
        default=None,
        help="LP backend override (default: each experiment's own)",
    )
    exp.add_argument(
        "--kernel",
        choices=("revised", "tableau"),
        default=None,
        help="exact pivoting kernel for every solve (default: revised)",
    )
    exp.add_argument(
        "--profile", action="store_true",
        help="print aggregated solver counters after the run",
    )
    exp.add_argument(
        "--cache", default=None, metavar="PATH",
        help="persistent solve cache directory; a warm run does zero LP solves",
    )
    exp.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a span trace (.jsonl = JSONL spans, else Chrome "
        "trace_event for chrome://tracing / Perfetto)",
    )
    sweep = sub.add_parser(
        "sweep", help="shard experiment sweeps across a process pool"
    )
    sweep.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    sweep.add_argument("--jobs", type=int, default=1, help="worker processes")
    sweep.add_argument(
        "--store", default="results", help="results store directory (default: results)"
    )
    sweep.add_argument(
        "--seeds", type=int, default=1,
        help="replicates per sweep point with derived seeds (default: 1 = "
        "each experiment's built-in seed)",
    )
    sweep.add_argument(
        "--seed0", type=int, default=None,
        help="root seed for per-task seed derivation",
    )
    sweep.add_argument(
        "--shard", default=None, metavar="K/N",
        help="run only the K-th of N deterministic round-robin slices of "
        "the task list (split one sweep across CI machines)",
    )
    sweep.add_argument(
        "--params", nargs="*", default=[], metavar="K=V",
        help="axis overrides applied to every experiment accepting them",
    )
    sweep.add_argument(
        "--profile", action="store_true",
        help="print aggregated solver counters after the sweep (worker "
        "counters included)",
    )
    sweep.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a span trace of the sweep; worker span trees are "
        "merged into the driver's trace",
    )
    sweep.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per task attempt; an expired task's worker "
        "is killed and the attempt recorded (needs --jobs >= 2)",
    )
    sweep.add_argument(
        "--task-retries", type=int, default=0, metavar="N",
        help="extra attempts per failed task before its failure is final "
        "(default: 0)",
    )
    sweep.add_argument(
        "--task-memory", type=float, default=None, metavar="MB",
        help="Python-allocation peak budget per task attempt, in MiB "
        "(tracemalloc-enforced in the worker)",
    )
    sweep.add_argument(
        "--task-pivots", type=int, default=None, metavar="N",
        help="simplex pivot budget per task attempt (enforced through the "
        "solver's own pivot-limit channel)",
    )
    sweep.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="deterministic fault injection, e.g. 'crash:0.1,hang:0.05' "
        "(kinds: crash|hang|pivot|fail, optional @ATTEMPT qualifier; "
        "default: $REPRO_CHAOS)",
    )
    sweep.add_argument(
        "--retry-failed", action="store_true",
        help="re-run tasks the failure ledger has quarantined",
    )
    report = sub.add_parser(
        "report", help="reassemble accumulated sweep tables from a store"
    )
    report.add_argument("store", help="results store directory")
    report.add_argument("ids", nargs="*", help="experiment ids (default: all stored)")
    report.add_argument(
        "--timings", action="store_true",
        help="append per-task wall-clock from the store index",
    )
    report.add_argument(
        "--profile", action="store_true",
        help="render per-experiment and fleet-wide solver counters from "
        "the store index",
    )
    report.add_argument(
        "--failures", action="store_true",
        help="render the store's failure ledger (open failures and "
        "quarantined tasks) instead of result tables",
    )
    solve = sub.add_parser("solve", help="solve a built-in demo instance")
    solve.add_argument("--demo", default="ii1", help="ii1 | v1 | smp")
    solve.add_argument(
        "--backend",
        choices=("hybrid", "exact", "scipy"),
        default="hybrid",
        help="LP backend for the 2-approximation (default: hybrid)",
    )
    solve.add_argument(
        "--kernel",
        choices=("revised", "tableau"),
        default=None,
        help="exact pivoting kernel for every solve (default: revised)",
    )
    solve.add_argument(
        "--profile", action="store_true",
        help="print aggregated solver counters after the run",
    )
    solve.add_argument(
        "--cache", default=None, metavar="PATH",
        help="persistent solve cache directory; a warm run does zero LP solves",
    )
    solve.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a span trace (.jsonl = JSONL spans, else Chrome "
        "trace_event for chrome://tracing / Perfetto)",
    )
    analyze = sub.add_parser(
        "analyze",
        help="analytic schedulability verdict + certificate (zero LP solves)",
    )
    analyze.add_argument("--demo", default=None, help="ii1 | v1 | smp (default: ii1)")
    analyze.add_argument(
        "--topology", default=None, metavar="NAME",
        help="judge a generated workload on a topology-zoo family instead "
        "of a demo (e.g. flat4, clustered4x2)",
    )
    analyze.add_argument(
        "--utilization", type=float, default=0.8,
        help="target utilization for --topology workloads (default: 0.8)",
    )
    analyze.add_argument(
        "--seed", type=int, default=190,
        help="workload seed for --topology (default: 190)",
    )
    analyze.add_argument(
        "--class", dest="scheduler_class", default="hierarchical",
        choices=("global", "partitioned", "clustered", "semi", "hierarchical"),
        help="scheduler class to analyze within (default: hierarchical)",
    )
    analyze.add_argument(
        "--T", default=None, metavar="MAKESPAN",
        help="makespan budget as an exact number, e.g. 20 or 41/2 "
        "(default: the instance's trivial lower bound; 20 with --topology)",
    )
    analyze.add_argument(
        "--profile", action="store_true",
        help="print solver counters after the verdict (the analytic path "
        "proves itself LP-free: all zeros)",
    )
    analyze.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record the rta.* span tree (.jsonl = JSONL spans, else "
        "Chrome trace_event)",
    )
    store_cmd = sub.add_parser(
        "store", help="inspect a results/cache store directory"
    )
    store_sub = store_cmd.add_subparsers(dest="store_command")
    store_stats = store_sub.add_parser(
        "stats",
        help="bucket sizes, cache hit rates, per-experiment solver counters",
    )
    store_stats.add_argument("store", help="store directory")
    sub.add_parser("version", help="print the package version")

    args = parser.parse_args(argv)
    if getattr(args, "kernel", None):
        from .lp.simplex import set_default_kernel

        set_default_kernel(args.kernel)
    cache = None
    if getattr(args, "cache", None):
        from .session import set_default_cache

        cache = set_default_cache(args.cache)
    try:
        return _run_instrumented(args, parser)
    finally:
        if cache is not None:
            from .session import set_default_cache

            set_default_cache(None)
            cache.close()


def _run_instrumented(args, parser) -> int:
    """Dispatch under the requested ``--profile`` scope and ``--trace``
    tracer (``report --profile`` reads a store instead — no live scope)."""
    from contextlib import ExitStack

    trace_path = getattr(args, "trace", None)
    want_profile = (
        bool(getattr(args, "profile", False)) and args.command != "report"
    )
    tracer = None
    profile = None
    with ExitStack() as stack:
        if want_profile:
            from .lp.stats import collect_stats

            profile = stack.enter_context(collect_stats())
        if trace_path:
            from .obs import JsonlSpanSink, Tracer, span, tracing

            if trace_path.endswith(".jsonl"):
                sink = stack.enter_context(JsonlSpanSink(trace_path))
                tracer = Tracer(sink=sink)
            else:
                tracer = Tracer()
            stack.enter_context(tracing(tracer))
            stack.enter_context(span(f"repro.{args.command}"))
        code = _dispatch(args, parser)
    if tracer is not None:
        if not trace_path.endswith(".jsonl"):
            from .obs import write_chrome_trace

            write_chrome_trace(
                trace_path, tracer.spans, label=f"repro {args.command}"
            )
        print(f"\ntrace: {len(tracer.spans)} spans -> {trace_path}")
    if profile is not None:
        print()
        print(profile.render())
    return code


def _dispatch(args, parser) -> int:
    if args.command == "experiments":
        return _run_experiments(args.ids, backend=args.backend)
    if args.command == "sweep":
        return _run_sweep(
            args.ids, args.jobs, args.store, args.seeds, args.seed0,
            args.params, shard=args.shard, trace=bool(args.trace),
            task_timeout=args.task_timeout, task_retries=args.task_retries,
            task_memory=args.task_memory, task_pivots=args.task_pivots,
            chaos=args.chaos, retry_failed=args.retry_failed,
        )
    if args.command == "report":
        return _run_report(
            args.store, args.ids, args.timings, profile=args.profile,
            failures=args.failures,
        )
    if args.command == "solve":
        return _solve_demo(args.demo, backend=args.backend, kernel=args.kernel)
    if args.command == "analyze":
        return _analyze(
            args.demo, args.topology, args.utilization, args.seed,
            args.scheduler_class, args.T,
        )
    if args.command == "store":
        if getattr(args, "store_command", None) == "stats":
            return _store_stats(args.store)
        parser.parse_args(["store", "--help"])
        return 1
    if args.command == "version":
        print(__version__)
        return 0
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main
    sys.exit(main())
