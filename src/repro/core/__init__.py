"""Core algorithms of the paper: instances, ILP checks, schedulers, rounding."""

from .approx import TwoApproxResult, two_approximation
from .assignment import (
    Assignment,
    FeasibilityReport,
    FractionalAssignment,
    min_T_for_assignment,
    set_volumes,
    verify_ip1,
    verify_ip2,
    verify_lp,
)
from .exact import ExactResult, solve_exact
from .exact_ilp import ip3_feasible_integral, solve_exact_ilp
from .general_masks import EightApproxResult, GeneralMaskInstance, eight_approximation
from .hierarchical import LoadAllocation, allocate_loads, schedule_assignment, schedule_hierarchical
from .instance import Instance
from .laminar import LaminarFamily, is_laminar
from .memory import (
    Model1Result,
    Model2Result,
    harmonic,
    minimal_model1_T,
    minimal_model2_T,
    model1_lp_feasible,
    model2_lp_feasible,
    model2_rho,
    solve_model1,
    solve_model2,
)
from .programs import (
    admissible_pairs,
    build_ip3,
    feasible_lp_solution,
    lp_feasible,
    minimal_fractional_T,
)
from .pushdown import push_down, push_down_once
from .semi_partitioned import schedule_semi_partitioned

__all__ = [
    "Assignment",
    "EightApproxResult",
    "ExactResult",
    "FeasibilityReport",
    "FractionalAssignment",
    "GeneralMaskInstance",
    "Instance",
    "LaminarFamily",
    "LoadAllocation",
    "Model1Result",
    "Model2Result",
    "TwoApproxResult",
    "admissible_pairs",
    "allocate_loads",
    "build_ip3",
    "eight_approximation",
    "feasible_lp_solution",
    "harmonic",
    "ip3_feasible_integral",
    "is_laminar",
    "lp_feasible",
    "min_T_for_assignment",
    "minimal_fractional_T",
    "minimal_model1_T",
    "minimal_model2_T",
    "model1_lp_feasible",
    "model2_lp_feasible",
    "model2_rho",
    "push_down",
    "push_down_once",
    "schedule_assignment",
    "schedule_hierarchical",
    "schedule_semi_partitioned",
    "set_volumes",
    "solve_exact",
    "solve_exact_ilp",
    "solve_model1",
    "solve_model2",
    "two_approximation",
    "verify_ip1",
    "verify_ip2",
    "verify_lp",
]
