"""Theorem V.2 — the polynomial-time 2-approximation for hierarchical scheduling.

Pipeline (exactly the proof's construction):

1. Extend the family with all singletons (w.l.o.g. step of Section V); the
   singleton time of job *j* on machine *i* is its time on the minimal
   admissible set containing *i*.
2. Find ``T*``, the least horizon at which the LP relaxation of (IP-3) is
   feasible — a lower bound on the optimum (`minimal_fractional_T`).
3. By repeated Lemma V.1 (push-down) the fractional solution can be assumed
   to live on singletons, i.e. it is a feasible solution of the
   unrelated-machines LP of the collapse ``Iu`` at the same ``T*``.
4. Run Lenstra–Shmoys–Tardos rounding on ``Iu`` at ``T*``: integral
   assignment with per-machine load ≤ ``2T*``.
5. The assignment, extended by zeros on non-singletons, is feasible for
   (IP-2) at ``2T* ≤ 2·opt``; Algorithms 2+3 realize the schedule.

The returned object keeps both the LP lower bound and the achieved makespan
so experiment E07 can report empirical ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from .._fraction import is_inf, to_fraction
from ..exceptions import RoundingError
from ..rounding.lst import lst_round
from ..schedule.schedule import Schedule
from ..schedule.validator import validate_schedule
from .assignment import Assignment, min_T_for_assignment
from .hierarchical import schedule_hierarchical
from .instance import Instance
from .programs import feasible_lp_solution, minimal_fractional_T
from .pushdown import push_down


@dataclass
class TwoApproxResult:
    """Outcome of the Theorem V.2 algorithm."""

    instance: Instance
    """The singleton-extended instance the assignment refers to."""

    original: Instance
    """The instance the caller passed in."""

    T_lp: Fraction
    """``T*`` — the fractional lower bound on the optimal makespan."""

    assignment: Assignment
    """Integral assignment on singleton masks of the extended family."""

    schedule: Schedule
    makespan: Fraction

    @property
    def bound(self) -> Fraction:
        """The a-priori guarantee ``2·T*`` of Theorem V.2."""
        return 2 * self.T_lp

    @property
    def ratio_vs_lp(self) -> Fraction:
        """``makespan / T*`` — at most 2 by Theorem V.2."""
        if self.T_lp == 0:
            return Fraction(0)
        return self.makespan / self.T_lp

    def original_masks(self) -> Assignment:
        """The assignment mapped back to the original family.

        Each singleton mask ``{i}`` becomes the minimal original admissible
        set containing *i* — the set whose processing time defined the
        singleton's, so delivered work matches exactly.
        """
        masks: Dict[int, frozenset] = {}
        for j, alpha in self.assignment.items():
            if alpha in self.original.family:
                masks[j] = alpha
            else:
                (machine,) = tuple(alpha)
                containing = self.original.family.minimal_containing([machine])
                assert containing is not None
                masks[j] = containing
        return Assignment(masks)


def two_approximation(
    instance: Instance,
    backend: str = "hybrid",
    verify: bool = True,
    use_pushdown_certificate: bool = False,
    kernel: Optional[str] = None,
) -> TwoApproxResult:
    """Run the Theorem V.2 algorithm on a hierarchical instance.

    Parameters
    ----------
    backend:
        LP backend: ``"hybrid"`` (default — HiGHS candidates verified and
        repaired by the exact simplex, so basicness and ``T*`` are still
        exact), ``"exact"`` (pure rational simplex) or ``"scipy"``
        (uncertified floats; every point is exactness-checked and repaired
        before rounding).
    verify:
        Validate the final schedule and the ``≤ 2T*`` bound exactly; a
        failure raises :class:`RoundingError` (it would indicate a bug, not
        an unlucky instance — the guarantee is worst-case).
    use_pushdown_certificate:
        Additionally run Lemma V.1's push-down on an explicit fractional
        solution at ``T*`` and check it lands on singletons.  This is the
        proof's step 3; the pipeline itself only needs its *existence*, so
        the check is optional (tests enable it).
    kernel:
        Exact pivoting kernel for every solve in the pipeline (``None`` =
        the process default); threaded so a
        :class:`~repro.session.Session` can pin it without global state.
    """
    ext = instance.with_singletons()
    T_star = minimal_fractional_T(ext, backend=backend, kernel=kernel)

    if use_pushdown_certificate:
        x = feasible_lp_solution(ext, T_star, backend=backend, kernel=kernel)
        if x is None:  # pragma: no cover - minimal_fractional_T certified it
            raise RoundingError(f"LP infeasible at its own optimum T*={T_star}")
        pushed = push_down(ext, x, T_star)
        if not pushed.supported_on_singletons():  # pragma: no cover
            raise RoundingError("push-down certificate failed")

    # Collapse to the unrelated instance Iu (singleton processing times).
    p_matrix: Dict[int, Dict[int, Fraction]] = {}
    for j in range(ext.n):
        row: Dict[int, Fraction] = {}
        for i in sorted(ext.machines):
            value = ext.p(j, frozenset([i]))
            if not is_inf(value):
                row[i] = to_fraction(value)
        p_matrix[j] = row

    mapping = lst_round(p_matrix, T_star, backend=backend, kernel=kernel)
    assignment = Assignment({j: frozenset([i]) for j, i in mapping.items()})

    T_schedule = min_T_for_assignment(ext, assignment)
    schedule = schedule_hierarchical(ext, assignment, T_schedule)
    makespan = schedule.makespan()

    if verify:
        report = validate_schedule(ext, assignment, schedule, T=T_schedule)
        if not report.valid:  # pragma: no cover - would be a library bug
            raise RoundingError(f"2-approximation produced an invalid schedule: "
                                f"{report.violations[:3]}")
        if T_star > 0 and makespan > 2 * T_star:  # pragma: no cover
            raise RoundingError(
                f"Theorem V.2 bound violated: makespan {makespan} > 2·T* = {2 * T_star}"
            )

    return TwoApproxResult(
        instance=ext,
        original=instance,
        T_lp=T_star,
        assignment=assignment,
        schedule=schedule,
        makespan=makespan,
    )
