"""Assignments of jobs to affinity masks and the ILP feasibility checks.

An *assignment* maps every job to one admissible set (its affinity mask).
The paper encodes assignments as 0/1 variables ``x_{αj}``; feasibility for a
makespan ``T`` is governed by

* (IP-1), Section III — the semi-partitioned two-level case, and
* (IP-2), Section IV — general laminar families,

whose constraints this module checks exactly (Fraction arithmetic).  The
fractional counterpart (:class:`FractionalAssignment`) is what Lemma V.1 and
the Section V/VI rounding schemes operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple, Union

from .._fraction import INF, is_inf, to_fraction
from ..exceptions import InvalidAssignmentError
from .instance import Instance
from .laminar import MachineSet


class Assignment:
    """An integral assignment ``job -> affinity mask``.

    The mapping must cover exactly the jobs ``0..n-1`` of the instance it is
    checked against; masks must belong to the admissible family.
    """

    def __init__(self, masks: Mapping[int, Iterable[int]]):
        self._masks: Dict[int, MachineSet] = {
            int(j): frozenset(alpha) for j, alpha in masks.items()
        }

    def __getitem__(self, job: int) -> MachineSet:
        return self._masks[job]

    def __len__(self) -> int:
        return len(self._masks)

    def __iter__(self):
        return iter(sorted(self._masks))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Assignment):
            return NotImplemented
        return self._masks == other._masks

    def items(self) -> Iterable[Tuple[int, MachineSet]]:
        return sorted(self._masks.items())

    def jobs_on(self, alpha: Iterable[int]) -> Tuple[int, ...]:
        """Jobs whose mask is exactly *alpha*."""
        alpha = frozenset(alpha)
        return tuple(j for j, a in sorted(self._masks.items()) if a == alpha)

    def __repr__(self) -> str:
        parts = ", ".join(f"{j}->{{{','.join(map(str, sorted(a)))}}}" for j, a in self.items())
        return f"Assignment({parts})"


@dataclass
class ConstraintViolation:
    """A single violated ILP constraint, for diagnostics."""

    constraint: str
    detail: str
    lhs: Union[Fraction, float]
    rhs: Union[Fraction, float]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.constraint}: {self.detail} ({self.lhs} > {self.rhs})"


@dataclass
class FeasibilityReport:
    """Outcome of an ILP feasibility check."""

    feasible: bool
    violations: List[ConstraintViolation] = field(default_factory=list)

    def raise_if_infeasible(self) -> None:
        if not self.feasible:
            msgs = "; ".join(str(v) for v in self.violations)
            raise InvalidAssignmentError(f"assignment infeasible: {msgs}")


def _check_structure(instance: Instance, assignment: Assignment) -> None:
    jobs = set(range(instance.n))
    assigned = set(j for j in assignment)
    if assigned != jobs:
        raise InvalidAssignmentError(
            f"assignment covers jobs {sorted(assigned)} but instance has {sorted(jobs)}"
        )
    for j in assignment:
        if assignment[j] not in instance.family:
            raise InvalidAssignmentError(
                f"job {j} assigned to {sorted(assignment[j])}, not an admissible set"
            )


def set_volumes(instance: Instance, assignment: Assignment) -> Dict[MachineSet, Fraction]:
    """Total processing volume assigned to each admissible set.

    ``volume(α) = Σ_{j : mask(j)=α} P_j(α)`` — the quantity ``V`` consumed by
    Algorithms 1 and 2.
    """
    volumes: Dict[MachineSet, Fraction] = {a: Fraction(0) for a in instance.family.sets}
    for j, alpha in assignment.items():
        p = instance.p(j, alpha)
        if is_inf(p):
            raise InvalidAssignmentError(
                f"job {j} assigned to forbidden set {sorted(alpha)} (P=∞)"
            )
        volumes[alpha] += to_fraction(p)
    return volumes


def verify_ip2(
    instance: Instance,
    assignment: Assignment,
    T: Union[int, Fraction],
) -> FeasibilityReport:
    """Check the (IP-2) constraints of Section IV for ``(x, T)``.

    * (2a) every job has exactly one mask — structural, raises on failure;
    * (2b) for every ``α ∈ A``: ``Σ_j Σ_{β ⊆ α} p_{βj} x_{βj} ≤ |α|·T``;
    * (2c) ``p_{αj} x_{αj} ≤ T`` for every assigned pair.
    """
    _check_structure(instance, assignment)
    T = to_fraction(T)
    violations: List[ConstraintViolation] = []
    volumes = set_volumes(instance, assignment)
    for alpha in instance.family.sets:
        nested = sum((volumes[beta] for beta in instance.family.subsets_of(alpha)), Fraction(0))
        cap = len(alpha) * T
        if nested > cap:
            violations.append(
                ConstraintViolation(
                    "2b", f"capacity of α={sorted(alpha)}", nested, cap
                )
            )
    for j, alpha in assignment.items():
        p = to_fraction(instance.p(j, alpha))
        if p > T:
            violations.append(
                ConstraintViolation("2c", f"job {j} on α={sorted(alpha)}", p, T)
            )
    return FeasibilityReport(feasible=not violations, violations=violations)


def verify_ip1(
    instance: Instance,
    assignment: Assignment,
    T: Union[int, Fraction],
) -> FeasibilityReport:
    """Check the (IP-1) constraints of Section III for ``(x, T)``.

    Requires the instance's family to be the semi-partitioned one
    (``{M} ∪ singletons``).  Constraints:

    * (1a) one mask per job (structural);
    * (1b) total volume ≤ ``m·T``;
    * (1c) per-machine local volume ≤ ``T``;
    * (1d) individual processing times ≤ ``T``.

    For the semi-partitioned family these are exactly the (IP-2) constraints,
    which the test-suite cross-checks; the direct implementation mirrors the
    paper's Section III presentation.
    """
    family = instance.family
    root = frozenset(instance.machines)
    expected = {root} | {frozenset([i]) for i in instance.machines}
    if set(family.sets) != expected:
        raise InvalidAssignmentError(
            "verify_ip1 requires the semi-partitioned family {M} ∪ singletons"
        )
    _check_structure(instance, assignment)
    T = to_fraction(T)
    violations: List[ConstraintViolation] = []
    volumes = set_volumes(instance, assignment)
    total = sum(volumes.values(), Fraction(0))
    if total > instance.m * T:
        violations.append(
            ConstraintViolation("1b", "total volume", total, instance.m * T)
        )
    for i in sorted(instance.machines):
        local = volumes[frozenset([i])]
        if local > T:
            violations.append(
                ConstraintViolation("1c", f"machine {i} local volume", local, T)
            )
    for j, alpha in assignment.items():
        p = to_fraction(instance.p(j, alpha))
        if p > T:
            violations.append(
                ConstraintViolation("1d", f"job {j} on α={sorted(alpha)}", p, T)
            )
    return FeasibilityReport(feasible=not violations, violations=violations)


def min_T_for_assignment(instance: Instance, assignment: Assignment) -> Fraction:
    """The minimal makespan for which *assignment* satisfies (IP-2).

    By Theorem IV.3 the (IP-2) constraints are also sufficient, so this is
    the exact makespan achievable with the given masks:
    ``max( max_j p_{mask(j),j} , max_α nested_volume(α)/|α| )``.
    """
    _check_structure(instance, assignment)
    volumes = set_volumes(instance, assignment)
    best = Fraction(0)
    for alpha in instance.family.sets:
        nested = sum((volumes[beta] for beta in instance.family.subsets_of(alpha)), Fraction(0))
        best = max(best, Fraction(nested, len(alpha)))
    for j, alpha in assignment.items():
        best = max(best, to_fraction(instance.p(j, alpha)))
    return best


class FractionalAssignment:
    """A fractional solution ``x_{αj} ∈ [0,1]`` to the LP relaxation.

    Stored sparsely as ``(α, j) -> Fraction``; zero entries are dropped.
    This is the object Lemma V.1's push-down transformation rewrites.
    """

    def __init__(self, values: Mapping[Tuple[Iterable[int], int], Union[int, Fraction, float]]):
        self._x: Dict[Tuple[MachineSet, int], Fraction] = {}
        for (alpha, j), value in values.items():
            frac = to_fraction(value)
            if frac < 0:
                raise InvalidAssignmentError(f"negative fractional value x[{sorted(frozenset(alpha))},{j}]")
            if frac != 0:
                self._x[(frozenset(alpha), int(j))] = frac

    @classmethod
    def from_assignment(cls, assignment: Assignment) -> "FractionalAssignment":
        return cls({(alpha, j): Fraction(1) for j, alpha in assignment.items()})

    def value(self, alpha: Iterable[int], job: int) -> Fraction:
        return self._x.get((frozenset(alpha), job), Fraction(0))

    def items(self) -> Iterable[Tuple[Tuple[MachineSet, int], Fraction]]:
        return sorted(self._x.items(), key=lambda kv: (kv[0][1], sorted(kv[0][0])))

    @property
    def support(self) -> Tuple[Tuple[MachineSet, int], ...]:
        return tuple(k for k, _ in self.items())

    def job_total(self, job: int) -> Fraction:
        return sum((v for (a, j), v in self._x.items() if j == job), Fraction(0))

    def is_integral(self) -> bool:
        return all(v == 1 for v in self._x.values())

    def supported_on_singletons(self) -> bool:
        return all(len(alpha) == 1 for (alpha, _j) in self._x)

    def to_assignment(self) -> Assignment:
        if not self.is_integral():
            raise InvalidAssignmentError("fractional solution is not integral")
        masks: Dict[int, MachineSet] = {}
        for (alpha, j), _v in self._x.items():
            if j in masks:
                raise InvalidAssignmentError(f"job {j} assigned to two sets")
            masks[j] = alpha
        return Assignment(masks)

    def copy(self) -> "FractionalAssignment":
        return FractionalAssignment(dict(self._x))

    def slack(self, instance: Instance, alpha: Iterable[int], T: Union[int, Fraction]) -> Fraction:
        """``slack(α, x) = |α|·T − Σ_j Σ_{β ⊆ α} p_{βj} x_{βj}`` (Lemma V.1)."""
        alpha = frozenset(alpha)
        T = to_fraction(T)
        used = Fraction(0)
        for (beta, j), v in self._x.items():
            if beta <= alpha:
                p = instance.p(j, beta)
                if is_inf(p):
                    raise InvalidAssignmentError(
                        f"fractional mass on forbidden pair ({sorted(beta)}, {j})"
                    )
                used += to_fraction(p) * v
        return len(alpha) * T - used

    def __repr__(self) -> str:
        parts = ", ".join(
            f"x[{{{','.join(map(str, sorted(a)))}}},{j}]={v}" for (a, j), v in self.items()
        )
        return f"FractionalAssignment({parts})"


def verify_lp(
    instance: Instance,
    x: FractionalAssignment,
    T: Union[int, Fraction],
    require_pruned: bool = True,
) -> FeasibilityReport:
    """Check the LP relaxation (4a)-(4d) of (IP-3) for ``(x, T)``.

    * (4a) ``Σ_α x_{αj} = 1`` for every job;
    * (4b) ``slack(α, x) ≥ 0`` for every admissible set;
    * (4c) non-negativity (enforced structurally);
    * (4d) ``x_{αj} = 0`` whenever ``p_{αj} > T`` (the pruning set R) —
      checked only when *require_pruned* is ``True``.
    """
    T = to_fraction(T)
    violations: List[ConstraintViolation] = []
    for j in range(instance.n):
        total = x.job_total(j)
        if total != 1:
            violations.append(
                ConstraintViolation("4a", f"job {j} total assignment", total, Fraction(1))
            )
    for alpha in instance.family.sets:
        s = x.slack(instance, alpha, T)
        if s < 0:
            violations.append(
                ConstraintViolation("4b", f"slack of α={sorted(alpha)}", -s, Fraction(0))
            )
    if require_pruned:
        for (alpha, j), v in x.items():
            p = instance.p(j, alpha)
            if is_inf(p) or to_fraction(p) > T:
                violations.append(
                    ConstraintViolation(
                        "4d", f"x[{sorted(alpha)},{j}]={v} but p={p} > T", v, Fraction(0)
                    )
                )
    return FeasibilityReport(feasible=not violations, violations=violations)
