"""Exact optimal solving of the hierarchical scheduling problem.

Because the (IP-2) constraints are necessary *and* sufficient
(Theorem IV.3), the optimal makespan is

    opt(I) = min over assignments x of
             max( max_j p_{mask(j),j},  max_α Σ_{β⊆α} vol(β) / |α| )

so exact solving is a search over integral assignments.  A depth-first
branch-and-bound with exact arithmetic explores jobs in decreasing
cheapest-time order; admissible-set choices are tried cheapest-first and
pruned against the incumbent with two lower bounds (current partial load
vector, plus every unassigned job's cheapest remaining contribution).

Only meant for the small instances of the experiment suite (it is the
reference that E07 measures approximation ratios against); the 2-approx of
Section V is the scalable path.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple, Union

from .._fraction import is_inf, to_fraction
from ..exceptions import InfeasibleError, SolverError
from ..schedule.schedule import Schedule
from .assignment import Assignment, min_T_for_assignment
from .hierarchical import schedule_hierarchical
from .instance import Instance
from .laminar import MachineSet


@dataclass
class ExactResult:
    assignment: Assignment
    optimum: Fraction
    nodes_explored: int

    def build_schedule(self, instance: Instance) -> Schedule:
        return schedule_hierarchical(instance, self.assignment, self.optimum)


def solve_exact(
    instance: Instance,
    upper_bound: Optional[Union[int, Fraction]] = None,
    node_limit: int = 2_000_000,
) -> ExactResult:
    """Find an assignment of provably minimal makespan.

    Parameters
    ----------
    upper_bound:
        An incumbent to start from (e.g. the 2-approximation's makespan);
        tightens pruning but never changes the result.
    node_limit:
        Safety cap on search nodes; exceeding it raises
        :class:`SolverError`.
    """
    family = instance.family
    sets = family.sets
    set_index = {s: k for k, s in enumerate(sets)}
    supersets: List[List[int]] = [
        [set_index[alpha]] + [set_index[a] for a in family.ancestors(alpha)]
        for alpha in sets
    ]
    sizes = [len(alpha) for alpha in sets]

    # Per-job options sorted cheapest-first; jobs ordered hardest-first
    # (largest cheapest time) so pruning bites early.
    options: List[List[Tuple[Fraction, int]]] = []
    for j in range(instance.n):
        opts = []
        for alpha in sets:
            p = instance.p(j, alpha)
            if not is_inf(p):
                opts.append((to_fraction(p), set_index[alpha]))
        if not opts:
            raise InfeasibleError(f"job {j} has no admissible set")
        opts.sort()
        options.append(opts)
    job_order = sorted(range(instance.n), key=lambda j: -options[j][0][0])

    # remaining_min[t] = Σ_{jobs from position t on} cheapest time — an
    # admissible heuristic for the total-volume bound at the root set(s).
    remaining_min: List[Fraction] = [Fraction(0)] * (instance.n + 1)
    for t in range(instance.n - 1, -1, -1):
        remaining_min[t] = remaining_min[t + 1] + options[job_order[t]][0][0]

    num_sets = len(sets)
    nested: List[Fraction] = [Fraction(0)] * num_sets  # Σ_{β⊆α} vol(β)
    chosen: List[int] = [-1] * instance.n
    best_T: Optional[Fraction] = to_fraction(upper_bound) if upper_bound is not None else None
    best_choice: Optional[List[int]] = None
    nodes = 0
    m = instance.m
    assigned_total = Fraction(0)

    def current_T(max_p: Fraction) -> Fraction:
        peak = max_p
        for k in range(num_sets):
            if nested[k] > sizes[k] * peak:
                peak = nested[k] / sizes[k]
        return peak

    def dfs(t: int, max_p: Fraction) -> None:
        nonlocal nodes, best_T, best_choice, assigned_total
        nodes += 1
        if nodes > node_limit:
            raise SolverError(f"exact search exceeded {node_limit} nodes")
        lower = current_T(max_p)
        # Any schedule of the total volume on m machines needs ≥ volume/m.
        lower = max(lower, (assigned_total + remaining_min[t]) / m)
        if best_T is not None and lower >= best_T:
            return
        if t == instance.n:
            if best_T is None or lower < best_T:
                best_T = lower
                best_choice = chosen.copy()
            return
        j = job_order[t]
        for p, k in options[j]:
            if best_T is not None and p >= best_T:
                break  # options sorted; all further are at least as large
            for a in supersets[k]:
                nested[a] += p
            assigned_total += p
            chosen[j] = k
            dfs(t + 1, max(max_p, p))
            chosen[j] = -1
            assigned_total -= p
            for a in supersets[k]:
                nested[a] -= p

    dfs(0, Fraction(0))
    if best_choice is None:
        raise InfeasibleError("no feasible assignment exists")
    assignment = Assignment({j: sets[best_choice[j]] for j in range(instance.n)})
    optimum = min_T_for_assignment(instance, assignment)
    return ExactResult(assignment=assignment, optimum=optimum, nodes_explored=nodes)


def find_assignment_within(
    instance: Instance,
    T: Union[int, Fraction],
    node_limit: int = 2_000_000,
) -> Optional[Assignment]:
    """The first assignment with makespan ≤ *T*, or None when none exists.

    A decision-problem variant of :func:`solve_exact` — it stops at the
    first witness instead of optimizing, which is what schedulability
    studies (experiment E15) need and is exponentially cheaper near the
    feasibility boundary.
    """
    T = to_fraction(T)
    family = instance.family
    sets = family.sets
    set_index = {s: k for k, s in enumerate(sets)}
    supersets: List[List[int]] = [
        [set_index[alpha]] + [set_index[a] for a in family.ancestors(alpha)]
        for alpha in sets
    ]
    capacities = [len(alpha) * T for alpha in sets]

    options: List[List[Tuple[Fraction, int]]] = []
    for j in range(instance.n):
        opts = []
        for alpha in sets:
            p = instance.p(j, alpha)
            if not is_inf(p) and to_fraction(p) <= T:
                opts.append((to_fraction(p), set_index[alpha]))
        if not opts:
            return None
        opts.sort()
        options.append(opts)
    job_order = sorted(range(instance.n), key=lambda j: -options[j][0][0])

    remaining_min: List[Fraction] = [Fraction(0)] * (instance.n + 1)
    for t in range(instance.n - 1, -1, -1):
        remaining_min[t] = remaining_min[t + 1] + options[job_order[t]][0][0]

    nested: List[Fraction] = [Fraction(0)] * len(sets)
    chosen: List[int] = [-1] * instance.n
    assigned_total = Fraction(0)
    nodes = 0
    m = instance.m

    def dfs(t: int) -> bool:
        nonlocal nodes, assigned_total
        nodes += 1
        if nodes > node_limit:
            raise SolverError(f"feasibility search exceeded {node_limit} nodes")
        if (assigned_total + remaining_min[t]) > m * T:
            return False
        if t == instance.n:
            return True
        j = job_order[t]
        for p, k in options[j]:
            ok = True
            for a in supersets[k]:
                if nested[a] + p > capacities[a]:
                    ok = False
                    break
            if not ok:
                continue
            for a in supersets[k]:
                nested[a] += p
            assigned_total += p
            chosen[j] = k
            if dfs(t + 1):
                return True
            chosen[j] = -1
            assigned_total -= p
            for a in supersets[k]:
                nested[a] -= p
        return False

    if not dfs(0):
        return None
    return Assignment({j: sets[chosen[j]] for j in range(instance.n)})
