"""Exact optimum via the (IP-3) ILP — an independent cross-check solver.

:mod:`repro.core.exact` searches assignments combinatorially; this module
solves the same problem through the generic LP-based branch-and-bound on the
paper's own decision program, with the Section V binary search over
horizons.  The two solvers share no code beyond the instance model, so their
agreement (asserted in the test suite over random instances) is strong
evidence both are correct.

Within a bracket where the pruning set ``R`` is constant, the minimal
feasible horizon is found exactly by a *mixed* program: binary assignment
variables plus a continuous ``T`` minimized subject to the load rows
``Σ p x ≤ |α|·T`` — our branch-and-bound handles continuous non-flagged
variables natively.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple, Union

from .._fraction import is_inf, to_fraction
from ..exceptions import InfeasibleError
from ..lp.branch_and_bound import solve_binary_ilp
from ..lp.model import LinearProgram
from .assignment import Assignment
from .exact import ExactResult
from .instance import Instance
from .programs import admissible_pairs, build_ip3

_T_KEY = ("__T__",)


def ip3_feasible_integral(
    instance: Instance,
    T: Union[int, Fraction],
    backend: str = "exact",
) -> Optional[Assignment]:
    """Search a 0/1 solution of (IP-3) at horizon *T*; None when infeasible."""
    lp = build_ip3(instance, T, integral=True)
    result = solve_binary_ilp(lp, backend=backend)
    if not result.is_optimal:
        return None
    masks = {}
    for (tag, alpha, j), value in result.values.items():
        if tag == "x" and value == 1:
            masks[j] = alpha
    if len(masks) != instance.n:  # pragma: no cover - assignment rows forbid it
        raise InfeasibleError("ILP returned an incomplete assignment")
    return Assignment(masks)


def _min_T_ilp(
    instance: Instance,
    anchor: Fraction,
    backend: str,
) -> Optional[Tuple[Fraction, Assignment]]:
    """``min T`` with binary assignment over ``R(anchor)`` and ``T ≥ anchor``."""
    lp = LinearProgram()
    lp.add_variable(_T_KEY, lb=0)
    pairs = admissible_pairs(instance, anchor)
    by_job: Dict[int, List] = {}
    for alpha, j in pairs:
        lp.add_variable(("x", alpha, j), lb=0, ub=1, integral=True)
        by_job.setdefault(j, []).append(alpha)
    for j in range(instance.n):
        if j not in by_job:
            return None
        lp.add_constraint(
            {("x", alpha, j): 1 for alpha in by_job[j]}, "==", 1
        )
    for alpha in instance.family.sets:
        coeffs: Dict = {_T_KEY: -len(alpha)}
        for beta in instance.family.subsets_of(alpha):
            for j in range(instance.n):
                key = ("x", beta, j)
                if lp.has_variable(key):
                    coeffs[key] = to_fraction(instance.p(j, beta))
        lp.add_constraint(coeffs, "<=", 0)
    lp.add_constraint({_T_KEY: 1}, ">=", anchor)
    lp.set_objective({_T_KEY: 1})
    result = solve_binary_ilp(lp, backend=backend)
    if not result.is_optimal:
        return None
    masks = {}
    for key, value in result.values.items():
        if isinstance(key, tuple) and key[0] == "x" and value == 1:
            masks[key[2]] = key[1]
    return to_fraction(result.values[_T_KEY]), Assignment(masks)


def solve_exact_ilp(instance: Instance, backend: str = "exact") -> ExactResult:
    """Minimize the makespan via binary search + (IP-3) branch-and-bound."""
    values = sorted(
        {
            to_fraction(instance.p(j, alpha))
            for j in range(instance.n)
            for alpha in instance.family.sets
            if not is_inf(instance.p(j, alpha))
        }
    )
    if not values:
        raise InfeasibleError("no job has any finite processing time")
    lo, hi = 0, len(values) - 1
    if ip3_feasible_integral(instance, values[hi], backend=backend) is None:
        # Load-dominated optimum above every breakpoint: R is maximal.
        outcome = _min_T_ilp(instance, values[hi], backend)
        if outcome is None:
            raise InfeasibleError("no feasible assignment at any horizon")
        T_best, assignment = outcome
        return ExactResult(assignment=assignment, optimum=T_best, nodes_explored=-1)
    while lo < hi:
        mid = (lo + hi) // 2
        if ip3_feasible_integral(instance, values[mid], backend=backend) is not None:
            hi = mid
        else:
            lo = mid + 1
    anchor = values[lo]
    candidates: List[Tuple[Fraction, Assignment]] = []
    outcome = _min_T_ilp(instance, anchor, backend)
    if outcome is not None:
        candidates.append(outcome)
    if lo > 0:
        prev = values[lo - 1]
        outcome_prev = _min_T_ilp(instance, prev, backend)
        if outcome_prev is not None and outcome_prev[0] < anchor:
            candidates.append(outcome_prev)
    if not candidates:  # pragma: no cover - anchor feasibility guarantees one
        raise InfeasibleError("bracket refinement failed")
    T_best, assignment = min(candidates, key=lambda c: c[0])
    return ExactResult(assignment=assignment, optimum=T_best, nodes_explored=-1)
