"""Section II — the 8-approximation for general (non-laminar) affinity masks.

For an arbitrary admissible family the machinery of Sections III–V does not
apply; the paper (crediting an anonymous reviewer) gives a simple reduction:

1. Collapse to an unrelated instance ``Iu`` with
   ``p'_ij = min {P_j(α) : α ∋ i}`` — the cheapest mask through machine *i*.
2. The optimal **preemptive** makespan of ``Iu`` lower-bounds ``opt(I)``
   (any valid mask schedule over-fulfils the preemptive LP).
3. 2-approximate the **non-preemptive** problem on ``Iu`` (binary search +
   Lenstra–Shmoys–Tardos).  Since the non-preemptive optimum is within a
   factor 4 of the preemptive one [Lin & Vitter], the result is within
   ``2 · 4 = 8`` of ``opt(I)``.

The returned assignment maps each job back to a cheapest original mask
containing its machine, so the schedule is valid for the original instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple, Union

from .._fraction import INF, is_inf, to_fraction
from ..baselines.preemptive_unrelated import preemptive_makespan
from ..exceptions import InvalidFamilyError, InvalidInstanceError, MonotonicityError
from ..rounding.lst import lst_round
from ..schedule.schedule import Schedule

ProcTime = Union[int, Fraction, float]
MachineSet = FrozenSet[int]


class GeneralMaskInstance:
    """An affinity-mask instance with an *arbitrary* admissible family.

    Monotonicity is still required on comparable pairs (it is a modelling
    assumption, independent of laminarity).
    """

    def __init__(
        self,
        machines: Iterable[int],
        sets: Iterable[Iterable[int]],
        processing: Mapping[int, Mapping[Iterable[int], ProcTime]],
    ):
        self._machines = frozenset(machines)
        normalized: List[MachineSet] = []
        seen = set()
        for raw in sets:
            fs = frozenset(raw)
            if not fs or not fs <= self._machines:
                raise InvalidFamilyError(f"bad admissible set {sorted(fs)}")
            if fs in seen:
                raise InvalidFamilyError(f"duplicate admissible set {sorted(fs)}")
            seen.add(fs)
            normalized.append(fs)
        self._sets = tuple(sorted(normalized, key=lambda s: (-len(s), sorted(s))))
        jobs = sorted(processing)
        if jobs != list(range(len(jobs))):
            raise InvalidInstanceError("jobs must be numbered 0..n-1")
        self._p: Dict[int, Dict[MachineSet, Union[Fraction, float]]] = {}
        for j in jobs:
            row: Dict[MachineSet, Union[Fraction, float]] = {}
            for raw_alpha, value in processing[j].items():
                alpha = frozenset(raw_alpha)
                if alpha not in seen:
                    raise InvalidInstanceError(
                        f"job {j}: {sorted(alpha)} is not an admissible set"
                    )
                row[alpha] = INF if is_inf(value) else to_fraction(value)
            for alpha in self._sets:
                row.setdefault(alpha, INF)
            self._p[j] = row
        self._check_monotonicity()

    def _check_monotonicity(self) -> None:
        for a_idx, alpha in enumerate(self._sets):
            for beta in self._sets[:a_idx]:  # beta is at least as large
                if alpha < beta:
                    for j in self._p:
                        pa, pb = self._p[j][alpha], self._p[j][beta]
                        if is_inf(pa) and not is_inf(pb):
                            raise MonotonicityError(
                                f"job {j}: P({sorted(alpha)})=∞ > P({sorted(beta)})"
                            )
                        if not is_inf(pa) and not is_inf(pb) and pa > pb:
                            raise MonotonicityError(
                                f"job {j}: P({sorted(alpha)})={pa} > "
                                f"P({sorted(beta)})={pb}"
                            )

    @property
    def n(self) -> int:
        return len(self._p)

    @property
    def m(self) -> int:
        return len(self._machines)

    @property
    def machines(self) -> MachineSet:
        return self._machines

    @property
    def sets(self) -> Tuple[MachineSet, ...]:
        return self._sets

    def p(self, job: int, alpha: Iterable[int]) -> Union[Fraction, float]:
        return self._p[job][frozenset(alpha)]

    def is_laminar(self) -> bool:
        for i in range(len(self._sets)):
            for k in range(i + 1, len(self._sets)):
                a, b = self._sets[i], self._sets[k]
                if a & b and not (a <= b or b <= a):
                    return False
        return True

    def collapse_matrix(self) -> Dict[int, Dict[int, Fraction]]:
        """``p'_ij = min {P_j(α) : α ∋ i}`` (INF pairs omitted)."""
        matrix: Dict[int, Dict[int, Fraction]] = {}
        for j in range(self.n):
            row: Dict[int, Fraction] = {}
            for i in sorted(self._machines):
                best: Union[Fraction, float] = INF
                for alpha in self._sets:
                    if i in alpha:
                        value = self._p[j][alpha]
                        if not is_inf(value) and (is_inf(best) or value < best):
                            best = value
                if not is_inf(best):
                    row[i] = to_fraction(best)
            matrix[j] = row
        return matrix

    def cheapest_mask_through(self, job: int, machine: int) -> MachineSet:
        """A mask containing *machine* realizing the collapse minimum."""
        best: Optional[MachineSet] = None
        best_value: Union[Fraction, float] = INF
        for alpha in self._sets:
            if machine in alpha:
                value = self._p[job][alpha]
                if not is_inf(value) and (is_inf(best_value) or value < best_value):
                    best_value = value
                    best = alpha
        if best is None:
            raise InvalidInstanceError(
                f"job {job} has no admissible set containing machine {machine}"
            )
        return best


@dataclass
class EightApproxResult:
    instance: GeneralMaskInstance
    preemptive_lower_bound: Fraction
    """``opt_pmtn(Iu) ≤ opt(I)`` — the certified lower bound."""

    machine_of: Dict[int, int]
    mask_of: Dict[int, MachineSet]
    schedule: Schedule
    makespan: Fraction

    @property
    def bound(self) -> Fraction:
        """The a-priori guarantee ``8 · opt_pmtn(Iu)``."""
        return 8 * self.preemptive_lower_bound

    @property
    def ratio_vs_lower_bound(self) -> Fraction:
        if self.preemptive_lower_bound == 0:
            return Fraction(0)
        return self.makespan / self.preemptive_lower_bound


def eight_approximation(
    instance: GeneralMaskInstance,
    backend: str = "exact",
) -> EightApproxResult:
    """Run the Section II reduction on a general-mask instance."""
    from ..baselines.lst_unrelated import minimal_unrelated_T

    p = instance.collapse_matrix()
    for j, row in p.items():
        if not row:
            raise InvalidInstanceError(f"job {j} has no finite processing time")
    lower = preemptive_makespan(p, backend=backend)
    T_np = minimal_unrelated_T(p, backend=backend)
    mapping = lst_round(p, T_np, backend=backend)

    machines = sorted(instance.machines)
    loads: Dict[int, Fraction] = {i: Fraction(0) for i in machines}
    for j, i in mapping.items():
        loads[i] += p[j][i]
    horizon = max(loads.values(), default=Fraction(0))
    schedule = Schedule(machines, horizon)
    cursor = {i: Fraction(0) for i in machines}
    for j in sorted(mapping):
        i = mapping[j]
        length = p[j][i]
        if length > 0:
            schedule.add_segment(i, j, cursor[i], cursor[i] + length)
            cursor[i] += length
    mask_of = {
        j: instance.cheapest_mask_through(j, i) for j, i in mapping.items()
    }
    return EightApproxResult(
        instance=instance,
        preemptive_lower_bound=lower,
        machine_of=dict(mapping),
        mask_of=mask_of,
        schedule=schedule,
        makespan=schedule.makespan(),
    )
