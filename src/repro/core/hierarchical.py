"""Algorithms 2 and 3 of the paper — the hierarchical two-phase scheduler.

**Phase one** (Algorithm 2, bottom-up) decides, for every admissible set
``α`` and machine ``i ∈ α``, how much of the volume assigned to ``α`` runs on
``i`` (``LOAD[i, α]``).  Machines are filled in ascending order up to the
residual capacity ``T − TOT-LOAD[i, β]`` left by the sets below, so after the
round every machine that received α-volume is full except possibly the last —
which is exactly why Lemma IV.2 holds: per set, at most one machine is shared
with an ancestor.

**Phase two** (Algorithm 3, top-down) turns the loads into concrete time
slots using the wrap-around rule.  For each set ``β``, the unique shared
machine (if any) starts β's jobs where its minimal loaded ancestor stopped;
the remaining machines continue around the circle.  Since every set's loads
are consumed as one continuous line, line position equals real time modulo a
fixed offset, and constraint (2c) (``p_{βj} ≤ T``) keeps a job from ever
overlapping itself.

Theorem IV.3: for any feasible (IP-2) solution the result is a valid
schedule on ``[0, T]``.  Lemmas IV.1 and IV.2 are asserted at runtime (they
double as property tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple, Union

from .._fraction import to_fraction
from ..exceptions import InfeasibleError, InvalidScheduleError
from ..schedule.schedule import Schedule
from ..schedule.segments import advance_mod, place_arc
from .assignment import Assignment, set_volumes, verify_ip2
from .instance import Instance
from .laminar import MachineSet
from .semi_partitioned import _job_line, _LineCursor, _place_pieces

Time = Union[int, Fraction]


@dataclass
class LoadAllocation:
    """The output of Algorithm 2.

    ``load[(i, α)]`` is machine *i*'s share of the volume assigned to set
    ``α``; ``tot_load[(i, α)] = Σ_{β ⊆ α, i ∈ β} load[(i, β)]`` is the
    cumulative load from ``α`` and everything below it.
    """

    T: Fraction
    load: Dict[Tuple[int, MachineSet], Fraction]
    tot_load: Dict[Tuple[int, MachineSet], Fraction]

    def machines_loaded(self, alpha: MachineSet) -> List[int]:
        return [i for i in sorted(alpha) if self.load.get((i, alpha), 0) > 0]

    def check_lemma_iv1(self) -> None:
        """Lemma IV.1(i): every cumulative load is at most T."""
        for (i, alpha), value in self.tot_load.items():
            if value > self.T:
                raise InvalidScheduleError(
                    f"Lemma IV.1 violated: TOT-LOAD[{i}, {sorted(alpha)}] = "
                    f"{value} > T = {self.T}"
                )

    def shared_machines(self, family, beta: MachineSet) -> List[int]:
        """Machines of *beta* loaded by beta **and** by some strict superset.

        Lemma IV.2 asserts the returned list has length ≤ 1.
        """
        shared = []
        for i in sorted(beta):
            if self.load.get((i, beta), Fraction(0)) <= 0:
                continue
            for alpha in family.ancestors(beta):
                if self.load.get((i, alpha), Fraction(0)) > 0:
                    shared.append(i)
                    break
        return shared


def allocate_loads(
    instance: Instance,
    assignment: Assignment,
    T: Time,
) -> LoadAllocation:
    """Algorithm 2: bottom-up per-machine volume allocation."""
    T = to_fraction(T)
    family = instance.family
    volumes = set_volumes(instance, assignment)
    load: Dict[Tuple[int, MachineSet], Fraction] = {}
    tot_load: Dict[Tuple[int, MachineSet], Fraction] = {}

    for alpha in family.bottom_up():
        V = volumes[alpha]
        for i in sorted(alpha):  # line 7: ascending machine order
            beta = family.child_containing(alpha, i)
            below = tot_load[(i, beta)] if beta is not None else Fraction(0)
            capacity = T - below
            if capacity < 0:
                raise InfeasibleError(
                    f"machine {i} is overloaded below set {sorted(alpha)}: "
                    f"cumulative load {below} > T={T}"
                )
            delta = min(V, capacity)
            load[(i, alpha)] = delta
            tot_load[(i, alpha)] = below + delta
            V -= delta
        if V > 0:
            # Lemma IV.1(ii) fails only when (IP-2) constraint (2b) is violated.
            raise InfeasibleError(
                f"volume {V} of set {sorted(alpha)} could not be allocated; "
                f"the (IP-2) solution is infeasible"
            )

    allocation = LoadAllocation(T=T, load=load, tot_load=tot_load)
    allocation.check_lemma_iv1()
    return allocation


def schedule_hierarchical(
    instance: Instance,
    assignment: Assignment,
    T: Time,
    check_feasibility: bool = True,
) -> Schedule:
    """Algorithms 2 + 3: build a valid schedule from a feasible (IP-2) pair.

    Raises
    ------
    InvalidAssignmentError
        When *check_feasibility* is on and ``(x, T)`` violates (IP-2).
    InfeasibleError
        When volume placement fails (can only happen on infeasible input).
    """
    if check_feasibility:
        verify_ip2(instance, assignment, T).raise_if_infeasible()
    T = to_fraction(T)
    family = instance.family
    machines = sorted(instance.machines)
    schedule = Schedule(machines, T)
    if T == 0:
        return schedule  # feasibility forces every processing time to be 0

    allocation = allocate_loads(instance, assignment, T)
    load = allocation.load

    # t_end[(i, α)]: the circle position right after α's jobs on machine i.
    t_end: Dict[Tuple[int, MachineSet], Fraction] = {}

    for beta in family.top_down():
        shared = allocation.shared_machines(family, beta)
        if len(shared) > 1:
            raise InvalidScheduleError(
                f"Lemma IV.2 violated for set {sorted(beta)}: shared machines "
                f"{shared}"
            )
        if shared:
            lead = shared[0]
            start: Optional[Fraction] = None
            for alpha in family.ancestors(beta):  # smallest superset first
                if load.get((lead, alpha), Fraction(0)) > 0:
                    start = t_end[(lead, alpha)]
                    break
            assert start is not None  # guaranteed by the shared-machine test
            t_beta = start
        else:
            lead = min(beta)
            t_beta = Fraction(0)
        order = [lead] + [k for k in sorted(beta) if k != lead]

        cursor = _LineCursor(_job_line(instance, assignment, beta))
        for k in order:
            delta = load.get((k, beta), Fraction(0))
            if delta > 0:
                pieces = cursor.take(delta)
                _place_pieces(schedule, k, pieces, t_beta, T)
                t_beta = advance_mod(t_beta, delta, T)
                t_end[(k, beta)] = t_beta
        if not cursor.exhausted() and cursor.remaining > 0:
            raise InfeasibleError(
                f"set {sorted(beta)}: {cursor.remaining} units left unplaced"
            )

    return schedule


def schedule_assignment(
    instance: Instance,
    assignment: Assignment,
    T: Optional[Time] = None,
) -> Schedule:
    """Schedule an assignment at the smallest feasible horizon.

    When *T* is omitted, uses :func:`min_T_for_assignment`, which by
    Theorem IV.3 is exactly the optimal makespan for the given masks.
    """
    from .assignment import min_T_for_assignment

    if T is None:
        T = min_T_for_assignment(instance, assignment)
    return schedule_hierarchical(instance, assignment, T)
