"""Problem instances for hierarchical scheduling — Section II of the paper.

An instance bundles the job set ``J = {0,…,n-1}``, a laminar family ``A`` of
admissible machine sets and, for every job, a monotone processing-time
function ``P_j : A → Z₊ ∪ {∞}``.  ``∞`` (the module constant
:data:`repro.INF`) encodes "this job may not use this set" — exactly the
paper's "sufficiently large constant" in Example II.1.

Monotonicity (``α ⊆ β ⇒ P_j(α) ≤ P_j(β)``) is validated at construction: it
is the modelling assumption that makes migration overhead well defined and is
load-bearing in the proof of Lemma V.1.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from .._fraction import INF, fsum, is_inf, to_fraction
from ..exceptions import InvalidInstanceError, MonotonicityError
from .laminar import LaminarFamily, MachineSet

ProcTime = Union[int, Fraction, float]  # float only for the INF sentinel


def _normalize_time(value: ProcTime) -> Union[Fraction, float]:
    if is_inf(value):
        return INF
    frac = to_fraction(value)
    if frac < 0:
        raise InvalidInstanceError(f"processing times must be non-negative, got {frac}")
    return frac


class Instance:
    """A hierarchical scheduling instance ``(J, M, A, P)``.

    Parameters
    ----------
    family:
        The laminar family of admissible sets.
    processing:
        Either a mapping ``job -> {alpha: time}`` or a callable
        ``(job, alpha) -> time`` evaluated on ``jobs × family.sets``.
        Sets not mentioned for a job default to ``INF`` (not allowed).
    n:
        Number of jobs; required when *processing* is a callable, inferred
        from the mapping otherwise.
    validate:
        When ``True`` (default) monotonicity is checked; building a large
        randomized instance whose generator is monotone by construction may
        skip it for speed.
    """

    def __init__(
        self,
        family: LaminarFamily,
        processing: Union[Mapping[int, Mapping[Iterable[int], ProcTime]], Callable],
        n: Optional[int] = None,
        validate: bool = True,
    ):
        self._family = family
        table: Dict[int, Dict[MachineSet, Union[Fraction, float]]] = {}
        if callable(processing):
            if n is None:
                raise InvalidInstanceError("n is required when processing is callable")
            for j in range(n):
                row: Dict[MachineSet, Union[Fraction, float]] = {}
                for alpha in family.sets:
                    row[alpha] = _normalize_time(processing(j, alpha))
                table[j] = row
        else:
            jobs = sorted(processing.keys())
            if n is not None and n != len(jobs):
                raise InvalidInstanceError(
                    f"n={n} disagrees with processing table of size {len(jobs)}"
                )
            if jobs != list(range(len(jobs))):
                raise InvalidInstanceError("jobs must be numbered 0..n-1 without gaps")
            for j in jobs:
                row = {}
                for raw_alpha, value in processing[j].items():
                    alpha = frozenset(raw_alpha)
                    if alpha not in family:
                        raise InvalidInstanceError(
                            f"job {j}: set {sorted(alpha)} is not in the admissible family"
                        )
                    row[alpha] = _normalize_time(value)
                for alpha in family.sets:
                    row.setdefault(alpha, INF)
                table[j] = row
        self._p = table
        self._n = len(table)
        if self._n == 0:
            raise InvalidInstanceError("an instance must contain at least one job")
        if validate:
            self._check_monotonicity()

    # ------------------------------------------------------------------
    # Convenience constructors for the special cases of Section II
    # ------------------------------------------------------------------

    @classmethod
    def identical(cls, m: int, lengths: Sequence[ProcTime]) -> "Instance":
        """``P|pmtn|Cmax``: one admissible set M, job lengths as given."""
        family = LaminarFamily.global_only(m)
        root = frozenset(range(m))
        processing = {j: {root: lengths[j]} for j in range(len(lengths))}
        return cls(family, processing)

    @classmethod
    def unrelated(cls, p_matrix: Sequence[Sequence[ProcTime]]) -> "Instance":
        """``R||Cmax``: singleton masks, ``p_matrix[j][i]`` times."""
        n = len(p_matrix)
        if n == 0:
            raise InvalidInstanceError("empty processing matrix")
        m = len(p_matrix[0])
        family = LaminarFamily.singletons(m)
        processing = {
            j: {frozenset([i]): p_matrix[j][i] for i in range(m)} for j in range(n)
        }
        return cls(family, processing)

    @classmethod
    def semi_partitioned(
        cls,
        p_local: Sequence[Sequence[ProcTime]],
        p_global: Sequence[ProcTime],
    ) -> "Instance":
        """Section III: global mask M plus singletons.

        ``p_local[j][i]`` is the time of job *j* pinned to machine *i*;
        ``p_global[j]`` its time when migrated freely.
        """
        n = len(p_local)
        if n != len(p_global):
            raise InvalidInstanceError("p_local and p_global disagree on n")
        m = len(p_local[0])
        family = LaminarFamily.semi_partitioned(m)
        root = frozenset(range(m))
        processing: Dict[int, Dict[FrozenSet[int], ProcTime]] = {}
        for j in range(n):
            row: Dict[FrozenSet[int], ProcTime] = {root: p_global[j]}
            for i in range(m):
                row[frozenset([i])] = p_local[j][i]
            processing[j] = row
        return cls(family, processing)

    @classmethod
    def clustered(
        cls,
        cluster_size: int,
        p_local: Sequence[Sequence[ProcTime]],
        p_cluster: Sequence[Sequence[ProcTime]],
        p_global: Sequence[ProcTime],
    ) -> "Instance":
        """Section II clustered scheduling with ``m = k·q`` machines.

        ``p_cluster[j][c]`` is the time of job *j* confined to cluster *c*.
        """
        n = len(p_local)
        m = len(p_local[0])
        family = LaminarFamily.clustered(m, cluster_size)
        root = frozenset(range(m))
        processing: Dict[int, Dict[FrozenSet[int], ProcTime]] = {}
        num_clusters = m // cluster_size
        for j in range(n):
            row: Dict[FrozenSet[int], ProcTime] = {root: p_global[j]}
            for c in range(num_clusters):
                cluster = frozenset(range(c * cluster_size, (c + 1) * cluster_size))
                if cluster != root and len(cluster) > 1:
                    row[cluster] = p_cluster[j][c]
            for i in range(m):
                single = frozenset([i])
                if single in family:
                    row[single] = p_local[j][i]
            processing[j] = row
        return cls(family, processing)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def _check_monotonicity(self) -> None:
        family = self._family
        for alpha in family.sets:
            parent = family.parent(alpha)
            if parent is None:
                continue
            for j in range(self._n):
                pa = self._p[j][alpha]
                pb = self._p[j][parent]
                # INF ≤ INF is fine; finite ≤ INF is fine; INF ≤ finite is not.
                if is_inf(pa) and not is_inf(pb):
                    raise MonotonicityError(
                        f"job {j}: P({sorted(alpha)})=∞ exceeds "
                        f"P({sorted(parent)})={pb}"
                    )
                if not is_inf(pa) and not is_inf(pb) and pa > pb:
                    raise MonotonicityError(
                        f"job {j}: P({sorted(alpha)})={pa} exceeds "
                        f"P({sorted(parent)})={pb}"
                    )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def family(self) -> LaminarFamily:
        return self._family

    @property
    def n(self) -> int:
        """Number of jobs."""
        return self._n

    @property
    def m(self) -> int:
        """Number of machines."""
        return self._family.m

    @property
    def jobs(self) -> range:
        return range(self._n)

    @property
    def machines(self) -> FrozenSet[int]:
        return self._family.machines

    def p(self, job: int, alpha: Iterable[int]) -> Union[Fraction, float]:
        """Processing time ``P_j(α)`` (``INF`` when the pair is forbidden)."""
        return self._p[job][frozenset(alpha)]

    def allows(self, job: int, alpha: Iterable[int]) -> bool:
        """Whether job *job* may be assigned to set *alpha* at all."""
        return not is_inf(self._p[job][frozenset(alpha)])

    def allowed_sets(self, job: int) -> Tuple[MachineSet, ...]:
        """Admissible sets with finite processing time for *job*."""
        return tuple(a for a in self._family.sets if not is_inf(self._p[job][a]))

    def effective_p(self, job: int, machine_subset: Iterable[int]) -> Union[Fraction, float]:
        """Processing time when run on an arbitrary machine subset.

        Per Section II: the time of the inclusion-minimal admissible set
        containing the subset, or ``INF`` when no admissible set contains it.
        """
        alpha = self._family.minimal_containing(machine_subset)
        if alpha is None:
            return INF
        return self._p[job][alpha]

    # ------------------------------------------------------------------
    # Derived instances (Section V constructions)
    # ------------------------------------------------------------------

    def with_singletons(self) -> "Instance":
        """Extend the family with all singletons (Section V, w.l.o.g. step).

        The processing time of job *j* on a new singleton ``{i}`` is its time
        on the minimal admissible set containing *i* (``INF`` if none), which
        preserves monotonicity and the optimal makespan.
        """
        if self._family.has_all_singletons:
            return self
        new_family = self._family.with_singletons()
        processing: Dict[int, Dict[FrozenSet[int], ProcTime]] = {}
        for j in range(self._n):
            row: Dict[FrozenSet[int], ProcTime] = dict(self._p[j])
            for i in sorted(self._family.machines):
                single = frozenset([i])
                if single not in row:
                    containing = self._family.minimal_containing([i])
                    row[single] = INF if containing is None else self._p[j][containing]
            processing[j] = row
        return Instance(new_family, processing, validate=False)

    def unrelated_collapse(self) -> "Instance":
        """The instance ``Iu`` of Section V / the Section II 8-approximation.

        ``p'_ij = min over admissible α ∋ i of P_j(α)`` — migration is
        forbidden but each machine gets the cheapest mask that includes it.
        """
        m_sorted = sorted(self._family.machines)
        matrix: List[List[ProcTime]] = []
        for j in range(self._n):
            row: List[ProcTime] = []
            for i in m_sorted:
                best: Union[Fraction, float] = INF
                for alpha in self._family.chain(i):
                    value = self._p[j][alpha]
                    if not is_inf(value) and (is_inf(best) or value < best):
                        best = value
                row.append(best)
            matrix.append(row)
        return Instance.unrelated(matrix)

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------

    def min_p(self, job: int) -> Union[Fraction, float]:
        """Cheapest processing time of *job* over all admissible sets."""
        values = [self._p[job][a] for a in self._family.sets if not is_inf(self._p[job][a])]
        return min(values) if values else INF

    def trivial_bounds(self) -> Tuple[Fraction, Fraction]:
        """A (lower, upper) makespan bracket for binary search.

        Lower: max over jobs of their cheapest time, and total cheapest
        volume divided by m.  Upper: sum of cheapest times (serial schedule
        on one chain of sets is always feasible).
        """
        mins: List[Fraction] = []
        for j in range(self._n):
            v = self.min_p(j)
            if is_inf(v):
                raise InvalidInstanceError(f"job {j} has no admissible set")
            mins.append(to_fraction(v))
        lower = max(max(mins), fsum(mins) / self.m)
        upper = fsum(mins)
        return lower, max(upper, lower)

    def __repr__(self) -> str:
        return (
            f"Instance(n={self._n}, m={self.m}, |A|={len(self._family)}, "
            f"levels={self._family.num_levels})"
        )
