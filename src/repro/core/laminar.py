"""Laminar (hierarchical) families of machine sets — Section II of the paper.

A family ``A ⊆ 2^M`` is *laminar* when any two members are nested or
disjoint.  The paper restricts the hierarchical scheduling problem to laminar
instances; this module provides the validated data structure together with
the structural queries used by Algorithms 2 and 3 (children/parents, the
bottom-up and top-down visit orders, levels, heights) and by Section V
(completion with singletons, minimal containing sets).

Machines are identified by integers ``0 .. m-1``; admissible sets are
``frozenset`` values.  All derived structure is precomputed once at
construction, so queries are O(1)/O(size of answer).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import InvalidFamilyError

MachineSet = FrozenSet[int]


def _normalize_sets(sets: Iterable[Iterable[int]]) -> Tuple[MachineSet, ...]:
    normalized: List[MachineSet] = []
    seen = set()
    for raw in sets:
        fs = frozenset(raw)
        if not fs:
            raise InvalidFamilyError("admissible sets must be non-empty")
        if fs in seen:
            raise InvalidFamilyError(f"duplicate admissible set {sorted(fs)}")
        for machine in fs:
            if not isinstance(machine, int) or isinstance(machine, bool):
                raise InvalidFamilyError(
                    f"machine identifiers must be ints, got {machine!r}"
                )
        seen.add(fs)
        normalized.append(fs)
    if not normalized:
        raise InvalidFamilyError("the admissible family must contain at least one set")
    # Deterministic canonical order: decreasing size, then lexicographic.
    normalized.sort(key=lambda s: (-len(s), sorted(s)))
    return tuple(normalized)


class LaminarFamily:
    """A validated laminar family of admissible machine sets.

    Parameters
    ----------
    machines:
        Iterable of machine identifiers (``0 .. m-1`` by convention; any
        distinct ints are accepted).
    sets:
        Iterable of admissible machine sets.  Each must be a non-empty subset
        of *machines*; the collection must be pairwise nested-or-disjoint.

    Raises
    ------
    InvalidFamilyError
        If the family is empty, contains duplicates/empty sets, references
        unknown machines, or violates laminarity.
    """

    def __init__(self, machines: Iterable[int], sets: Iterable[Iterable[int]]):
        self._machines: MachineSet = frozenset(machines)
        if not self._machines:
            raise InvalidFamilyError("the machine set must be non-empty")
        self._sets = _normalize_sets(sets)
        universe = self._machines
        for alpha in self._sets:
            if not alpha <= universe:
                raise InvalidFamilyError(
                    f"admissible set {sorted(alpha)} contains unknown machines "
                    f"{sorted(alpha - universe)}"
                )
        self._check_laminarity()
        self._build_structure()

    # ------------------------------------------------------------------
    # Construction helpers (canonical families from Section II)
    # ------------------------------------------------------------------

    @classmethod
    def global_only(cls, m: int) -> "LaminarFamily":
        """``A = {M}`` — identical parallel machines with free migration."""
        machines = range(m)
        return cls(machines, [frozenset(machines)])

    @classmethod
    def singletons(cls, m: int) -> "LaminarFamily":
        """``A = {{0},…,{m-1}}`` — unrelated machines, no migration."""
        return cls(range(m), [frozenset([i]) for i in range(m)])

    @classmethod
    def semi_partitioned(cls, m: int) -> "LaminarFamily":
        """``A = {M} ∪ singletons`` — Section III's two-level family.

        For ``m = 1`` the root coincides with the lone singleton and the
        family degenerates to a single set.
        """
        machines = range(m)
        sets = {frozenset(machines)}
        sets.update(frozenset([i]) for i in range(m))
        return cls(machines, sets)

    @classmethod
    def clustered(cls, m: int, cluster_size: int) -> "LaminarFamily":
        """``A = {M} ∪ clusters of q machines ∪ singletons`` (Section II).

        Requires ``m`` to be a multiple of ``cluster_size``.
        """
        if cluster_size <= 0:
            raise InvalidFamilyError("cluster_size must be positive")
        if m % cluster_size != 0:
            raise InvalidFamilyError(
                f"m={m} is not a multiple of cluster_size={cluster_size}"
            )
        machines = range(m)
        sets: List[FrozenSet[int]] = [frozenset(machines)]
        for start in range(0, m, cluster_size):
            sets.append(frozenset(range(start, start + cluster_size)))
        sets.extend(frozenset([i]) for i in range(m))
        # A cluster of size m or 1 would duplicate existing sets; dedupe.
        unique = []
        seen = set()
        for s in sets:
            if s not in seen:
                seen.add(s)
                unique.append(s)
        return cls(machines, unique)

    @classmethod
    def from_nested(cls, tree) -> "LaminarFamily":
        """Build a family from nested lists of machine ids.

        ``from_nested([[0, 1], [2, 3]])`` creates the root ``{0,1,2,3}``, the
        two clusters and all four singletons; arbitrary nesting depth is
        supported.  Leaves are ints (machines).
        """
        sets: List[FrozenSet[int]] = []

        def walk(node) -> FrozenSet[int]:
            if isinstance(node, int):
                leaf = frozenset([node])
                if leaf not in sets:
                    sets.append(leaf)
                return leaf
            members: set = set()
            for child in node:
                members |= walk(child)
            fs = frozenset(members)
            if fs not in sets:
                sets.append(fs)
            return fs

        root = walk(tree)
        return cls(root, sets)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def _check_laminarity(self) -> None:
        sets = self._sets
        for i in range(len(sets)):
            for k in range(i + 1, len(sets)):
                a, b = sets[i], sets[k]
                if a & b and not (a <= b or b <= a):
                    raise InvalidFamilyError(
                        f"sets {sorted(a)} and {sorted(b)} overlap without nesting"
                    )

    def _build_structure(self) -> None:
        sets = self._sets  # sorted by decreasing size
        parent: Dict[MachineSet, Optional[MachineSet]] = {}
        children: Dict[MachineSet, List[MachineSet]] = {s: [] for s in sets}
        # Because of the canonical order, the parent of s is the *last*
        # strict superset seen before s that is minimal; scan candidates.
        for idx, s in enumerate(sets):
            best: Optional[MachineSet] = None
            for t in sets[:idx]:
                if s < t and (best is None or t < best):
                    best = t
            parent[s] = best
            if best is not None:
                children[best].append(s)
        for lst in children.values():
            lst.sort(key=lambda s: (min(s), sorted(s)))
        self._parent = parent
        self._children = {s: tuple(c) for s, c in children.items()}
        # Level per the paper: number of sets β ⊇ α (including α itself).
        level: Dict[MachineSet, int] = {}
        for s in sets:  # parents are processed before children
            p = parent[s]
            level[s] = 1 if p is None else level[p] + 1
        self._level = level
        # Height: shortest distance to a leaf of the forest (Model 2).
        height: Dict[MachineSet, int] = {}
        for s in reversed(sets):  # children before parents
            kids = self._children[s]
            height[s] = 0 if not kids else 1 + min(height[k] for k in kids)
        self._height = height
        # Per-machine chain of sets containing it, smallest first.
        chains: Dict[int, List[MachineSet]] = {i: [] for i in self._machines}
        for s in reversed(sets):  # increasing size
            for i in s:
                chains[i].append(s)
        self._chains = {i: tuple(c) for i, c in chains.items()}
        self._set_index = {s: i for i, s in enumerate(sets)}

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def machines(self) -> MachineSet:
        """The full machine set ``M``."""
        return self._machines

    @property
    def m(self) -> int:
        """Number of machines."""
        return len(self._machines)

    @property
    def sets(self) -> Tuple[MachineSet, ...]:
        """All admissible sets in canonical (top-down) order."""
        return self._sets

    def __len__(self) -> int:
        return len(self._sets)

    def __iter__(self) -> Iterator[MachineSet]:
        return iter(self._sets)

    def __contains__(self, alpha: Iterable[int]) -> bool:
        return frozenset(alpha) in self._set_index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LaminarFamily):
            return NotImplemented
        return self._machines == other._machines and set(self._sets) == set(other._sets)

    def __hash__(self) -> int:
        return hash((self._machines, self._sets))

    def __repr__(self) -> str:
        listed = ", ".join("{" + ",".join(map(str, sorted(s))) + "}" for s in self._sets)
        return f"LaminarFamily(m={self.m}, sets=[{listed}])"

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------

    def parent(self, alpha: Iterable[int]) -> Optional[MachineSet]:
        """The inclusion-minimal strict superset of *alpha* in the family."""
        return self._parent[frozenset(alpha)]

    def children(self, alpha: Iterable[int]) -> Tuple[MachineSet, ...]:
        """The inclusion-maximal strict subsets of *alpha* in the family."""
        return self._children[frozenset(alpha)]

    @property
    def roots(self) -> Tuple[MachineSet, ...]:
        """Sets with no strict superset in the family."""
        return tuple(s for s in self._sets if self._parent[s] is None)

    @property
    def leaves(self) -> Tuple[MachineSet, ...]:
        """Sets with no strict subset in the family."""
        return tuple(s for s in self._sets if not self._children[s])

    def level(self, alpha: Iterable[int]) -> int:
        """Number of admissible sets containing *alpha* (incl. itself)."""
        return self._level[frozenset(alpha)]

    @property
    def num_levels(self) -> int:
        """The level of the instance: maximum level among all sets."""
        return max(self._level.values())

    def height(self, alpha: Iterable[int]) -> int:
        """Shortest distance to a leaf of the forest (0 for leaves)."""
        return self._height[frozenset(alpha)]

    def ancestors(self, alpha: Iterable[int]) -> Tuple[MachineSet, ...]:
        """Strict supersets of *alpha*, smallest first."""
        result = []
        cur = self._parent[frozenset(alpha)]
        while cur is not None:
            result.append(cur)
            cur = self._parent[cur]
        return tuple(result)

    def descendants(self, alpha: Iterable[int]) -> Tuple[MachineSet, ...]:
        """Strict subsets of *alpha* in the family, in top-down order."""
        alpha = frozenset(alpha)
        out: List[MachineSet] = []
        stack = list(self._children[alpha])
        while stack:
            s = stack.pop(0)
            out.append(s)
            stack.extend(self._children[s])
        return tuple(out)

    def subsets_of(self, alpha: Iterable[int]) -> Tuple[MachineSet, ...]:
        """All family sets ``β ⊆ α`` including *alpha* itself (for (2b))."""
        alpha = frozenset(alpha)
        return (alpha,) + self.descendants(alpha)

    def chain(self, machine: int) -> Tuple[MachineSet, ...]:
        """All family sets containing *machine*, smallest first."""
        return self._chains[machine]

    def child_containing(self, alpha: Iterable[int], machine: int) -> Optional[MachineSet]:
        """The maximal strict subset ``β ⊂ α`` with ``machine ∈ β``.

        This is the set selected at line 8 of Algorithm 2; in a laminar
        family it is unique (the child of *alpha* containing the machine) or
        absent.
        """
        alpha = frozenset(alpha)
        for child in self._children[alpha]:
            if machine in child:
                return child
        return None

    def minimal_containing(self, subset: Iterable[int]) -> Optional[MachineSet]:
        """The inclusion-minimal family set containing *subset*, if any.

        Per Section II, a job run on machines ``M'`` pays the processing time
        of the minimal admissible set that contains ``M'``.
        """
        target = frozenset(subset)
        best: Optional[MachineSet] = None
        for s in self._sets:
            if target <= s and (best is None or s < best):
                best = s
        return best

    # ------------------------------------------------------------------
    # Visit orders for Algorithms 2 and 3
    # ------------------------------------------------------------------

    def bottom_up(self) -> Tuple[MachineSet, ...]:
        """Sets ordered so every strict subset precedes its supersets."""
        return tuple(reversed(self._sets))

    def top_down(self) -> Tuple[MachineSet, ...]:
        """Sets ordered so every strict superset precedes its subsets."""
        return self._sets

    # ------------------------------------------------------------------
    # Derived families
    # ------------------------------------------------------------------

    def with_singletons(self) -> "LaminarFamily":
        """The family extended with every singleton ``{i}`` (Section V)."""
        sets = list(self._sets)
        present = set(self._sets)
        for i in sorted(self._machines):
            single = frozenset([i])
            if single not in present:
                sets.append(single)
        return LaminarFamily(self._machines, sets)

    @property
    def has_all_singletons(self) -> bool:
        """Whether every machine appears as a singleton set."""
        return all(frozenset([i]) in self._set_index for i in self._machines)

    @property
    def is_tree(self) -> bool:
        """Whether the forest is a single tree rooted at the full set M."""
        roots = self.roots
        return len(roots) == 1 and roots[0] == self._machines

    @property
    def is_uniform_tree(self) -> bool:
        """Tree with all leaves at the same level (Model 2's assumption)."""
        if not self.is_tree:
            return False
        leaf_levels = {self._level[s] for s in self.leaves}
        return len(leaf_levels) == 1

    def uncovered(self, alpha: Iterable[int]) -> MachineSet:
        """Machines of *alpha* not covered by any child set."""
        alpha = frozenset(alpha)
        covered: set = set()
        for child in self._children[alpha]:
            covered |= child
        return alpha - frozenset(covered)


def is_laminar(sets: Sequence[Iterable[int]]) -> bool:
    """Check laminarity of a raw collection without building a family."""
    fs = [frozenset(s) for s in sets]
    for i in range(len(fs)):
        for k in range(i + 1, len(fs)):
            a, b = fs[i], fs[k]
            if a & b and not (a <= b or b <= a):
                return False
    return True
