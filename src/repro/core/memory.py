"""Section VI — memory-constrained hierarchical scheduling.

Two extensions of (IP-3) with per-job memory footprints:

**Model 1** (Theorem VI.1): machine *i* has budget ``B_i``; job *j* assigned
to mask ``α`` consumes ``s_ij`` on *every* machine ``i ∈ α``:

    Σ_j s_ij · Σ_{α ∋ i} x_{αj} ≤ B_i          (7)

Iterative rounding (rows dropped once ≤ 2 fractional variables remain)
yields a schedule with makespan ≤ 3T and memory ≤ 3·B_i.

**Model 2** (Theorem VI.3): the family is a uniform tree; a node of height
``h`` (root excluded) has capacity ``µ^h``; job *j* has size ``s_j ≤ 1``:

    Σ_j s_j x_{αj} ≤ µ^{h(α)}                  (9)

Lemma VI.2 with ρ = 1 + H_k (column-sum bound computed in the paper's
Theorem VI.3 proof) yields σ = 2 + H_k bicriteria; for k = 2 levels the
tighter ρ = 2 + 1/m gives σ = 3 + 1/m.

Both solvers return the rounded assignment, the realized schedule (built at
the *actual* minimal horizon of the assignment, never worse than σ·T), and
the measured memory violations, so experiments E10/E11 can compare against
the theorems' guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .._fraction import is_inf, to_fraction
from ..exceptions import InfeasibleError, InvalidInstanceError
from ..rounding.iterative import IterativeRoundingResult, PackingRow, iterative_round
from ..schedule.schedule import Schedule
from .assignment import Assignment, min_T_for_assignment
from .hierarchical import schedule_hierarchical
from .instance import Instance
from .laminar import MachineSet
from .programs import admissible_pairs

Time = Union[int, Fraction]


def harmonic(k: int) -> Fraction:
    """The k-th harmonic number ``H_k = 1 + 1/2 + … + 1/k``."""
    return sum((Fraction(1, i) for i in range(1, k + 1)), Fraction(0))


# ---------------------------------------------------------------------------
# Model 1
# ---------------------------------------------------------------------------


@dataclass
class Model1Result:
    instance: Instance
    T: Fraction
    """The horizon whose LP the rounding started from."""

    assignment: Assignment
    schedule: Schedule
    makespan: Fraction
    memory_usage: Dict[int, Fraction]
    budgets: Dict[int, Fraction]
    rounding: IterativeRoundingResult

    @property
    def makespan_ratio(self) -> Fraction:
        """``makespan / T`` — Theorem VI.1 guarantees ≤ 3."""
        return self.makespan / self.T if self.T else Fraction(0)

    @property
    def max_memory_ratio(self) -> Fraction:
        """``max_i usage_i / B_i`` — Theorem VI.1 guarantees ≤ 3."""
        ratios = [
            self.memory_usage[i] / self.budgets[i]
            for i in self.budgets
            if self.budgets[i] > 0
        ]
        return max(ratios) if ratios else Fraction(0)


def _model1_rows(
    instance: Instance,
    space: Sequence[Sequence[Time]],
    budgets: Mapping[int, Time],
    T: Fraction,
) -> Tuple[Dict[int, List], List[PackingRow]]:
    """Groups and packing rows of (IP-3)+(7) at horizon *T*.

    Pairs whose memory footprint alone would exceed some budget are pruned
    (they could never be 1 in a solution within the budgets) — this keeps
    every coefficient ≤ its row bound, the property behind the "3×".
    """
    pairs = admissible_pairs(instance, T)
    groups: Dict[int, List] = {j: [] for j in range(instance.n)}
    for alpha, j in pairs:
        if any(to_fraction(space[j][i]) > to_fraction(budgets[i]) for i in alpha):
            continue
        groups[j].append((alpha, j))
    for j, keys in groups.items():
        if not keys:
            raise InfeasibleError(
                f"job {j} has no admissible set within T={T} and the budgets"
            )
    key_sets = {j: set(keys) for j, keys in groups.items()}
    rows: List[PackingRow] = []
    for alpha in instance.family.sets:
        coeffs: Dict = {}
        for beta in instance.family.subsets_of(alpha):
            for j in range(instance.n):
                key = (beta, j)
                if key in key_sets[j]:
                    coeffs[key] = to_fraction(instance.p(j, beta))
        rows.append(PackingRow(f"load[{sorted(alpha)}]", coeffs, len(alpha) * T))
    for i in sorted(instance.machines):
        coeffs = {}
        for j in range(instance.n):
            s = to_fraction(space[j][i])
            if s == 0:
                continue
            for key in groups[j]:
                alpha, _j = key
                if i in alpha:
                    coeffs[key] = s
        bound = to_fraction(budgets[i])
        if bound <= 0:
            raise InvalidInstanceError(f"budget of machine {i} must be positive")
        rows.append(PackingRow(f"mem[{i}]", coeffs, bound))
    return groups, rows


def solve_model1(
    instance: Instance,
    space: Sequence[Sequence[Time]],
    budgets: Mapping[int, Time],
    T: Time,
    backend: str = "hybrid",
    kernel: Optional[str] = None,
) -> Model1Result:
    """Theorem VI.1: round (IP-3)+(7) at horizon *T* into a schedule.

    *space[j][i]* is job *j*'s footprint on machine *i*.  Raises
    :class:`InfeasibleError` when the LP relaxation at *T* is infeasible
    (the theorem's precondition).
    """
    T = to_fraction(T)
    groups, rows = _model1_rows(instance, space, budgets, T)
    rounding = iterative_round(
        groups, rows, max_drop_vars=2, backend=backend, kernel=kernel
    )
    masks: Dict[int, MachineSet] = {}
    for (alpha, j), value in rounding.values.items():
        if value == 1:
            masks[j] = alpha
    assignment = Assignment(masks)
    T_final = min_T_for_assignment(instance, assignment)
    schedule = schedule_hierarchical(instance, assignment, T_final)
    memory_usage: Dict[int, Fraction] = {}
    for i in sorted(instance.machines):
        usage = Fraction(0)
        for j, alpha in assignment.items():
            if i in alpha:
                usage += to_fraction(space[j][i])
        memory_usage[i] = usage
    return Model1Result(
        instance=instance,
        T=T,
        assignment=assignment,
        schedule=schedule,
        makespan=schedule.makespan(),
        memory_usage=memory_usage,
        budgets={i: to_fraction(budgets[i]) for i in sorted(instance.machines)},
        rounding=rounding,
    )


def _memory_lp(groups: Mapping[int, List], rows: Sequence[PackingRow]):
    """The feasibility LP shared by both memory models (groups + packing rows)."""
    from ..lp.model import LinearProgram

    lp = LinearProgram()
    for j, keys in groups.items():
        for key in keys:
            lp.add_variable(key, lb=0)  # ub implied by the group equality
        lp.add_constraint({key: 1 for key in keys}, "==", 1)
    for row in rows:
        lp.add_constraint(row.coeffs, "<=", row.bound, name=row.name)
    return lp


def model1_lp_feasible(
    instance: Instance,
    space: Sequence[Sequence[Time]],
    budgets: Mapping[int, Time],
    T: Time,
    backend: str = "hybrid",
    kernel: Optional[str] = None,
) -> bool:
    """Whether the LP relaxation of (IP-3)+(7) is feasible at *T*.

    Certified for every backend via :func:`repro.lp.solve.is_feasible`.
    """
    from ..lp.solve import is_feasible

    T = to_fraction(T)
    try:
        groups, rows = _model1_rows(instance, space, budgets, T)
    except InfeasibleError:
        return False
    return is_feasible(_memory_lp(groups, rows), backend=backend, kernel=kernel)


def _min_T_with_rows(
    instance: Instance,
    groups: Mapping[int, List],
    rows: Sequence[PackingRow],
    anchor: Fraction,
    backend: str,
    kernel: Optional[str] = None,
) -> Optional[Fraction]:
    """Minimize T over the given rows with ``R`` frozen at *anchor*.

    Load rows (named ``load[...]``) scale with T (bound = |α|·T·(b/anchor
    proportion)); memory rows are T-independent.  Returns None if infeasible.
    """
    from ..lp.model import LinearProgram
    from ..lp.solve import solve_lp

    t_key = ("__T__",)
    lp = LinearProgram()
    lp.add_variable(t_key, lb=0)
    for j, keys in groups.items():
        for key in keys:
            lp.add_variable(key, lb=0)  # ub implied by the group equality
        lp.add_constraint({key: 1 for key in keys}, "==", 1)
    for row in rows:
        if row.name.startswith("load["):
            # bound was |α|·anchor; with T variable it becomes |α|·T.
            per_T = row.bound / anchor
            coeffs = dict(row.coeffs)
            coeffs[t_key] = -per_T
            lp.add_constraint(coeffs, "<=", 0, name=row.name)
        else:
            lp.add_constraint(row.coeffs, "<=", row.bound, name=row.name)
    lp.add_constraint({t_key: 1}, ">=", anchor)
    lp.set_objective({t_key: 1})
    solution = solve_lp(lp, backend=backend, kernel=kernel)
    if not solution.is_optimal:
        return None
    return to_fraction(solution.value(t_key))


def _minimal_memory_T(
    instance: Instance,
    rows_at,
    backend: str,
    kernel: Optional[str] = None,
) -> Fraction:
    """Shared breakpoint search for the two memory models.

    *rows_at(T)* returns ``(groups, rows)`` — the probe LP *and* the min-T
    refinement both build from it.  Mirroring the incremental pipeline of
    :func:`repro.core.programs.minimal_fractional_T`, the previous feasible
    probe's **basis** (a keyed :class:`~repro.lp.warm.WarmState`) is carried
    into the next probe — variable keys are stable across horizons, so when
    the admissible set is unchanged the solver refactorizes the carried
    basic columns and skips phase 1 outright; when it changed, the state
    degrades to its vertex as warm values and from there to a cold start.
    """
    from ..lp.solve import feasible_point

    warm: Dict = {}
    carried: List = [None]  # the last solve's WarmState (closure cell)

    def feasible_at(T: Fraction) -> bool:
        try:
            groups, rows = rows_at(T)
        except InfeasibleError:
            return False
        point, state = feasible_point(
            _memory_lp(groups, rows), backend=backend, warm_values=warm or None,
            kernel=kernel, warm_state=carried[0], want_state=True,
        )
        if state is not None:
            carried[0] = state
        if point is not None:
            warm.clear()
            warm.update({k: v for k, v in point.items() if v})
            return True
        return False

    values = sorted(
        {
            to_fraction(instance.p(j, alpha))
            for j in range(instance.n)
            for alpha in instance.family.sets
            if not is_inf(instance.p(j, alpha))
        }
    )
    if not values:
        raise InfeasibleError("no finite processing times")
    lo, hi = 0, len(values) - 1
    if not feasible_at(values[hi]):
        # Optimum above every breakpoint: R maximal, one min-T LP.
        try:
            groups, rows = rows_at(values[hi])
        except InfeasibleError:
            raise InfeasibleError("memory LP infeasible at every horizon")
        t_above = _min_T_with_rows(
            instance, groups, rows, values[hi], backend, kernel=kernel
        )
        if t_above is None:
            raise InfeasibleError("memory LP infeasible at every horizon")
        return t_above
    while lo < hi:
        mid = (lo + hi) // 2
        if feasible_at(values[mid]):
            hi = mid
        else:
            lo = mid + 1
    anchor = values[lo]
    if lo > 0:
        try:
            groups, rows = rows_at(values[lo - 1])
            t_prev = _min_T_with_rows(
                instance, groups, rows, values[lo - 1], backend, kernel=kernel
            )
        except InfeasibleError:
            t_prev = None
        if t_prev is not None and t_prev < anchor:
            return t_prev
    return anchor


def minimal_model1_T(
    instance: Instance,
    space: Sequence[Sequence[Time]],
    budgets: Mapping[int, Time],
    backend: str = "hybrid",
    kernel: Optional[str] = None,
) -> Fraction:
    """Smallest horizon at which (IP-3)+(7)'s LP relaxation is feasible."""
    return _minimal_memory_T(
        instance,
        rows_at=lambda T: _model1_rows(instance, space, budgets, to_fraction(T)),
        backend=backend,
        kernel=kernel,
    )


def solve_model1_exact(
    instance: Instance,
    space: Sequence[Sequence[Time]],
    budgets: Mapping[int, Time],
    backend: str = "hybrid",
) -> Tuple[Fraction, Assignment]:
    """Exact minimum makespan honoring the memory budgets *strictly*.

    Minimizes a continuous ``T`` over binary assignments subject to the load
    rows (scaled by T) and the hard memory rows (7) via branch-and-bound —
    the uncompromising reference the bicriteria Theorem VI.1 trades against.
    Small instances only.  Raises :class:`InfeasibleError` when no integral
    assignment fits the budgets at any horizon.
    """
    from ..lp.branch_and_bound import solve_binary_ilp
    from ..lp.model import LinearProgram

    # The largest relevant pruning anchor: every pair not ruled out by a
    # budget may participate at a sufficiently large horizon.
    _lo, hi = instance.trivial_bounds()
    anchor = to_fraction(hi)
    groups, rows = _model1_rows(instance, space, budgets, anchor)

    t_key = ("__T__",)
    lp = LinearProgram()
    lp.add_variable(t_key, lb=0)
    for j, keys in groups.items():
        for key in keys:
            lp.add_variable(key, lb=0, ub=1, integral=True)
        lp.add_constraint({key: 1 for key in keys}, "==", 1)
    for row in rows:
        if row.name.startswith("load["):
            per_T = row.bound / anchor  # |α|
            coeffs = dict(row.coeffs)
            coeffs[t_key] = -per_T
            lp.add_constraint(coeffs, "<=", 0, name=row.name)
        else:
            lp.add_constraint(row.coeffs, "<=", row.bound, name=row.name)
    # Constraint (2c): a chosen pair's processing time bounds T from below.
    for j, keys in groups.items():
        for key in keys:
            alpha, _j = key
            p = to_fraction(instance.p(j, alpha))
            if p > 0:
                lp.add_constraint({key: p, t_key: -1}, "<=", 0)
    lp.set_objective({t_key: 1})
    result = solve_binary_ilp(lp, backend=backend)
    if not result.is_optimal:
        raise InfeasibleError("no integral assignment fits the memory budgets")
    masks: Dict[int, MachineSet] = {}
    for key, value in result.values.items():
        if isinstance(key, tuple) and len(key) == 2 and value == 1:
            alpha, j = key
            masks[j] = alpha
    assignment = Assignment(masks)
    return min_T_for_assignment(instance, assignment), assignment


# ---------------------------------------------------------------------------
# Model 2
# ---------------------------------------------------------------------------


@dataclass
class Model2Result:
    instance: Instance
    T: Fraction
    assignment: Assignment
    schedule: Schedule
    makespan: Fraction
    memory_usage: Dict[MachineSet, Fraction]
    capacities: Dict[MachineSet, Fraction]
    rho: Fraction
    sigma: Fraction
    """The theorem's guarantee ``σ = 1 + ρ`` (= 2 + H_k, or 3 + 1/m for k=2)."""

    rounding: IterativeRoundingResult

    @property
    def makespan_ratio(self) -> Fraction:
        return self.makespan / self.T if self.T else Fraction(0)

    @property
    def max_memory_ratio(self) -> Fraction:
        ratios = [
            self.memory_usage[a] / self.capacities[a]
            for a in self.capacities
            if self.capacities[a] > 0
        ]
        return max(ratios) if ratios else Fraction(0)


def model2_rho(instance: Instance) -> Fraction:
    """The column-sum bound of Theorem VI.3's proof.

    ``1 + H_k`` in general; the tighter ``2 + 1/m`` when the family has two
    levels (the semi-partitioned case analyzed at the end of the proof).
    """
    k = instance.family.num_levels
    if k == 2:
        return 2 + Fraction(1, instance.m)
    return 1 + harmonic(k)


def _model2_rows(
    instance: Instance,
    sizes: Sequence[Time],
    mu: Time,
    T: Fraction,
) -> Tuple[Dict[int, List], List[PackingRow], Dict[MachineSet, Fraction]]:
    family = instance.family
    if not family.is_tree:
        raise InvalidInstanceError("Model 2 requires a tree-shaped family")
    mu = to_fraction(mu)
    if mu <= 1:
        raise InvalidInstanceError(f"µ must exceed 1, got {mu}")
    for j in range(instance.n):
        s = to_fraction(sizes[j])
        if not 0 <= s <= 1:
            raise InvalidInstanceError(f"job size s_{j}={s} outside [0, 1]")

    pairs = admissible_pairs(instance, T)
    groups: Dict[int, List] = {j: [] for j in range(instance.n)}
    for alpha, j in pairs:
        groups[j].append((alpha, j))
    for j, keys in groups.items():
        if not keys:
            raise InfeasibleError(f"job {j} has no admissible set within T={T}")
    key_sets = {j: set(keys) for j, keys in groups.items()}

    rows: List[PackingRow] = []
    for alpha in family.sets:
        coeffs: Dict = {}
        for beta in family.subsets_of(alpha):
            for j in range(instance.n):
                key = (beta, j)
                if key in key_sets[j]:
                    coeffs[key] = to_fraction(instance.p(j, beta))
        rows.append(PackingRow(f"load[{sorted(alpha)}]", coeffs, len(alpha) * T))
    capacities: Dict[MachineSet, Fraction] = {}
    root = frozenset(instance.machines)
    for alpha in family.sets:
        if alpha == root:
            continue  # the root has unbounded capacity
        cap = mu ** family.height(alpha)
        capacities[alpha] = cap
        coeffs = {}
        for j in range(instance.n):
            key = (alpha, j)
            if key in key_sets[j]:
                s = to_fraction(sizes[j])
                if s > 0:
                    coeffs[key] = s
        rows.append(PackingRow(f"mem[{sorted(alpha)}]", coeffs, cap))
    return groups, rows, capacities


def solve_model2(
    instance: Instance,
    sizes: Sequence[Time],
    mu: Time,
    T: Time,
    backend: str = "hybrid",
    kernel: Optional[str] = None,
) -> Model2Result:
    """Theorem VI.3: round (IP-4) at horizon *T* with Lemma VI.2.

    *sizes[j]* ≤ 1 is job *j*'s memory footprint; a node of height ``h``
    has capacity ``µ^h`` (root unbounded).
    """
    T = to_fraction(T)
    groups, rows, capacities = _model2_rows(instance, sizes, mu, T)
    rho = model2_rho(instance)
    rounding = iterative_round(
        groups, rows, rho=rho, backend=backend, kernel=kernel
    )
    masks: Dict[int, MachineSet] = {}
    for (alpha, j), value in rounding.values.items():
        if value == 1:
            masks[j] = alpha
    assignment = Assignment(masks)
    T_final = min_T_for_assignment(instance, assignment)
    schedule = schedule_hierarchical(instance, assignment, T_final)
    memory_usage: Dict[MachineSet, Fraction] = {}
    for alpha in capacities:
        memory_usage[alpha] = sum(
            (to_fraction(sizes[j]) for j, a in assignment.items() if a == alpha),
            Fraction(0),
        )
    return Model2Result(
        instance=instance,
        T=T,
        assignment=assignment,
        schedule=schedule,
        makespan=schedule.makespan(),
        memory_usage=memory_usage,
        capacities=capacities,
        rho=rho,
        sigma=1 + rho,
        rounding=rounding,
    )


def model2_lp_feasible(
    instance: Instance,
    sizes: Sequence[Time],
    mu: Time,
    T: Time,
    backend: str = "hybrid",
    kernel: Optional[str] = None,
) -> bool:
    """Whether the LP relaxation of (IP-4) is feasible at *T*.

    Certified for every backend via :func:`repro.lp.solve.is_feasible`.
    """
    from ..lp.solve import is_feasible

    T = to_fraction(T)
    try:
        groups, rows, _caps = _model2_rows(instance, sizes, mu, T)
    except InfeasibleError:
        return False
    return is_feasible(_memory_lp(groups, rows), backend=backend, kernel=kernel)


def minimal_model2_T(
    instance: Instance,
    sizes: Sequence[Time],
    mu: Time,
    backend: str = "hybrid",
    kernel: Optional[str] = None,
) -> Fraction:
    """Smallest horizon at which (IP-4)'s LP relaxation is feasible."""
    return _minimal_memory_T(
        instance,
        rows_at=lambda T: _model2_rows(instance, sizes, mu, to_fraction(T))[:2],
        backend=backend,
        kernel=kernel,
    )
