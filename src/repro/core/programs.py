"""Builders for the paper's mathematical programs (IP-1) … (IP-3).

The decision form (IP-3) at a fixed horizon ``T`` is the primitive
everything else uses:

* ``Σ_{α} x_{αj} = 1``          for every job (assignment rows),
* ``Σ_j Σ_{β ⊆ α} p_{βj} x_{βj} ≤ |α|·T``  for every admissible set,
* ``x_{αj} = 0`` whenever ``p_{αj} > T``   (the pruning set ``R``).

Minimizing the makespan reduces to binary search on ``T``: the admissible
pair set ``R(T)`` only changes at the distinct finite processing-time values,
and between two consecutive breakpoints feasibility is a single LP with ``T``
as an explicit variable.  :func:`minimal_fractional_T` implements that search
exactly, returning the paper's lower bound ``T* ≤ opt(I)``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple, Union

from .._fraction import is_inf, to_fraction
from ..exceptions import InfeasibleError
from ..lp.model import LinearProgram, LPSolution
from ..lp.solve import solve_lp
from .assignment import FractionalAssignment
from .instance import Instance
from .laminar import MachineSet

Time = Union[int, Fraction]

#: Variable key for the horizon in the min-T LPs.
T_KEY = ("__T__",)


def admissible_pairs(instance: Instance, T: Time) -> List[Tuple[MachineSet, int]]:
    """The pruning set ``R = {(α, j) : p_{αj} ≤ T}`` of Section V."""
    T = to_fraction(T)
    pairs: List[Tuple[MachineSet, int]] = []
    for j in range(instance.n):
        for alpha in instance.family.sets:
            p = instance.p(j, alpha)
            if not is_inf(p) and to_fraction(p) <= T:
                pairs.append((alpha, j))
    return pairs


def build_ip3(
    instance: Instance,
    T: Time,
    integral: bool = False,
) -> LinearProgram:
    """The decision program (IP-3) at horizon *T* (LP relaxation by default).

    Variables are keyed ``("x", α, j)``; only pairs in ``R(T)`` get a
    variable, which encodes constraint (3c) structurally.
    """
    T = to_fraction(T)
    lp = LinearProgram()
    pairs = admissible_pairs(instance, T)
    by_job: Dict[int, List[MachineSet]] = {}
    for alpha, j in pairs:
        lp.add_variable(("x", alpha, j), lb=0, ub=1, integral=integral)
        by_job.setdefault(j, []).append(alpha)
    for j in range(instance.n):
        if j not in by_job:
            # No admissible set fits within T — encode infeasibility as an
            # unsatisfiable row instead of raising, so binary search can
            # treat it uniformly.
            lp.add_constraint({}, "==", 1, name=f"assign[{j}]")
        else:
            lp.add_constraint(
                {("x", alpha, j): 1 for alpha in by_job[j]},
                "==",
                1,
                name=f"assign[{j}]",
            )
    for alpha in instance.family.sets:
        coeffs: Dict = {}
        for beta in instance.family.subsets_of(alpha):
            for j in range(instance.n):
                key = ("x", beta, j)
                if lp.has_variable(key):
                    coeffs[key] = to_fraction(instance.p(j, beta))
        lp.add_constraint(coeffs, "<=", len(alpha) * T, name=f"load[{sorted(alpha)}]")
    return lp


def feasible_lp_solution(
    instance: Instance,
    T: Time,
    backend: str = "exact",
) -> Optional[FractionalAssignment]:
    """A feasible fractional solution of (IP-3)'s LP relaxation at *T*.

    Returns ``None`` when the relaxation is infeasible.  The solution is a
    basic one (vertex) when the exact backend is used.
    """
    lp = build_ip3(instance, T)
    solution = solve_lp(lp, backend=backend)
    if not solution.is_optimal:
        return None
    values = {
        (alpha, j): value
        for (tag, alpha, j), value in solution.values.items()
        if tag == "x" and value != 0
    }
    return FractionalAssignment(values)


def lp_feasible(instance: Instance, T: Time, backend: str = "exact") -> bool:
    """Whether the LP relaxation of (IP-3) is feasible at horizon *T*."""
    return feasible_lp_solution(instance, T, backend=backend) is not None


def _breakpoints(instance: Instance) -> List[Fraction]:
    """Sorted distinct finite processing times — where ``R(T)`` changes."""
    values = set()
    for j in range(instance.n):
        for alpha in instance.family.sets:
            p = instance.p(j, alpha)
            if not is_inf(p):
                values.add(to_fraction(p))
    return sorted(values)


def _min_T_with_fixed_R(
    instance: Instance,
    r_anchor: Fraction,
    t_low: Fraction,
    backend: str,
) -> Optional[Fraction]:
    """Minimize T over the LP with ``R = R(r_anchor)`` and ``T ≥ t_low``.

    Returns the optimal T or ``None`` when infeasible.  Caller must ensure
    the returned value stays inside the bracket where ``R`` is constant.
    """
    lp = LinearProgram()
    lp.add_variable(T_KEY, lb=0)
    pairs = admissible_pairs(instance, r_anchor)
    by_job: Dict[int, List[MachineSet]] = {}
    for alpha, j in pairs:
        lp.add_variable(("x", alpha, j), lb=0, ub=1)
        by_job.setdefault(j, []).append(alpha)
    for j in range(instance.n):
        if j not in by_job:
            return None
        lp.add_constraint(
            {("x", alpha, j): 1 for alpha in by_job[j]}, "==", 1, name=f"assign[{j}]"
        )
    for alpha in instance.family.sets:
        coeffs: Dict = {T_KEY: -len(alpha)}
        for beta in instance.family.subsets_of(alpha):
            for j in range(instance.n):
                key = ("x", beta, j)
                if lp.has_variable(key):
                    coeffs[key] = to_fraction(instance.p(j, beta))
        lp.add_constraint(coeffs, "<=", 0, name=f"load[{sorted(alpha)}]")
    lp.add_constraint({T_KEY: 1}, ">=", t_low, name="bracket-low")
    lp.set_objective({T_KEY: 1})
    solution = solve_lp(lp, backend=backend)
    if not solution.is_optimal:
        return None
    return to_fraction(solution.value(T_KEY))


def minimal_fractional_T(instance: Instance, backend: str = "exact") -> Fraction:
    """The minimum horizon ``T*`` at which (IP-3)'s LP relaxation is feasible.

    This is the paper's fractional lower bound: ``T* ≤ opt(I)``.  Exact
    procedure: binary search over the breakpoints of ``R(T)``, then a min-T
    LP inside the bracket where ``R`` is constant.
    """
    points = _breakpoints(instance)
    if not points:
        raise InfeasibleError("no job has any finite processing time")
    # R(T) for T below the smallest breakpoint is empty unless p=0 pairs exist.
    lo_idx, hi_idx = 0, len(points) - 1
    if not lp_feasible(instance, points[hi_idx], backend=backend):
        # The optimum lies above every processing time (the load bound
        # dominates); R is maximal there, so one min-T LP settles it.
        top = points[hi_idx]
        t_above = _min_T_with_fixed_R(instance, top, top, backend)
        if t_above is None:
            raise InfeasibleError(
                "LP relaxation infeasible at every horizon; some job cannot "
                "be placed"
            )
        return t_above
    # Find the smallest breakpoint index at which the LP becomes feasible.
    while lo_idx < hi_idx:
        mid = (lo_idx + hi_idx) // 2
        if lp_feasible(instance, points[mid], backend=backend):
            hi_idx = mid
        else:
            lo_idx = mid + 1
    anchor = points[lo_idx]
    # Below `anchor`, R is strictly smaller.  The optimum lies either in the
    # previous bracket [prev, anchor) with R(prev), or at/above anchor with
    # R(anchor).
    candidates: List[Fraction] = []
    if lo_idx > 0:
        prev = points[lo_idx - 1]
        t_prev = _min_T_with_fixed_R(instance, prev, prev, backend)
        if t_prev is not None and t_prev < anchor:
            candidates.append(t_prev)
    t_here = _min_T_with_fixed_R(instance, anchor, anchor, backend)
    if t_here is not None:
        candidates.append(t_here)
    if not candidates:  # pragma: no cover - guarded by the binary search
        raise InfeasibleError("bracket search failed to certify feasibility")
    return min(candidates)
