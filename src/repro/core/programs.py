"""Builders for the paper's mathematical programs (IP-1) … (IP-3).

The decision form (IP-3) at a fixed horizon ``T`` is the primitive
everything else uses:

* ``Σ_{α} x_{αj} = 1``          for every job (assignment rows),
* ``Σ_j Σ_{β ⊆ α} p_{βj} x_{βj} ≤ |α|·T``  for every admissible set,
* ``x_{αj} = 0`` whenever ``p_{αj} > T``   (the pruning set ``R``).

Minimizing the makespan reduces to binary search on ``T``: the admissible
pair set ``R(T)`` only changes at the distinct finite processing-time values,
and between two consecutive breakpoints feasibility is a single LP with ``T``
as an explicit variable.  :func:`minimal_fractional_T` implements that search
exactly, returning the paper's lower bound ``T* ≤ opt(I)``.

Probe cost: a naive implementation rebuilds the subset-closure scan
(``O(|F|²·n)``) and cold-starts the simplex at every probe.  The search here
is **incremental** end to end:

* one :class:`IP3Builder` is shared across all probes — the closure is
  computed once, and each probe's rows are materialized by *masking* the
  cached index templates on ``p ≤ T`` (:meth:`IP3Builder.probe_rows`), not
  by rebuilding a keyed :class:`~repro.lp.model.LinearProgram`;
* successive probes reuse the bracketing probes' outcomes: a still-valid
  feasible point answers a "yes" probe after one ``O(nnz)`` exact re-check,
  a still-valid Farkas certificate answers a "no" probe the same way, and
  when a solve is unavoidable it is warm-started from the previous feasible
  point's factorized basis (:class:`_ProbeSession`);
* the final min-T LPs are warm-started from the feasible point the
  bracketing probe already produced — with a warm basis the min-T solve
  needs no phase-1 work at all.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple, Union

from .._fraction import is_inf, to_fraction
from ..exceptions import InfeasibleError, InvalidInstanceError
from ..lp.certificates import farkas_certifies
from ..lp.model import LinearProgram
from ..lp.solve import check_standard_rows, feasible_point, feasible_point_rows, solve_lp
from ..lp.stats import SolverStats, collect_stats, record
from ..lp.warm import WarmState
from ..obs.trace import span as trace_span
from .assignment import FractionalAssignment
from .instance import Instance
from .laminar import MachineSet

Time = Union[int, Fraction]

#: Variable key for the horizon in the min-T LPs.
T_KEY = ("__T__",)


def admissible_pairs(instance: Instance, T: Time) -> List[Tuple[MachineSet, int]]:
    """The pruning set ``R = {(α, j) : p_{αj} ≤ T}`` of Section V."""
    T = to_fraction(T)
    pairs: List[Tuple[MachineSet, int]] = []
    for j in range(instance.n):
        for alpha in instance.family.sets:
            p = instance.p(j, alpha)
            if not is_inf(p) and to_fraction(p) <= T:
                pairs.append((alpha, j))
    return pairs


class IP3Builder:
    """Instance structure shared by every LP a ``T``-search builds.

    Precomputes the finite pairs, the breakpoint list, and the per-set
    subset-closure templates of the load rows, so each probe LP is a filter
    pass instead of a fresh ``O(|F|²·n)`` scan.  Variable and row ordering
    match :func:`build_ip3` exactly (the vertex a solver returns depends on
    it).
    """

    def __init__(self, instance: Instance):
        self.instance = instance
        family = instance.family
        n = instance.n
        #: (j, α, p) for every finite pair, in build_ip3 variable order.
        self.finite: List[Tuple[int, MachineSet, Fraction]] = []
        has_finite = [False] * n
        for j in range(n):
            for alpha in family.sets:
                p = instance.p(j, alpha)
                if not is_inf(p):
                    self.finite.append((j, alpha, to_fraction(p)))
                    has_finite[j] = True
        self.jobs_without_options: List[int] = [
            j for j in range(n) if not has_finite[j]
        ]
        self.breakpoints: List[Fraction] = sorted({p for _j, _a, p in self.finite})
        #: Per-set load-row template: (β, j, p_{βj}) over β ⊆ α, finite.
        self.load_template: Dict[MachineSet, List[Tuple[MachineSet, int, Fraction]]] = {}
        for alpha in family.sets:
            entries: List[Tuple[MachineSet, int, Fraction]] = []
            for beta in family.subsets_of(alpha):
                for j in range(n):
                    p = instance.p(j, beta)
                    if not is_inf(p):
                        entries.append((beta, j, to_fraction(p)))
            self.load_template[alpha] = entries

        # Index-based row templates for probe masking: probes address
        # variables by their position in ``self.finite`` (stable across all
        # horizons), so materializing a probe is pure integer filtering —
        # no tuple-key hashing, no LinearProgram object.
        var_of_pair: Dict[Tuple[int, MachineSet], int] = {
            (j, alpha): gi for gi, (j, alpha, _p) in enumerate(self.finite)
        }
        #: Per-job assignment-row template: global variable indices.
        self.assign_template: List[List[int]] = [[] for _ in range(n)]
        for gi, (j, _alpha, _p) in enumerate(self.finite):
            self.assign_template[j].append(gi)
        #: Per-set load-row template in index form: (global index, p).
        self.load_template_idx: List[Tuple[MachineSet, List[Tuple[int, Fraction]]]] = [
            (
                alpha,
                [
                    (var_of_pair[(j, beta)], p)
                    for beta, j, p in self.load_template[alpha]
                ],
            )
            for alpha in family.sets
        ]
        #: Processing time per global variable index.
        self.var_p: List[Fraction] = [p for _j, _a, p in self.finite]

    def probe_rows(
        self, T: Fraction
    ) -> Tuple[List[Dict[int, Fraction]], List[str], List[Fraction], List[int]]:
        """The decision LP at horizon *T* as masked standard rows.

        Returns ``(coeff_rows, senses, rhs, active)`` where *active* maps
        local variable index → position in ``self.finite``.  Row order is
        the ``decision_lp`` order (all assignment rows, then all load rows),
        which is what keeps Farkas certificates transferable between
        probes.  ``O(nnz)`` — a filter pass over cached index templates.
        """
        var_p = self.var_p
        active = [gi for gi in range(len(var_p)) if var_p[gi] <= T]
        local = {gi: li for li, gi in enumerate(active)}
        coeff_rows: List[Dict[int, Fraction]] = []
        senses: List[str] = []
        rhs: List[Fraction] = []
        one = Fraction(1)
        for j in range(self.instance.n):
            coeff_rows.append(
                {local[gi]: one for gi in self.assign_template[j] if var_p[gi] <= T}
            )
            senses.append("==")
            rhs.append(one)
        for alpha, entries in self.load_template_idx:
            coeff_rows.append(
                {local[gi]: p for gi, p in entries if p <= T}
            )
            senses.append("<=")
            rhs.append(len(alpha) * T)
        return coeff_rows, senses, rhs, active

    def decision_lp(self, T: Fraction) -> LinearProgram:
        """The LP relaxation of (IP-3) at horizon *T* (== :func:`build_ip3`)."""
        lp = LinearProgram()
        by_job: Dict[int, List[MachineSet]] = {}
        # No explicit ub: x ≤ 1 is implied by the assignment equality rows
        # (each variable has coefficient 1 in exactly one of them), and
        # materializing the bound as a row would multiply the tableau size.
        for j, alpha, p in self.finite:
            if p <= T:
                lp.add_variable(("x", alpha, j), lb=0)
                by_job.setdefault(j, []).append(alpha)
        for j in range(self.instance.n):
            if j not in by_job:
                lp.add_constraint({}, "==", 1, name=f"assign[{j}]")
            else:
                lp.add_constraint(
                    {("x", alpha, j): 1 for alpha in by_job[j]},
                    "==",
                    1,
                    name=f"assign[{j}]",
                )
        for alpha in self.instance.family.sets:
            coeffs = {
                ("x", beta, j): p
                for beta, j, p in self.load_template[alpha]
                if p <= T
            }
            lp.add_constraint(coeffs, "<=", len(alpha) * T, name=f"load[{sorted(alpha)}]")
        return lp

    def min_T_lp(self, r_anchor: Fraction, t_low: Fraction) -> Optional[LinearProgram]:
        """Min-T LP with ``R`` frozen at *r_anchor* and ``T ≥ t_low``.

        Returns ``None`` when some job has no admissible set at the anchor
        (the frozen-R program is then trivially infeasible).
        """
        lp = LinearProgram()
        lp.add_variable(T_KEY, lb=0)
        by_job: Dict[int, List[MachineSet]] = {}
        for j, alpha, p in self.finite:
            if p <= r_anchor:
                lp.add_variable(("x", alpha, j), lb=0)  # ub implied, see above
                by_job.setdefault(j, []).append(alpha)
        for j in range(self.instance.n):
            if j not in by_job:
                return None
            lp.add_constraint(
                {("x", alpha, j): 1 for alpha in by_job[j]}, "==", 1, name=f"assign[{j}]"
            )
        for alpha in self.instance.family.sets:
            coeffs: Dict = {T_KEY: -len(alpha)}
            for beta, j, p in self.load_template[alpha]:
                if p <= r_anchor:
                    coeffs[("x", beta, j)] = p
            lp.add_constraint(coeffs, "<=", 0, name=f"load[{sorted(alpha)}]")
        lp.add_constraint({T_KEY: 1}, ">=", t_low, name="bracket-low")
        lp.set_objective({T_KEY: 1})
        return lp


class _ProbeSession:
    """Incremental feasibility probing for one binary search.

    Carries the last feasible point and the last Farkas certificate across
    probes.  Probe rows share one variable indexing (positions in
    ``builder.finite``) and one row order, so both artifacts transfer
    between horizons: a point transfers downward whenever its support
    survives the shrunken pruning set and the tightened load bounds (one
    exact ``O(nnz)`` re-check decides), a certificate transfers upward
    whenever the new columns keep its column sums non-positive (same
    check).  Either hit answers the probe with **no LP solve at all**;
    misses fall through to a certified solve warm-started from the masked
    previous point.  Shortcut hits are recorded as
    ``point_reuses``/``farkas_reuses`` in any active
    :func:`repro.lp.stats.collect_stats` scope.

    Probes that do solve additionally carry the solver's **basis**
    (:class:`~repro.lp.warm.WarmState`) to the next probe.  The state is
    stored in the local column space of the producing probe together with
    its ``active`` mask; a consumer with the *same* active set hands it to
    the solver unchanged (the structure token then authorizes verbatim
    ``W`` reuse whenever the row scales also agree), while a different
    active set relabels through the shared global indexing — dropping the
    token, so the solver refactorizes the surviving basis (``O(m³)``, still
    skipping phase 1 and the warm-point push).  A basis whose basic
    structural columns were masked away degrades to the point path.
    """

    def __init__(
        self,
        builder: IP3Builder,
        backend: str,
        kernel: Optional[str] = None,
    ):
        self.builder = builder
        self.backend = backend
        self.kernel = kernel
        #: Last feasible point, keyed by global variable index (support only).
        self.point: Optional[Dict[int, Fraction]] = None
        #: Last verified Farkas certificate, in probe-row order.
        self.farkas: Optional[List[Fraction]] = None
        #: Basis of the last probe that actually solved (local labels).
        self.state: Optional[WarmState] = None
        #: The ``active`` mask (local→global) the state was produced under.
        self.state_active: Optional[Tuple[int, ...]] = None

    def _token(self, active: Tuple[int, ...]) -> Tuple:
        """Structure witness: same builder + same active mask ⇒ identical
        probe columns (row order and unscaled coefficients are functions of
        the templates and the mask; scale equality is checked separately by
        the solver)."""
        return (id(self.builder), active)

    def _carried_state(
        self, active: List[int]
    ) -> Tuple[Optional[WarmState], object]:
        """The carried basis relabelled for a probe over *active*."""
        if self.state is None or self.state_active is None:
            return None, None
        key = tuple(active)
        if self.state_active == key:
            return self.state, self._token(key)
        old_active = self.state_active
        new_local = {gi: li for li, gi in enumerate(active)}

        def mapper(li_old: object) -> Optional[int]:
            if not isinstance(li_old, int) or not 0 <= li_old < len(old_active):
                return None  # pragma: no cover - labels are self-produced
            return new_local.get(old_active[li_old])

        return self.state.relabel(mapper, new_n=len(active)), None

    def probe(self, T: Fraction) -> Optional[Dict[int, Fraction]]:
        """Certified feasibility verdict at horizon *T*.

        Returns the feasible point (global-index keyed, support only) or
        ``None`` for a certified infeasibility.
        """
        builder = self.builder
        var_p = builder.var_p
        with trace_span("search.probe", T=str(T)) as probe_sp:
            # A job with no admissible pair at T is an unsatisfiable {} == 1
            # row; decide it structurally instead of building the LP.
            for j in range(builder.instance.n):
                if not any(var_p[gi] <= T for gi in builder.assign_template[j]):
                    if probe_sp:
                        probe_sp.attrs["outcome"] = "structurally-infeasible"
                    return None
            coeff_rows, senses, rhs, active = builder.probe_rows(T)
            if self.farkas is not None and farkas_certifies(
                coeff_rows, senses, rhs, self.farkas
            ):
                record(SolverStats(farkas_reuses=1))
                if probe_sp:
                    probe_sp.attrs["outcome"] = "farkas-reuse"
                return None
            masked: Optional[List[Fraction]] = None
            if self.point is not None:
                masked = [self.point.get(gi, Fraction(0)) for gi in active]
                support_survives = all(var_p[gi] <= T for gi in self.point)
                if support_survives and check_standard_rows(
                    coeff_rows, senses, rhs, masked
                ):
                    record(SolverStats(point_reuses=1))
                    if probe_sp:
                        probe_sp.attrs["outcome"] = "point-reuse"
                    return self.point
            carried, token = self._carried_state(active)
            with collect_stats() as probe_stats:
                point, farkas, state = feasible_point_rows(
                    coeff_rows, senses, rhs, len(active),
                    backend=self.backend, warm_point=masked, kernel=self.kernel,
                    warm_state=carried, structure_token=token,
                    want_state=True,
                )
            if probe_sp:
                probe_sp.attrs["basis_reuse"] = bool(probe_stats.basis_reuses)
            if state is not None:
                self.state = state
                self.state_active = tuple(active)
            if point is not None:
                self.point = {
                    active[li]: v for li, v in enumerate(point) if v
                }
                if probe_sp:
                    probe_sp.attrs["outcome"] = "solved-feasible"
                return self.point
            if farkas is not None:
                self.farkas = farkas
            if probe_sp:
                probe_sp.attrs["outcome"] = "solved-infeasible"
            return None

    def keyed_point(
        self, gpoint: Optional[Dict[int, Fraction]]
    ) -> Optional[Dict]:
        """A global-index point as ``("x", α, j)``-keyed LP warm values."""
        if gpoint is None:
            return None
        finite = self.builder.finite
        return {
            ("x", finite[gi][1], finite[gi][0]): v for gi, v in gpoint.items()
        }

    def keyed_state(self) -> Optional[WarmState]:
        """The carried basis relabelled onto ``("x", α, j)`` variable keys.

        This is the form :func:`repro.lp.solve.solve_lp` consumes (e.g. the
        min-T re-solve).  Consumers whose standard form has different
        dimensions — the min-T LP adds the ``T`` column and the bracket
        row — reject the basis exactly and degrade to its carried vertex.
        """
        if self.state is None or self.state_active is None:
            return None
        finite = self.builder.finite
        active = self.state_active

        def mapper(li: object) -> Optional[Tuple]:
            if isinstance(li, int) and 0 <= li < len(active):
                j, alpha, _p = finite[active[li]]
                return ("x", alpha, j)
            return None  # pragma: no cover - labels are self-produced

        return self.state.relabel(mapper)


def build_ip3(
    instance: Instance,
    T: Time,
    integral: bool = False,
) -> LinearProgram:
    """The decision program (IP-3) at horizon *T* (LP relaxation by default).

    Variables are keyed ``("x", α, j)``; only pairs in ``R(T)`` get a
    variable, which encodes constraint (3c) structurally.
    """
    T = to_fraction(T)
    lp = LinearProgram()
    pairs = admissible_pairs(instance, T)
    by_job: Dict[int, List[MachineSet]] = {}
    for alpha, j in pairs:
        # ub=1 is implied by the assignment rows; it is only declared for
        # integral builds, where branch-and-bound requires explicit bounds.
        lp.add_variable(
            ("x", alpha, j), lb=0, ub=1 if integral else None, integral=integral
        )
        by_job.setdefault(j, []).append(alpha)
    for j in range(instance.n):
        if j not in by_job:
            # No admissible set fits within T — encode infeasibility as an
            # unsatisfiable row instead of raising, so binary search can
            # treat it uniformly.
            lp.add_constraint({}, "==", 1, name=f"assign[{j}]")
        else:
            lp.add_constraint(
                {("x", alpha, j): 1 for alpha in by_job[j]},
                "==",
                1,
                name=f"assign[{j}]",
            )
    for alpha in instance.family.sets:
        coeffs: Dict = {}
        for beta in instance.family.subsets_of(alpha):
            for j in range(instance.n):
                key = ("x", beta, j)
                if lp.has_variable(key):
                    coeffs[key] = to_fraction(instance.p(j, beta))
        lp.add_constraint(coeffs, "<=", len(alpha) * T, name=f"load[{sorted(alpha)}]")
    return lp


def feasible_lp_solution(
    instance: Instance,
    T: Time,
    backend: str = "hybrid",
    kernel: Optional[str] = None,
) -> Optional[FractionalAssignment]:
    """A feasible fractional solution of (IP-3)'s LP relaxation at *T*.

    Returns ``None`` when the relaxation is infeasible.  The solution is a
    basic one (vertex) with the exact and hybrid backends.  With
    ``backend="scipy"`` the rationalized point is re-checked exactly and
    **repaired** (exact re-solve, warm-started from the candidate) when it
    violates any constraint — an uncertified point never propagates into
    ``push_down``/``lst_round``.
    """
    lp = build_ip3(instance, T)
    solution = solve_lp(lp, backend=backend, kernel=kernel)
    if not solution.is_optimal and backend == "scipy":
        # A float "infeasible" right at the certified T* boundary is noise
        # territory; re-derive the verdict exactly before returning None.
        solution = solve_lp(lp, backend="exact", kernel=kernel)
    if not solution.is_optimal:
        return None
    if backend == "scipy" and lp.check_values(solution.values):
        # Rationalization noise: certify by exact re-solve instead of
        # handing a near-feasible point to the rounding arguments.
        solution = solve_lp(
            lp, backend="exact", warm_values=solution.values, kernel=kernel
        )
        if not solution.is_optimal:  # pragma: no cover - float false positive
            return None
    values = {
        (alpha, j): value
        for (tag, alpha, j), value in solution.values.items()
        if tag == "x" and value != 0
    }
    return FractionalAssignment(values)


def lp_feasible(
    instance: Instance, T: Time, backend: str = "hybrid", kernel: Optional[str] = None
) -> bool:
    """Whether the LP relaxation of (IP-3) is feasible at horizon *T*.

    Certified for every backend: the verdict is always backed by either an
    exactly re-checked point or an exact solve (see
    :func:`repro.lp.solve.feasible_point`).
    """
    return (
        feasible_point(
            build_ip3(instance, to_fraction(T)), backend=backend, kernel=kernel
        )
        is not None
    )


def _min_T_with_fixed_R(
    instance: Instance,
    r_anchor: Fraction,
    t_low: Fraction,
    backend: str,
    builder: Optional[IP3Builder] = None,
    warm_values: Optional[Dict] = None,
    kernel: Optional[str] = None,
    warm_state: Optional[WarmState] = None,
) -> Optional[Fraction]:
    """Minimize T over the LP with ``R = R(r_anchor)`` and ``T ≥ t_low``.

    Returns the optimal T or ``None`` when infeasible.  Caller must ensure
    the returned value stays inside the bracket where ``R`` is constant.
    *warm_values* (a feasible point of the decision LP at *r_anchor*) lets
    the exact/hybrid backends start from a feasible basis; *warm_state* (a
    keyed carried basis, see :meth:`_ProbeSession.keyed_state`) is offered
    first and degrades to the point path when stale.  The optimum ``T`` is
    vertex-invariant, so the vertex is not canonicalized.
    """
    builder = builder or IP3Builder(instance)
    with trace_span(
        "search.min_T", anchor=str(r_anchor), warm=warm_values is not None,
    ) as min_sp:
        lp = builder.min_T_lp(r_anchor, t_low)
        if lp is None:
            if min_sp:
                min_sp.attrs["outcome"] = "trivially-infeasible"
            return None
        warm = None
        if warm_values:
            warm = dict(warm_values)
            warm.setdefault(T_KEY, max(t_low, r_anchor))
        solution = solve_lp(
            lp, backend=backend, warm_values=warm, kernel=kernel,
            warm_state=warm_state, canonical=False,
        )
        if not solution.is_optimal:
            if min_sp:
                min_sp.attrs["outcome"] = "infeasible"
            return None
        if min_sp:
            min_sp.attrs["outcome"] = "optimal"
        return to_fraction(solution.value(T_KEY))


def minimal_fractional_T(
    instance: Instance, backend: str = "hybrid", kernel: Optional[str] = None
) -> Fraction:
    """The minimum horizon ``T*`` at which (IP-3)'s LP relaxation is feasible.

    This is the paper's fractional lower bound: ``T* ≤ opt(I)``.  Exact
    procedure: binary search over the breakpoints of ``R(T)``, then a min-T
    LP inside the bracket where ``R`` is constant.  The probes run through
    :class:`_ProbeSession`, so consecutive probes reuse each other's
    feasible points and Farkas certificates and only a handful of them pay
    for an actual LP solve.

    Degenerate inputs resolve exactly instead of entering a vacuous search:

    * no jobs → ``0``;
    * a job whose processing row is all-INF can never be placed at any
      horizon → :class:`InvalidInstanceError` (structural, not a matter of
      ``T``);
    * all finite processing times zero (zero-volume instance) → ``0``.
    """
    if instance.n == 0:
        return Fraction(0)
    builder = IP3Builder(instance)
    if builder.jobs_without_options:
        jobs = builder.jobs_without_options
        raise InvalidInstanceError(
            f"job(s) {jobs} have no finite processing time on any admissible "
            f"set; no horizon T can make (IP-3) feasible"
        )
    points = builder.breakpoints
    if points[-1] == 0:
        # Every finite time is 0 and every job has one: T* = 0 exactly.
        return Fraction(0)

    with trace_span(
        "search.minimal_fractional_T",
        n=instance.n, backend=backend, breakpoints=len(points),
    ):
        session = _ProbeSession(builder, backend, kernel=kernel)
        lo_idx, hi_idx = 0, len(points) - 1
        top_point = session.probe(points[hi_idx])
        if top_point is None:
            # The optimum lies above every processing time (the load bound
            # dominates); R is maximal there, so one min-T LP settles it.
            top = points[hi_idx]
            t_above = _min_T_with_fixed_R(
                instance, top, top, backend, builder=builder, kernel=kernel
            )
            if t_above is None:
                raise InfeasibleError(
                    "LP relaxation infeasible at every horizon; some job cannot "
                    "be placed"
                )
            return t_above
        # Find the smallest breakpoint index at which the LP becomes feasible.
        feasible_points: Dict[Fraction, Dict] = {points[hi_idx]: top_point}
        while lo_idx < hi_idx:
            mid = (lo_idx + hi_idx) // 2
            mid_point = session.probe(points[mid])
            if mid_point is not None:
                feasible_points[points[mid]] = mid_point
                hi_idx = mid
            else:
                lo_idx = mid + 1
        anchor = points[lo_idx]
        anchor_point = session.keyed_point(feasible_points.get(anchor))
        # Below `anchor`, R is strictly smaller.  The optimum lies either in
        # the previous bracket [prev, anchor) with R(prev), or at/above anchor
        # with R(anchor).
        candidates: List[Fraction] = []
        if lo_idx > 0:
            prev = points[lo_idx - 1]
            # The anchor's feasible point, restricted to R(prev)'s variables
            # (absent keys are dropped and counted by the solver), with
            # ``T = anchor`` is the best available seed: often feasible for
            # the previous bracket's LP, and its support still crashes most
            # of the basis when it is not.
            prev_warm = None
            if anchor_point:
                prev_warm = dict(anchor_point)
                prev_warm[T_KEY] = anchor
            t_prev = _min_T_with_fixed_R(
                instance, prev, prev, backend, builder=builder,
                warm_values=prev_warm, kernel=kernel,
            )
            if t_prev is not None and t_prev < anchor:
                candidates.append(t_prev)
        t_here = _min_T_with_fixed_R(
            instance, anchor, anchor, backend, builder=builder,
            warm_values=anchor_point, kernel=kernel,
            warm_state=session.keyed_state(),
        )
        if t_here is not None:
            candidates.append(t_here)
        if not candidates:  # pragma: no cover - guarded by the binary search
            raise InfeasibleError("bracket search failed to certify feasibility")
        return min(candidates)
