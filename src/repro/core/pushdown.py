"""Lemma V.1 — pushing fractional weight down to the singleton sets.

Given a feasible fractional solution ``x`` of (IP-3)'s LP relaxation and a
non-singleton set ``η``, the lemma redistributes all of ``η``'s weight onto
its maximal proper subsets ``β_1, …, β_q`` proportionally to their slack:

    x'_{βj} = x_{βj} + slack(β, x) / Σ_i slack(β_i, x) · x_{ηj}     (6)

Feasibility is preserved because (5) bounds ``Σ_j p_{ηj} x_{ηj}`` by the
total child slack, and monotone processing times mean moving a job downward
never increases its contribution.  Repeating top-down leaves all weight on
singletons, turning the hierarchical LP into an unrelated-machines LP —
the bridge to the Lenstra–Shmoys–Tardos rounding in Theorem V.2.

The family must contain every singleton (Section V's w.l.o.g. step —
:meth:`repro.Instance.with_singletons` arranges it), so the maximal proper
subsets of any non-singleton always cover it.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Tuple, Union

from .._fraction import to_fraction
from ..exceptions import RoundingError
from .assignment import FractionalAssignment
from .instance import Instance
from .laminar import MachineSet

Time = Union[int, Fraction]


def push_down_once(
    instance: Instance,
    x: FractionalAssignment,
    T: Time,
    eta: MachineSet,
) -> FractionalAssignment:
    """Apply Lemma V.1 to one non-singleton set ``η``.

    Returns a new solution with ``x'_{ηj} = 0`` for all jobs and all other
    sets outside ``η`` untouched.  Raises :class:`RoundingError` when the
    preconditions fail (missing singletons / infeasible input).
    """
    eta = frozenset(eta)
    T = to_fraction(T)
    family = instance.family
    if len(eta) <= 1:
        raise RoundingError(f"push-down target {sorted(eta)} is a singleton")
    children = family.children(eta)
    covered = frozenset().union(*children) if children else frozenset()
    if covered != eta:
        raise RoundingError(
            f"children of {sorted(eta)} cover only {sorted(covered)}; "
            f"extend the family with singletons first"
        )

    moving: List[Tuple[int, Fraction]] = [
        (j, v) for (alpha, j), v in x.items() if alpha == eta
    ]
    if not moving:
        return x.copy()

    slacks: Dict[MachineSet, Fraction] = {
        beta: x.slack(instance, beta, T) for beta in children
    }
    for beta, s in slacks.items():
        if s < 0:
            raise RoundingError(
                f"negative slack {s} on {sorted(beta)}: input solution "
                f"violates (4b)"
            )
    total_slack = sum(slacks.values(), Fraction(0))

    values = {key: v for key, v in x.items()}
    if total_slack == 0:
        # Inequality (5) forces Σ_j p_{ηj} x_{ηj} = 0, so every moving job
        # has p_{ηj} = 0 and (monotonicity) zero time on any child: park the
        # whole mass on the first child.
        target = children[0]
        for j, v in moving:
            if to_fraction(instance.p(j, eta)) != 0:
                raise RoundingError(
                    f"zero child slack but job {j} has p_η = {instance.p(j, eta)}; "
                    f"input solution violates (4b)"
                )
            values[(target, j)] = values.get((target, j), Fraction(0)) + v
            del values[(eta, j)]
        return FractionalAssignment(values)

    for j, v in moving:
        for beta in children:
            share = slacks[beta] / total_slack * v
            if share > 0:
                values[(beta, j)] = values.get((beta, j), Fraction(0)) + share
        del values[(eta, j)]
    return FractionalAssignment(values)


def push_down(
    instance: Instance,
    x: FractionalAssignment,
    T: Time,
) -> FractionalAssignment:
    """Push all fractional weight onto singleton sets (repeated Lemma V.1).

    Sets are processed top-down so each set is cleared exactly once; the
    result satisfies ``x_{αj} > 0 ⇒ |α| = 1`` and remains feasible for the
    LP relaxation of (IP-3) at the same horizon.
    """
    current = x
    for eta in instance.family.top_down():
        if len(eta) <= 1:
            continue
        current = push_down_once(instance, current, T, eta)
    if not current.supported_on_singletons():  # pragma: no cover - invariant
        raise RoundingError("push-down left weight on a non-singleton set")
    return current
