"""Algorithm 1 of the paper — the semi-partitioned wrap-around scheduler.

Given a feasible solution ``(x, T)`` to (IP-1), the scheduler produces a
valid schedule on ``[0, T]`` (Theorem III.1):

1. Global jobs (mask ``M``) are concatenated into a single *line* of volume
   ``V = Σ p_{0j} x_{0j}``.  Machines are visited in ascending order; machine
   ``i`` takes ``δ = min(V, T − local_load(i))`` units of the line, placed on
   the circle of circumference ``T`` at ``[t, t+δ (mod T))`` where ``t`` is
   the running end position.  Because the line position of every unit equals
   its real time mod T, and every job's global time is ≤ T (constraint 1d),
   no job ever runs on two machines at once.
2. Local jobs fill each machine's complementary arc.

The construction yields at most ``m−1`` migrations and ``2m−2`` preemptions
plus migrations in total (Proposition III.2).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple, Union

from .._fraction import to_fraction, to_fraction_finite
from ..exceptions import InfeasibleError
from ..schedule.schedule import Schedule
from ..schedule.segments import advance_mod, place_arc
from .assignment import Assignment, verify_ip1
from .instance import Instance

Time = Union[int, Fraction]


def _job_line(instance: Instance, assignment: Assignment, alpha) -> List[Tuple[int, Fraction]]:
    """The jobs assigned to *alpha* as a line of (job, length) pieces."""
    line: List[Tuple[int, Fraction]] = []
    for j in assignment.jobs_on(alpha):
        length = to_fraction_finite(
            instance.p(j, alpha), f"processing time of job {j} on its mask"
        )
        if length > 0:
            line.append((j, length))
    return line


class _LineCursor:
    """Consumes a job line piece by piece, splitting jobs at chunk borders."""

    def __init__(self, line: List[Tuple[int, Fraction]]):
        self._line = line
        self._index = 0
        self._used = Fraction(0)  # consumed prefix of the current job

    @property
    def remaining(self) -> Fraction:
        total = Fraction(0)
        for idx in range(self._index, len(self._line)):
            total += self._line[idx][1]
        return total - self._used

    def take(self, amount: Fraction) -> List[Tuple[int, Fraction]]:
        """Remove *amount* units from the front; returns (job, length) pieces."""
        pieces: List[Tuple[int, Fraction]] = []
        left = amount
        while left > 0:
            if self._index >= len(self._line):
                raise InfeasibleError("job line exhausted before volume was placed")
            job, length = self._line[self._index]
            available = length - self._used
            chunk = min(available, left)
            if chunk > 0:
                pieces.append((job, chunk))
            self._used += chunk
            left -= chunk
            if self._used == length:
                self._index += 1
                self._used = Fraction(0)
        return pieces

    def exhausted(self) -> bool:
        return self._index >= len(self._line)


def _place_pieces(
    schedule: Schedule,
    machine: int,
    pieces: List[Tuple[int, Fraction]],
    start: Fraction,
    T: Fraction,
) -> Fraction:
    """Lay pieces consecutively on the circle from *start*; return end pos."""
    cursor = start
    for job, length in pieces:
        for seg_start, seg_end in place_arc(cursor, length, T):
            schedule.add_segment(machine, job, seg_start, seg_end)
        cursor = advance_mod(cursor, length, T)
    return cursor


def schedule_semi_partitioned(
    instance: Instance,
    assignment: Assignment,
    T: Time,
    check_feasibility: bool = True,
) -> Schedule:
    """Run Algorithm 1 on a feasible (IP-1) solution.

    Parameters
    ----------
    check_feasibility:
        Verify the (IP-1) constraints first and raise
        :class:`~repro.exceptions.InvalidAssignmentError` on violation.
        Theorem III.1 only promises a valid schedule for feasible inputs.
    """
    if check_feasibility:
        verify_ip1(instance, assignment, T).raise_if_infeasible()
    T = to_fraction(T)
    machines = sorted(instance.machines)
    root = frozenset(instance.machines)
    schedule = Schedule(machines, T)
    if T == 0:
        return schedule  # feasibility forces all processing times to be 0

    local_load: Dict[int, Fraction] = {}
    for i in machines:
        local_load[i] = sum(
            (
                to_fraction_finite(
                    instance.p(j, frozenset([i])),
                    f"processing time of job {j} on machine {i}",
                )
                for j in assignment.jobs_on(frozenset([i]))
            ),
            Fraction(0),
        )

    # --- lines 1-8: wrap-around placement of the global volume --------------
    cursor = _LineCursor(_job_line(instance, assignment, root))
    V = cursor.remaining
    t = Fraction(0)
    global_arc: Dict[int, Tuple[Fraction, Fraction]] = {}  # machine -> (start, δ)
    for i in machines:
        if V <= 0:
            break
        delta = min(V, T - local_load[i])
        if delta < 0:
            raise InfeasibleError(
                f"machine {i} local load {local_load[i]} exceeds T={T}"
            )
        if delta > 0:
            pieces = cursor.take(delta)
            _place_pieces(schedule, i, pieces, t, T)
            global_arc[i] = (t, delta)
            t = advance_mod(t, delta, T)
        V -= delta
    if V > 0:
        raise InfeasibleError(
            f"global volume {V} could not be placed: (IP-1) constraint (1b) "
            f"must be violated"
        )

    # --- lines 9-10: local jobs in the complementary arcs -------------------
    for i in machines:
        line = _job_line(instance, assignment, frozenset([i]))
        if not line:
            continue
        if i in global_arc:
            start, delta = global_arc[i]
            free_start = advance_mod(start, delta, T)
        else:
            free_start = Fraction(0)
        _place_pieces(schedule, i, line, free_start, T)

    return schedule
