"""Typed exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors (``TypeError``,
``KeyError`` and friends are never wrapped).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class InvalidFamilyError(ReproError):
    """The admissible-set family is not a valid laminar family."""


class MonotonicityError(ReproError):
    """Processing times violate the monotonicity requirement of the model.

    The paper requires ``α ⊆ β  ⇒  P_j(α) ≤ P_j(β)`` for all admissible sets:
    running a job on a larger machine set can only add (migration) overhead.
    """


class InvalidInstanceError(ReproError):
    """The problem instance is structurally malformed."""


class InvalidAssignmentError(ReproError):
    """An assignment violates the ILP constraints it is checked against."""


class InfeasibleError(ReproError):
    """The requested (sub)problem admits no feasible solution."""


class InvalidScheduleError(ReproError):
    """A schedule violates the validity conditions of Section II."""


class ScheduleValidationError(InvalidScheduleError):
    """Structured form of a failed validation.

    Raised by :meth:`repro.schedule.validator.ValidationReport.raise_if_invalid`
    with the full violation list attached, so callers can inspect *which*
    job/piece/time broke *which* condition instead of parsing a message.
    ``violations`` holds the :class:`~repro.schedule.validator.ScheduleViolation`
    dataclasses; each has structured ``job``/``machine``/``start``/``end``/
    ``limit`` fields next to its rendered ``detail``.
    """

    def __init__(self, violations):
        self.violations = list(violations)
        msgs = "; ".join(str(v) for v in self.violations)
        super().__init__(f"invalid schedule: {msgs}")

    def __reduce__(self):
        # Keep the structure across pickling (sweep workers raise through a
        # process pool) — the default reduce would re-init with the message.
        return (self.__class__, (self.violations,))


class SolverError(ReproError):
    """An LP/ILP solver failed or returned an unusable status."""


class AnalyticSoundnessError(ReproError):
    """An analytic verdict disagreed with the exact solve (or produced an
    unverifiable witness).

    The RTA engine's decided verdicts are supposed to be sound by
    construction — SCHEDULABLE comes with a capacity-verified assignment,
    UNSCHEDULABLE with a violated necessary bound — so any disagreement is
    a bug in the bounds, never a statistical fluctuation.  Experiment E19
    raises this instead of tabulating the disagreement, which is what lets
    CI enforce soundness by simply running the sweep.
    """


class UnboundedError(SolverError):
    """The linear program is unbounded in the optimization direction."""


class PivotLimitError(SolverError):
    """The simplex exceeded its pivot budget.

    Structured so callers (and retry logic) can see *where* the budget went
    instead of parsing a message: ``budget`` is the configured cap,
    ``pivots`` the count reached, ``phase`` which simplex phase was running
    (``1`` or ``2``), ``kernel`` which pivoting kernel was active.  With the
    anti-cycling Bland rule active the budget can only be exhausted by a
    genuinely enormous program or a bug, never by cycling.
    """

    def __init__(self, budget: int, pivots: int, phase: int, kernel: str = ""):
        self.budget = budget
        self.pivots = pivots
        self.phase = phase
        self.kernel = kernel
        where = f" ({kernel} kernel)" if kernel else ""
        super().__init__(
            f"simplex exceeded the pivot budget in phase {phase}{where}: "
            f"{pivots} pivots > budget {budget}"
        )

    def __reduce__(self):
        # Mirror RoundingCertificationError: keep the structure across
        # pickling (sweep workers raise through a process pool).
        return (self.__class__, (self.budget, self.pivots, self.phase, self.kernel))


class TaskBudgetError(ReproError):
    """A sweep task exceeded one of its :class:`~repro.runner.budget.TaskBudget`
    limits.

    Structured so the retry/ledger machinery can act on *which* budget went
    — ``kind`` is ``"wall"`` (driver-enforced deadline), ``"pivots"``
    (simplex pivot budget, converted from :class:`PivotLimitError`) or
    ``"memory"`` (in-worker tracemalloc guard); ``limit`` is the configured
    budget and ``observed`` what the task reached, both in the kind's
    natural unit (seconds / pivots / MiB).
    """

    KINDS = ("wall", "pivots", "memory")

    def __init__(self, kind: str, limit, observed, detail: str = ""):
        if kind not in self.KINDS:
            raise ValueError(f"unknown budget kind {kind!r}")
        self.kind = kind
        self.limit = limit
        self.observed = observed
        self.detail = detail
        unit = {"wall": "s", "pivots": " pivots", "memory": "MiB"}[kind]
        suffix = f" ({detail})" if detail else ""
        super().__init__(
            f"task exceeded its {kind} budget: "
            f"{observed}{unit} > {limit}{unit}{suffix}"
        )

    def __reduce__(self):
        # Keep the structure across pickling (sweep workers raise through a
        # process pool) — the default reduce would re-init with the message.
        return (self.__class__, (self.kind, self.limit, self.observed, self.detail))


class WorkerCrashError(ReproError):
    """A sweep worker process died mid-task (SIGKILL, OOM, segfault).

    Synthesized by the driver when the process pool breaks: the worker
    itself left no exception behind, so this is what the failure ledger
    records for the task(s) charged with the crash.
    """


class RoundingError(ReproError):
    """A rounding procedure could not establish its guarantee."""


class RoundingCertificationError(RoundingError):
    """An integral rounding violated its certified per-row usage limits.

    Raised by :func:`repro.rounding.iterative.iterative_round` when the
    achieved usage of some packing row exceeds the limit the drop rules
    certified for it (``(1+ρ)·b`` for weight-rule and fallback drops).
    ``violations`` maps each offending row name to
    ``(achieved usage, certified limit, original bound)``; ``result`` holds
    the uncertified :class:`~repro.rounding.iterative.IterativeRoundingResult`
    for inspection.
    """

    def __init__(self, violations, result=None):
        self.violations = dict(violations)
        self.result = result
        listed = ", ".join(
            f"{name}: usage {usage} > limit {limit} (b={bound})"
            for name, (usage, limit, bound) in sorted(self.violations.items())
        )
        super().__init__(
            f"rounding violated certified row limits — {listed}"
        )

    def __reduce__(self):
        # args holds the rendered message, so the default reduce would
        # re-call __init__(message) on unpickle and lose the structure —
        # and a sweep worker raising this across the process pool would
        # surface a bogus ValueError instead of the violations.
        return (self.__class__, (self.violations, self.result))
