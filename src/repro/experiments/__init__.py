"""The experiment suite (E01–E15).

The paper is pure theory — no tables or figures — so "reproducing the
evaluation" means turning every quantitative claim (worked examples, bound
statements, approximation guarantees) into a measurable experiment.  Each
module exposes a ``run(...)`` function returning a structured result with a
``table`` attribute; ``benchmarks/bench_e*.py`` times the core solve and
prints the table, and the integration tests assert the paper-predicted
values on small scales.  EXPERIMENTS.md records expected-vs-measured.
"""

from . import (
    e01_example_ii1,
    e02_example_iii1,
    e03_migration_bounds,
    e04_semi_partitioned_validity,
    e05_hierarchical_validity,
    e06_pushdown,
    e07_two_approx_ratio,
    e08_gap_family,
    e09_general_masks,
    e10_memory_model1,
    e11_memory_model2,
    e12_scheduler_comparison,
    e13_integrality,
    e14_scaling,
    e15_schedulability,
)

__all__ = [
    "e01_example_ii1",
    "e02_example_iii1",
    "e03_migration_bounds",
    "e04_semi_partitioned_validity",
    "e05_hierarchical_validity",
    "e06_pushdown",
    "e07_two_approx_ratio",
    "e08_gap_family",
    "e09_general_masks",
    "e10_memory_model1",
    "e11_memory_model2",
    "e12_scheduler_comparison",
    "e13_integrality",
    "e14_scaling",
    "e15_schedulability",
]
