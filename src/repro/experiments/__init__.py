"""The experiment suite (E01–E15).

The paper is pure theory — no tables or figures — so "reproducing the
evaluation" means turning every quantitative claim (worked examples, bound
statements, approximation guarantees) into a measurable experiment.  Each
module exposes a ``run(...)`` function returning a structured result with a
``table`` attribute, and registers an
:class:`~repro.runner.registry.ExperimentSpec` (its id, CLI-scale
parameters, and sweep parameter space) with the experiment registry —
there is no hand-maintained experiment list anywhere; dropping a new
``eNN_*.py`` module into this package is all it takes.

``benchmarks/bench_e*.py`` times the core solve of each experiment and
prints its table, and the integration tests assert the paper-predicted
values at small scale.  EXPERIMENTS.md records expected-vs-measured; its
accumulated tables (E07/E14/E15-style sweeps) are assembled with
``repro report <store>`` from the persistent results store that
``repro sweep`` maintains under ``results/`` — each sweep task is stored
once, keyed by (experiment id, canonical params, code fingerprint), so
tables grow across invocations instead of being re-rendered from scratch.
"""

import importlib as _importlib
import pkgutil as _pkgutil

#: Discovered experiment modules, in id order (e01, e02, …).
__all__ = sorted(
    info.name
    for info in _pkgutil.iter_modules(__path__)
    if info.name[:1] == "e" and info.name[1:3].isdigit()
)

for _name in __all__:
    _importlib.import_module(f"{__name__}.{_name}")
