"""E01 — Example II.1: hierarchical masks beat the unrelated collapse.

Paper claim: the 3-job / 2-machine semi-partitioned instance has makespan 2,
while the corresponding unrelated-machine instance ``Iu`` has optimal
makespan 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..analysis import Table
from ..session import Session
from ..workloads import example_ii1


@dataclass
class E01Result:
    opt_semi: Fraction
    opt_collapse: Fraction
    T_lp: Fraction
    table: Table


def run() -> E01Result:
    """Reproduce Example II.1 and return the paper-vs-measured table."""
    inst = example_ii1()
    session = Session()
    opt_semi = session.solve_exact(inst).optimum
    opt_collapse = session.solve_exact(inst.unrelated_collapse()).optimum
    T_lp = session.minimal_fractional_T(inst)
    table = Table(
        "E01 — Example II.1: semi-partitioned vs unrelated collapse",
        ["quantity", "paper", "measured"],
    )
    table.add_row("opt(I)  (semi-partitioned)", 2, opt_semi)
    table.add_row("opt(Iu) (unrelated collapse)", 3, opt_collapse)
    table.add_row("LP lower bound T*", "≤ 2", T_lp)
    return E01Result(opt_semi, opt_collapse, T_lp, table)

from ..runner.registry import ExperimentSpec, register

SPEC = register(ExperimentSpec(
    id="e01",
    run=run,
))
