"""E02 — Example III.1: the (IP-1) optimum and Algorithm 1's schedule.

Paper claim: the ILP forces ``x_{11} = x_{22} = 1``; the optimal integral
solution has T = 2 with job 3 global, and the paper exhibits a schedule with
job 1 on machine 1 during [1,2), job 2 on machine 2 during [0,1), job 3 on
machine 1 during [0,1) then migrated to machine 2 during [1,2).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..analysis import Table
from ..core.semi_partitioned import schedule_semi_partitioned
from ..schedule.metrics import summarize
from ..schedule.schedule import Schedule
from ..schedule.validator import validate_schedule
from ..workloads import example_ii1, example_ii1_optimal_assignment


@dataclass
class E02Result:
    T: int
    valid: bool
    makespan: Fraction
    migrations_of_global_job: int
    schedule: Schedule
    table: Table


def run() -> E02Result:
    """Run Algorithm 1 on Example III.1's optimal (IP-1) solution."""
    inst = example_ii1()
    assignment, T = example_ii1_optimal_assignment()
    schedule = schedule_semi_partitioned(inst, assignment, T)
    report = validate_schedule(inst, assignment, schedule, T=T)
    summary = summarize(schedule)
    global_segments = schedule.job_segments(2)
    table = Table(
        "E02 — Example III.1: Algorithm 1 on the optimal (IP-1) solution",
        ["quantity", "paper", "measured"],
    )
    table.add_row("optimal T", 2, T)
    table.add_row("schedule valid", "yes", report.valid)
    table.add_row("makespan", 2, report.makespan)
    table.add_row("global job pieces", 2, len(global_segments))
    table.add_row("global job migrations", 1, len({m for m, _s in global_segments}) - 1)
    table.add_row("machine-0 utilization", "1.0", schedule.machine_load(0) / T)
    table.add_row("machine-1 utilization", "1.0", schedule.machine_load(1) / T)
    return E02Result(
        T=T,
        valid=report.valid,
        makespan=report.makespan,
        migrations_of_global_job=len({m for m, _s in global_segments}) - 1,
        schedule=schedule,
        table=table,
    )

from ..runner.registry import ExperimentSpec, register

SPEC = register(ExperimentSpec(
    id="e02",
    run=run,
))
