"""E03 — Proposition III.2: migration and preemption bounds.

Paper claim: Algorithm 1 produces at most ``m − 1`` migrations and at most
``2m − 2`` preemptions + migrations.  We sweep machine counts, generate many
random feasible (IP-1) pairs per count, and record the worst observed counts
in both accountings (processing-order = the paper's; wall-clock = what a
trace observes — the reproduction's E03 finding is that the wall-clock
migration count alone can exceed ``m − 1`` while the combined bound holds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..analysis import Table
from ..core.semi_partitioned import schedule_semi_partitioned
from ..schedule.metrics import (
    total_migrations,
    total_migrations_processing_order,
    total_preemptions_and_migrations,
)
from ..workloads import random_feasible_pair, random_semi_partitioned, rng_from_seed


@dataclass
class E03Row:
    m: int
    trials: int
    max_migrations_processing: int
    bound_migrations: int
    max_wallclock_migrations: int
    max_total_transitions: int
    bound_total: int

    @property
    def within_bounds(self) -> bool:
        return (
            self.max_migrations_processing <= self.bound_migrations
            and self.max_total_transitions <= self.bound_total
        )


@dataclass
class E03Result:
    rows: List[E03Row]
    table: Table


def run(
    machine_counts=(2, 3, 4, 6, 8),
    trials: int = 40,
    n_jobs: int = 12,
    seed: int = 2017,
) -> E03Result:
    """Sweep machine counts; record worst transition counts vs the bounds."""
    rng = rng_from_seed(seed)
    rows: List[E03Row] = []
    for m in machine_counts:
        worst_proc = worst_wall = worst_total = 0
        for _ in range(trials):
            inst = random_semi_partitioned(
                rng, n=n_jobs, m=m, flexible_fraction=0.8, specialist_fraction=0.1
            )
            assignment, T = random_feasible_pair(rng, inst)
            schedule = schedule_semi_partitioned(inst, assignment, T)
            worst_proc = max(worst_proc, total_migrations_processing_order(schedule))
            worst_wall = max(worst_wall, total_migrations(schedule))
            worst_total = max(worst_total, total_preemptions_and_migrations(schedule))
        rows.append(
            E03Row(
                m=m,
                trials=trials,
                max_migrations_processing=worst_proc,
                bound_migrations=m - 1,
                max_wallclock_migrations=worst_wall,
                max_total_transitions=worst_total,
                bound_total=2 * m - 2,
            )
        )
    table = Table(
        "E03 — Proposition III.2: worst observed transition counts (Algorithm 1)",
        [
            "m",
            "trials",
            "max migr (proc order)",
            "bound m-1",
            "max migr (wall clock)",
            "max total",
            "bound 2m-2",
        ],
    )
    for row in rows:
        table.add_row(
            row.m,
            row.trials,
            row.max_migrations_processing,
            row.bound_migrations,
            row.max_wallclock_migrations,
            row.max_total_transitions,
            row.bound_total,
        )
    return E03Result(rows=rows, table=table)

from ..runner.registry import ExperimentSpec, register

#: Sweep surface: one task per machine count so the pool shards that axis.
SPEC = register(ExperimentSpec(
    id="e03",
    run=run,
    cli_params=dict(machine_counts=(2, 3, 4), trials=10, n_jobs=8),
    space=dict(machine_counts=((2,), (3,), (4,), (6,)), trials=(10,), n_jobs=(8,)),
))
