"""E04 — Theorem III.1: Algorithm 1 validity on random feasible inputs.

Paper claim: every feasible (IP-1) solution yields a valid schedule.  We
generate random semi-partitioned instances with feasible pairs and report
the validity rate (must be 100 %), plus scheduler throughput context
(segments, utilization) and a comparison against the greedy planner.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List

from ..analysis import RatioStats, Table
from ..baselines.semi_greedy import solve_semi_greedy
from ..core.semi_partitioned import schedule_semi_partitioned
from ..schedule.validator import validate_schedule
from ..workloads import random_feasible_pair, random_semi_partitioned, rng_from_seed


@dataclass
class E04Row:
    n: int
    m: int
    trials: int
    valid: int
    avg_segments: float
    greedy_vs_assignment_ratio: float


@dataclass
class E04Result:
    rows: List[E04Row]
    table: Table

    @property
    def all_valid(self) -> bool:
        return all(r.valid == r.trials for r in self.rows)


def run(
    shapes=((6, 2), (10, 4), (16, 4), (24, 8)),
    trials: int = 25,
    seed: int = 41,
) -> E04Result:
    """Measure Algorithm 1's validity rate over random feasible pairs."""
    rng = rng_from_seed(seed)
    rows: List[E04Row] = []
    for n, m in shapes:
        valid = 0
        segments: List[int] = []
        ratios: List[Fraction] = []
        for _ in range(trials):
            inst = random_semi_partitioned(rng, n=n, m=m)
            assignment, T = random_feasible_pair(rng, inst)
            schedule = schedule_semi_partitioned(inst, assignment, T)
            report = validate_schedule(inst, assignment, schedule, T=T)
            if report.valid:
                valid += 1
            segments.append(schedule.total_segments())
            greedy = solve_semi_greedy(inst)
            if T > 0:
                ratios.append(greedy.makespan / T)
        stats = RatioStats.of(ratios)
        rows.append(
            E04Row(
                n=n,
                m=m,
                trials=trials,
                valid=valid,
                avg_segments=sum(segments) / len(segments),
                greedy_vs_assignment_ratio=stats.mean,
            )
        )
    table = Table(
        "E04 — Theorem III.1: Algorithm 1 validity rate (must be 100%)",
        ["n", "m", "trials", "valid", "avg segments", "greedy/random-T"],
    )
    for row in rows:
        table.add_row(
            row.n,
            row.m,
            row.trials,
            f"{row.valid}/{row.trials}",
            row.avg_segments,
            row.greedy_vs_assignment_ratio,
        )
    return E04Result(rows=rows, table=table)

from ..runner.registry import ExperimentSpec, register

SPEC = register(ExperimentSpec(
    id="e04",
    run=run,
    cli_params=dict(shapes=((6, 2), (10, 4)), trials=8),
    space=dict(shapes=(((6, 2),), ((10, 4),), ((16, 4),)), trials=(8,)),
))
