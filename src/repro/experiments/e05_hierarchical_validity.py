"""E05 — Theorem IV.3 and Lemmas IV.1/IV.2 on random laminar families.

Paper claim: for any feasible (IP-2) pair, Algorithms 2+3 produce a valid
schedule; phase one keeps every cumulative load ≤ T (Lemma IV.1) and leaves
at most one machine per set shared with ancestors (Lemma IV.2).  The
invariants are asserted inside the implementation — this experiment sweeps
family depths and reports validity plus invariant statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis import Table
from ..core.hierarchical import allocate_loads, schedule_hierarchical
from ..schedule.validator import validate_schedule
from ..workloads import random_feasible_pair, rng_from_seed
from ..workloads.generators import monotone_instance, random_laminar_family


@dataclass
class E05Row:
    m: int
    levels: int
    sets: int
    trials: int
    valid: int
    max_shared_machines: int


@dataclass
class E05Result:
    rows: List[E05Row]
    table: Table

    @property
    def all_valid(self) -> bool:
        return all(r.valid == r.trials for r in self.rows)

    @property
    def lemma_iv2_holds(self) -> bool:
        return all(r.max_shared_machines <= 1 for r in self.rows)


def run(
    machine_counts=(3, 4, 6, 8, 10),
    trials: int = 20,
    n_jobs: int = 12,
    seed: int = 42,
) -> E05Result:
    """Measure Algorithms 2+3 validity and the Lemma IV.1/IV.2 invariants."""
    rng = rng_from_seed(seed)
    rows: List[E05Row] = []
    for m in machine_counts:
        family = random_laminar_family(rng, m, split_probability=0.9)
        inst = monotone_instance(rng, family, n=n_jobs)
        valid = 0
        max_shared = 0
        for _ in range(trials):
            assignment, T = random_feasible_pair(rng, inst)
            allocation = allocate_loads(inst, assignment, T)
            for beta in inst.family.sets:
                shared = allocation.shared_machines(inst.family, beta)
                max_shared = max(max_shared, len(shared))
            schedule = schedule_hierarchical(inst, assignment, T)
            if validate_schedule(inst, assignment, schedule, T=T).valid:
                valid += 1
        rows.append(
            E05Row(
                m=m,
                levels=inst.family.num_levels,
                sets=len(inst.family),
                trials=trials,
                valid=valid,
                max_shared_machines=max_shared,
            )
        )
    table = Table(
        "E05 — Theorem IV.3 / Lemmas IV.1-IV.2: hierarchical scheduler validity",
        ["m", "levels", "|A|", "trials", "valid", "max shared (Lemma IV.2 ≤ 1)"],
    )
    for row in rows:
        table.add_row(
            row.m,
            row.levels,
            row.sets,
            row.trials,
            f"{row.valid}/{row.trials}",
            row.max_shared_machines,
        )
    return E05Result(rows=rows, table=table)

from ..runner.registry import ExperimentSpec, register

SPEC = register(ExperimentSpec(
    id="e05",
    run=run,
    cli_params=dict(machine_counts=(3, 5, 8), trials=8, n_jobs=10),
    space=dict(machine_counts=((3,), (5,), (8,)), trials=(8,), n_jobs=(10,)),
))
