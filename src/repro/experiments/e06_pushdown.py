"""E06 — Lemma V.1: push-down preserves feasibility, support → singletons.

Paper claim: a feasible fractional (IP-3) solution can be rewritten, set by
set, so all weight sits on singletons while staying feasible.  We sweep
family depths and verify feasibility after every elimination plus the final
support shape; the table reports the number of eliminated sets and the mass
moved.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List

from ..analysis import Table
from ..core.assignment import verify_lp
from ..core.programs import feasible_lp_solution, minimal_fractional_T
from ..core.pushdown import push_down, push_down_once
from ..workloads import rng_from_seed
from ..workloads.generators import monotone_instance, random_laminar_family


@dataclass
class E06Row:
    m: int
    levels: int
    nonsingleton_sets: int
    initial_nonsingleton_mass: Fraction
    feasible_after_each_step: bool
    final_on_singletons: bool


@dataclass
class E06Result:
    rows: List[E06Row]
    table: Table

    @property
    def lemma_holds(self) -> bool:
        return all(
            r.feasible_after_each_step and r.final_on_singletons for r in self.rows
        )


def run(
    machine_counts=(3, 4, 6, 8),
    n_jobs: int = 8,
    seed: int = 7,
) -> E06Result:
    """Verify Lemma V.1 step-by-step across random family depths."""
    rng = rng_from_seed(seed)
    rows: List[E06Row] = []
    for m in machine_counts:
        family = random_laminar_family(rng, m, split_probability=0.9)
        inst = monotone_instance(rng, family, n=n_jobs).with_singletons()
        T = minimal_fractional_T(inst)
        x = feasible_lp_solution(inst, T)
        assert x is not None
        mass = sum(
            (v for (alpha, _j), v in x.items() if len(alpha) > 1), Fraction(0)
        )
        feasible_all = True
        current = x
        for eta in inst.family.top_down():
            if len(eta) <= 1:
                continue
            current = push_down_once(inst, current, T, eta)
            if not verify_lp(inst, current, T).feasible:
                feasible_all = False
                break
        final = push_down(inst, x, T)
        rows.append(
            E06Row(
                m=m,
                levels=inst.family.num_levels,
                nonsingleton_sets=sum(1 for a in inst.family.sets if len(a) > 1),
                initial_nonsingleton_mass=mass,
                feasible_after_each_step=feasible_all,
                final_on_singletons=final.supported_on_singletons(),
            )
        )
    table = Table(
        "E06 — Lemma V.1: push-down to singletons preserves LP feasibility",
        [
            "m",
            "levels",
            "non-singleton sets",
            "mass moved",
            "feasible each step",
            "final on singletons",
        ],
    )
    for row in rows:
        table.add_row(
            row.m,
            row.levels,
            row.nonsingleton_sets,
            row.initial_nonsingleton_mass,
            row.feasible_after_each_step,
            row.final_on_singletons,
        )
    return E06Result(rows=rows, table=table)

from ..runner.registry import ExperimentSpec, register

SPEC = register(ExperimentSpec(
    id="e06",
    run=run,
    cli_params=dict(machine_counts=(3, 4, 6), n_jobs=6),
    space=dict(machine_counts=((3,), (4,), (6,)), n_jobs=(6,)),
))
