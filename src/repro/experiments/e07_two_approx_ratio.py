"""E07 — Theorem V.2: empirical quality of the 2-approximation.

Paper claim: the algorithm's makespan is at most ``2·T* ≤ 2·opt``.  We sweep
instance shapes, measure the ratio against the LP lower bound ``T*`` always,
and against the exact optimum on the small shapes where branch-and-bound is
affordable.  The paper's worst case is 2; typical measured ratios are far
below it.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional

from ..analysis import RatioStats, Table
from ..session import Session
from ..workloads import random_hierarchical, rng_from_seed


@dataclass
class E07Row:
    n: int
    m: int
    trials: int
    vs_lp: RatioStats
    vs_opt: Optional[RatioStats]


@dataclass
class E07Result:
    rows: List[E07Row]
    table: Table

    @property
    def bound_holds(self) -> bool:
        return all(r.vs_lp.maximum <= 2.0 + 1e-12 for r in self.rows)


def run(
    shapes=((4, 3), (6, 3), (8, 4), (12, 5)),
    trials: int = 10,
    exact_job_limit: int = 8,
    seed: int = 70,
    backend: str = "exact",
) -> E07Result:
    """Measure 2-approximation ratios vs T* (and vs OPT when affordable)."""
    rng = rng_from_seed(seed)
    session = Session(backend=backend)
    rows: List[E07Row] = []
    for n, m in shapes:
        vs_lp: List[Fraction] = []
        vs_opt: List[Fraction] = []
        for _ in range(trials):
            inst = random_hierarchical(rng, n=n, m=m)
            result = session.two_approximation(inst)
            if result.T_lp > 0:
                vs_lp.append(result.makespan / result.T_lp)
            if n <= exact_job_limit:
                opt = session.solve_exact(inst, upper_bound=result.makespan + 1).optimum
                if opt > 0:
                    vs_opt.append(result.makespan / opt)
        rows.append(
            E07Row(
                n=n,
                m=m,
                trials=trials,
                vs_lp=RatioStats.of(vs_lp),
                vs_opt=RatioStats.of(vs_opt) if vs_opt else None,
            )
        )
    table = Table(
        "E07 — Theorem V.2: approximation ratios (guarantee: ≤ 2 vs T*)",
        ["n", "m", "trials", "mean vs T*", "max vs T*", "mean vs OPT", "max vs OPT"],
    )
    for row in rows:
        table.add_row(
            row.n,
            row.m,
            row.trials,
            row.vs_lp.mean,
            row.vs_lp.maximum,
            row.vs_opt.mean if row.vs_opt else None,
            row.vs_opt.maximum if row.vs_opt else None,
        )
    return E07Result(rows=rows, table=table)

from ..runner.registry import ExperimentSpec, register

#: Sweep surface: one task per shape so the pool shards the shape axis.
SPEC = register(ExperimentSpec(
    id="e07",
    run=run,
    cli_params=dict(shapes=((4, 3), (6, 3), (8, 4)), trials=4),
    space=dict(shapes=(((4, 3),), ((6, 3),), ((8, 4),)), trials=(4,)),
))
