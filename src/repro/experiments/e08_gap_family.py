"""E08 — Example V.1: the integral gap between I and Iu approaches 2.

Paper claim: the n-job family has ``opt(I) = n − 1`` and
``opt(Iu) = 2n − 3``, so the collapse loses a factor ``(2n−3)/(n−1) → 2``.
We also run the 2-approximation on I to show it recovers the migration win
(its makespan stays within 2·T*, far below the collapse's optimum for
large n).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List

from ..analysis import Table
from ..core.approx import two_approximation
from ..core.exact import solve_exact
from ..workloads import example_v1, example_v1_gap


@dataclass
class E08Row:
    n: int
    opt_i: Fraction
    opt_iu: Fraction
    gap: Fraction
    predicted_gap: Fraction
    approx_makespan: Fraction


@dataclass
class E08Result:
    rows: List[E08Row]
    table: Table

    @property
    def matches_paper(self) -> bool:
        return all(
            r.opt_i == r.n - 1 and r.opt_iu == 2 * r.n - 3 and r.gap == r.predicted_gap
            for r in self.rows
        )


def run(sizes=(3, 4, 5, 6, 8, 10, 12)) -> E08Result:
    """Evaluate Example V.1's gap series against the paper's formulas."""
    rows: List[E08Row] = []
    for n in sizes:
        inst = example_v1(n)
        opt_i = solve_exact(inst).optimum
        opt_iu = solve_exact(inst.unrelated_collapse()).optimum
        approx = two_approximation(inst)
        rows.append(
            E08Row(
                n=n,
                opt_i=opt_i,
                opt_iu=opt_iu,
                gap=Fraction(opt_iu, opt_i),
                predicted_gap=example_v1_gap(n),
                approx_makespan=approx.makespan,
            )
        )
    table = Table(
        "E08 — Example V.1: opt(Iu)/opt(I) = (2n-3)/(n-1) → 2",
        ["n", "opt(I)", "paper n-1", "opt(Iu)", "paper 2n-3", "gap", "predicted", "2-approx"],
    )
    for r in rows:
        table.add_row(
            r.n, r.opt_i, r.n - 1, r.opt_iu, 2 * r.n - 3, r.gap, r.predicted_gap,
            r.approx_makespan,
        )
    return E08Result(rows=rows, table=table)

from ..runner.registry import ExperimentSpec, register

SPEC = register(ExperimentSpec(
    id="e08",
    run=run,
    cli_params=dict(sizes=(3, 4, 5, 6, 8)),
    space=dict(sizes=((3, 4, 5), (6, 8))),
))
