"""E09 — Section II: the 8-approximation for general (non-laminar) masks.

Paper claim: collapse → preemptive lower bound → LST gives an
8-approximation.  We generate random crossing (non-laminar) families and
measure the ratio of the achieved makespan to the certified preemptive
lower bound; the guarantee is 8, typical values are near 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis import RatioStats, Table
from ..core.general_masks import GeneralMaskInstance, eight_approximation
from ..workloads import rng_from_seed


def random_crossing_instance(rng, n: int, m: int) -> GeneralMaskInstance:
    """Random non-laminar family: overlapping machine windows + singletons."""
    sets = set()
    for _ in range(max(2, m // 2)):
        start = int(rng.integers(0, m - 1))
        width = int(rng.integers(2, m - start + 1))
        sets.add(frozenset(range(start, start + width)))
    sets.update(frozenset([i]) for i in range(m))
    sets = list(sets)
    processing = {}
    for j in range(n):
        base = int(rng.integers(1, 12))
        row = {alpha: base + len(alpha) * int(rng.integers(0, 3)) for alpha in sets}
        for a in sets:  # lift parents so comparable pairs stay monotone
            for b in sets:
                if a < b and row[a] > row[b]:
                    row[b] = row[a]
        processing[j] = row
    return GeneralMaskInstance(range(m), sets, processing)


@dataclass
class E09Row:
    n: int
    m: int
    trials: int
    laminar_fraction: float
    ratio: RatioStats


@dataclass
class E09Result:
    rows: List[E09Row]
    table: Table

    @property
    def bound_holds(self) -> bool:
        return all(r.ratio.maximum <= 8.0 + 1e-12 for r in self.rows)


def run(
    shapes=((4, 3), (6, 4), (10, 5), (14, 6)),
    trials: int = 12,
    seed: int = 90,
    backend: str = "exact",
) -> E09Result:
    """Measure the 8-approximation's ratio on random crossing families."""
    rng = rng_from_seed(seed)
    rows: List[E09Row] = []
    for n, m in shapes:
        ratios = []
        laminar = 0
        for _ in range(trials):
            gmi = random_crossing_instance(rng, n, m)
            if gmi.is_laminar():
                laminar += 1
            result = eight_approximation(gmi, backend=backend)
            ratios.append(result.ratio_vs_lower_bound)
        rows.append(
            E09Row(
                n=n,
                m=m,
                trials=trials,
                laminar_fraction=laminar / trials,
                ratio=RatioStats.of(ratios),
            )
        )
    table = Table(
        "E09 — Section II 8-approximation on non-laminar masks (guarantee: ≤ 8)",
        ["n", "m", "trials", "laminar frac", "mean ratio", "max ratio"],
    )
    for r in rows:
        table.add_row(r.n, r.m, r.trials, r.laminar_fraction, r.ratio.mean, r.ratio.maximum)
    return E09Result(rows=rows, table=table)

from ..runner.registry import ExperimentSpec, register

SPEC = register(ExperimentSpec(
    id="e09",
    run=run,
    cli_params=dict(shapes=((4, 3), (6, 4)), trials=5),
    space=dict(shapes=(((4, 3),), ((6, 4),)), trials=(5,)),
))
