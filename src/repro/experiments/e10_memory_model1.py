"""E10 — Theorem VI.1: Model 1 bicriteria rounding (3T makespan, 3B memory).

Paper claim: whenever (IP-3)+(7) is LP-feasible at T, iterative rounding
yields a schedule of makespan ≤ 3T using memory ≤ 3B_i everywhere.  We
generate semi-partitioned and clustered instances with random footprints,
find the minimal LP-feasible horizon, round, and record the worst measured
ratios plus how often the droppable-row rule needed its fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List

from ..analysis import RatioStats, Table
from ..core.memory import solve_model1
from ..exceptions import InfeasibleError
from ..schedule.validator import validate_schedule
from ..session import Session
from ..workloads import random_semi_partitioned, rng_from_seed
from ..workloads.generators import monotone_instance
from ..core.laminar import LaminarFamily


@dataclass
class E10Row:
    label: str
    trials: int
    completed: int
    makespan_ratio: RatioStats
    memory_ratio: RatioStats
    fallback_drops: int


@dataclass
class E10Result:
    rows: List[E10Row]
    table: Table

    @property
    def bounds_hold(self) -> bool:
        return all(
            r.makespan_ratio.maximum <= 3.0 + 1e-12
            and r.memory_ratio.maximum <= 3.0 + 1e-12
            for r in self.rows
            if r.completed
        )


def _budgeted_instance(rng, kind: str, n: int, m: int):
    if kind == "semi":
        inst = random_semi_partitioned(rng, n=n, m=m)
    else:
        inst = monotone_instance(rng, LaminarFamily.clustered(m, 2), n=n)
    space = [
        [int(rng.integers(1, 4)) for _ in range(m)] for _ in range(n)
    ]
    # Budgets sized to make memory binding but feasible: roughly the total
    # footprint spread over machines with 50% headroom.
    total = sum(min(row) for row in space)
    per_machine = max(3, (3 * total) // (2 * m))
    budgets = {i: per_machine for i in range(m)}
    return inst, space, budgets


def run(
    shapes=(("semi", 6, 2), ("semi", 8, 4), ("clustered", 8, 4)),
    trials: int = 8,
    seed: int = 100,
    backend: str = "exact",
) -> E10Result:
    """Measure Model 1 bicriteria ratios against the 3x/3x guarantees."""
    rng = rng_from_seed(seed)
    session = Session(backend=backend)
    rows: List[E10Row] = []
    for kind, n, m in shapes:
        mk_ratios = []
        mem_ratios = []
        fallbacks = 0
        completed = 0
        for _ in range(trials):
            inst, space, budgets = _budgeted_instance(rng, kind, n, m)
            try:
                T = session.minimal_model1_T(inst, space, budgets)
                result = solve_model1(inst, space, budgets, T, backend=backend)
            except InfeasibleError:
                continue
            completed += 1
            mk_ratios.append(result.makespan_ratio)
            mem_ratios.append(result.max_memory_ratio)
            fallbacks += result.rounding.fallback_drops
            assert validate_schedule(
                result.instance, result.assignment, result.schedule
            ).valid
        rows.append(
            E10Row(
                label=f"{kind} n={n} m={m}",
                trials=trials,
                completed=completed,
                makespan_ratio=RatioStats.of(mk_ratios),
                memory_ratio=RatioStats.of(mem_ratios),
                fallback_drops=fallbacks,
            )
        )
    table = Table(
        "E10 — Theorem VI.1 (Model 1): measured bicriteria ratios (guarantee ≤ 3)",
        [
            "workload",
            "solved",
            "mean mk/T",
            "max mk/T",
            "mean mem/B",
            "max mem/B",
            "fallback drops",
        ],
    )
    for r in rows:
        table.add_row(
            r.label,
            f"{r.completed}/{r.trials}",
            r.makespan_ratio.mean,
            r.makespan_ratio.maximum,
            r.memory_ratio.mean,
            r.memory_ratio.maximum,
            r.fallback_drops,
        )
    return E10Result(rows=rows, table=table)

from ..runner.registry import ExperimentSpec, register

SPEC = register(ExperimentSpec(
    id="e10",
    run=run,
    cli_params=dict(shapes=(("semi", 6, 2), ("clustered", 6, 4)), trials=3),
    space=dict(shapes=((("semi", 6, 2),), (("clustered", 6, 4),)), trials=(3,)),
))
