"""E11 — Theorem VI.3 / Lemma VI.2: Model 2 bicriteria (σ = 2 + H_k).

Paper claim: with per-level capacities ``µ^h`` and job sizes ≤ 1, the
modified iterative rounding achieves makespan ≤ σ·T and memory ≤ σ·µ^h
with ``σ = 2 + H_k`` (and the tighter ``3 + 1/m`` for two levels).  We
sweep tree depths, record the measured ratios against the σ guarantee, and
count fallback drops (zero on all generated workloads — evidence for the
unproved existence step of Lemma VI.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List

from ..analysis import RatioStats, Table
from ..core.laminar import LaminarFamily
from ..core.memory import model2_rho, solve_model2
from ..exceptions import InfeasibleError
from ..session import Session
from ..workloads import rng_from_seed
from ..workloads.generators import monotone_instance


def _uniform_tree(m: int, arity: int) -> LaminarFamily:
    """A uniform tree over m machines with the given branching."""
    sets = [frozenset(range(m))]
    level = [list(range(m))]
    while len(level[0]) > 1:
        next_level = []
        for block in level:
            size = max(1, len(block) // arity)
            for start in range(0, len(block), size):
                piece = block[start : start + size]
                if piece:
                    next_level.append(piece)
                    sets.append(frozenset(piece))
        if all(len(b) == 1 for b in next_level):
            break
        level = next_level
    for i in range(m):
        sets.append(frozenset([i]))
    return LaminarFamily(range(m), set(sets))


@dataclass
class E11Row:
    m: int
    k: int
    sigma: Fraction
    trials: int
    completed: int
    makespan_ratio: RatioStats
    memory_ratio: RatioStats
    fallback_drops: int


@dataclass
class E11Result:
    rows: List[E11Row]
    table: Table

    @property
    def bounds_hold(self) -> bool:
        return all(
            r.makespan_ratio.maximum <= float(r.sigma) + 1e-12
            and r.memory_ratio.maximum <= float(r.sigma) + 1e-12
            for r in self.rows
            if r.completed
        )


def run(
    configs=((2, 2, 4), (4, 2, 6), (8, 2, 8)),
    trials: int = 6,
    mu: Fraction = Fraction(2),
    seed: int = 110,
    backend: str = "exact",
) -> E11Result:
    """*configs* entries are ``(m, arity, n_jobs)``."""
    rng = rng_from_seed(seed)
    session = Session(backend=backend)
    rows: List[E11Row] = []
    for m, arity, n in configs:
        family = _uniform_tree(m, arity)
        mk_ratios = []
        mem_ratios = []
        fallbacks = 0
        completed = 0
        inst = monotone_instance(rng, family, n=n)
        sigma = 1 + model2_rho(inst)
        for _ in range(trials):
            inst = monotone_instance(rng, family, n=n)
            sizes = [Fraction(int(rng.integers(1, 5)), 8) for _ in range(n)]
            try:
                T = session.minimal_model2_T(inst, sizes, mu)
                result = solve_model2(inst, sizes, mu, T, backend=backend)
            except InfeasibleError:
                continue
            completed += 1
            mk_ratios.append(result.makespan_ratio)
            mem_ratios.append(result.max_memory_ratio)
            fallbacks += result.rounding.fallback_drops
        rows.append(
            E11Row(
                m=m,
                k=inst.family.num_levels,
                sigma=sigma,
                trials=trials,
                completed=completed,
                makespan_ratio=RatioStats.of(mk_ratios),
                memory_ratio=RatioStats.of(mem_ratios),
                fallback_drops=fallbacks,
            )
        )
    table = Table(
        "E11 — Theorem VI.3 (Model 2): measured ratios vs σ = 2 + H_k",
        ["m", "k", "σ", "solved", "max mk/T", "max mem/cap", "fallback drops"],
    )
    for r in rows:
        table.add_row(
            r.m,
            r.k,
            r.sigma,
            f"{r.completed}/{r.trials}",
            r.makespan_ratio.maximum,
            r.memory_ratio.maximum,
            r.fallback_drops,
        )
    return E11Result(rows=rows, table=table)

from ..runner.registry import ExperimentSpec, register

SPEC = register(ExperimentSpec(
    id="e11",
    run=run,
    cli_params=dict(configs=((2, 2, 4), (4, 2, 6)), trials=3),
    space=dict(configs=(((2, 2, 4),), ((4, 2, 6),)), trials=(3,)),
))
