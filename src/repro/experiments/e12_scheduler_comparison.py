"""E12 — the introduction's motivation: scheduler classes on SMP-CMP topologies.

The paper motivates hierarchical scheduling with the SMP-CMP cluster
architecture: global scheduling pays full migration overhead, partitioned
scheduling cannot balance load, clustered/semi-partitioned/hierarchical
interpolate.  We generate workloads whose mask overheads are *exactly* the
topology's migration-cost budgets and compare the scheduler classes of
Section II on the same instances, reporting average makespans normalized to
the hierarchical result — the "who wins where" shape the introduction
predicts (hierarchical never loses; global suffers on migration-averse
mixes; partitioned suffers on imbalanced specialists).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional

from ..analysis import Table
from ..baselines.restrictions import SCHEDULER_CLASSES, compare_scheduler_classes
from ..simulation import CostModel, Topology, simulate
from ..workloads import rng_from_seed
from ..workloads.generators import instance_from_topology


@dataclass
class E12Row:
    workload: str
    normalized: Dict[str, Optional[float]]
    """Mean makespan per class divided by the hierarchical mean."""

    infeasible: Dict[str, int]
    migrations: float
    """Mean simulated migrations in the hierarchical schedule."""


@dataclass
class E12Result:
    rows: List[E12Row]
    table: Table

    @property
    def hierarchy_never_loses(self) -> bool:
        return all(
            ratio is None or ratio >= 1.0 - 1e-9
            for row in self.rows
            for cls, ratio in row.normalized.items()
        )


def run(
    topology: Optional[Topology] = None,
    workloads=(
        ("balanced mix", dict(flexible_fraction=0.5, specialist_fraction=0.25)),
        ("migration-averse", dict(flexible_fraction=0.1, specialist_fraction=0.1)),
        ("specialists", dict(flexible_fraction=0.2, specialist_fraction=0.7)),
        ("flexible", dict(flexible_fraction=0.9, specialist_fraction=0.0)),
        # Saturated coarse grains (n = m+1 near-identical flexible jobs):
        # partitioning must stack two large jobs on one core while the
        # migrating classes split them — the Example II.1 phenomenon.
        (
            "coarse saturated",
            dict(
                flexible_fraction=1.0,
                specialist_fraction=0.0,
                base_range=(40, 44),
                n_override="m+1",
            ),
        ),
    ),
    n_jobs: int = 10,
    trials: int = 4,
    seed: int = 120,
    backend: str = "exact",
    method: str = "exact",
) -> E12Result:
    """``method="exact"`` (default) solves each class optimally — required
    to exhibit the migration advantage, since the 2-approximation's LST step
    always returns singleton masks (Example V.1's loss)."""
    topo = topology or Topology.smp_cmp(nodes=2, chips_per_node=1, cores_per_chip=2)
    cm = CostModel.xeon_like()
    rng = rng_from_seed(seed)
    rows: List[E12Row] = []
    for label, params in workloads:
        params = dict(params)
        n_override = params.pop("n_override", None)
        n_here = topo.m + 1 if n_override == "m+1" else n_jobs
        sums: Dict[str, Fraction] = {c: Fraction(0) for c in SCHEDULER_CLASSES}
        counts: Dict[str, int] = {c: 0 for c in SCHEDULER_CLASSES}
        infeasible: Dict[str, int] = {c: 0 for c in SCHEDULER_CLASSES}
        migration_total = 0
        for _ in range(trials):
            inst, _base = instance_from_topology(rng, topo, cm, n=n_here, **params)
            comparison = compare_scheduler_classes(
                inst, backend=backend, method=method
            )
            for cls, outcome in comparison.items():
                if outcome.feasible:
                    sums[cls] += outcome.makespan
                    counts[cls] += 1
                else:
                    infeasible[cls] += 1
            hier = comparison["hierarchical"]
            if hier.feasible and hier.schedule is not None:
                trace = simulate(hier.schedule, topo, cm)
                migration_total += trace.total_migrations
        hier_mean = (
            sums["hierarchical"] / counts["hierarchical"]
            if counts["hierarchical"]
            else None
        )
        normalized: Dict[str, Optional[float]] = {}
        for cls in SCHEDULER_CLASSES:
            if counts[cls] and hier_mean:
                normalized[cls] = float((sums[cls] / counts[cls]) / hier_mean)
            else:
                normalized[cls] = None
        rows.append(
            E12Row(
                workload=label,
                normalized=normalized,
                infeasible=infeasible,
                migrations=migration_total / trials,
            )
        )
    table = Table(
        "E12 — scheduler classes on an SMP-CMP topology "
        "(mean makespan / hierarchical; lower is better, 1.0 = hierarchical)",
        ["workload"] + list(SCHEDULER_CLASSES) + ["hier migrations"],
    )
    for row in rows:
        cells = [row.workload]
        for cls in SCHEDULER_CLASSES:
            value = row.normalized[cls]
            if value is None:
                cells.append(f"inf×{row.infeasible[cls]}")
            else:
                cells.append(f"{value:.3f}")
        cells.append(row.migrations)
        table.add_row(*cells)
    return E12Result(rows=rows, table=table)

from ..runner.registry import ExperimentSpec, register

SPEC = register(ExperimentSpec(
    id="e12",
    run=run,
    cli_params=dict(n_jobs=5, trials=2),
    space=dict(n_jobs=(5,), trials=(2,)),
))
