"""E13 — integrality behaviour around Proposition II.1.

The paper proves 3/2-hardness (no constant below 3/2 unless P=NP) and uses
LP relaxations whose integrality gap governs the rounding quality.  This
experiment measures:

* the empirical ILP/LP gap ``opt / T*`` on random hierarchical instances
  (Theorem V.2 caps it at 2), and
* the classic ``R||Cmax`` gap family, where one length-m job forces
  ``opt / T* → 2`` as m grows, showing the LP bound is tight for the
  rounding the paper builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List

from ..analysis import RatioStats, Table
from ..core.exact import solve_exact
from ..core.programs import minimal_fractional_T
from ..workloads import lp_gap_instance, random_hierarchical, rng_from_seed


@dataclass
class E13Result:
    random_gap: RatioStats
    gap_family_rows: List[tuple]
    table: Table

    @property
    def gaps_at_most_2(self) -> bool:
        ok_random = self.random_gap.maximum <= 2.0 + 1e-12
        ok_family = all(row[3] <= 2 for row in self.gap_family_rows)
        return ok_random and ok_family


def run(
    trials: int = 15,
    n: int = 5,
    m: int = 3,
    gap_ms=(2, 3, 4, 5),
    seed: int = 130,
) -> E13Result:
    """Measure ILP/LP gaps on random instances and the R||Cmax family."""
    rng = rng_from_seed(seed)
    gaps: List[Fraction] = []
    for _ in range(trials):
        inst = random_hierarchical(rng, n=n, m=m)
        T_star = minimal_fractional_T(inst)
        opt = solve_exact(inst).optimum
        if T_star > 0:
            gaps.append(opt / T_star)
    family_rows = []
    for gm in gap_ms:
        inst = lp_gap_instance(gm)
        T_star = minimal_fractional_T(inst)
        opt = solve_exact(inst).optimum
        family_rows.append((gm, T_star, opt, opt / T_star))
    stats = RatioStats.of(gaps)
    table = Table(
        "E13 — integrality gaps: random instances and the R||Cmax gap family",
        ["row", "T* (LP)", "opt (ILP)", "opt/T*"],
    )
    table.add_row(f"random n={n} m={m} (mean of {stats.count})", None, None, stats.mean)
    table.add_row("random (max)", None, None, stats.maximum)
    for gm, T_star, opt, gap in family_rows:
        table.add_row(f"gap family m={gm}", T_star, opt, gap)
    return E13Result(random_gap=stats, gap_family_rows=family_rows, table=table)

from ..runner.registry import ExperimentSpec, register

SPEC = register(ExperimentSpec(
    id="e13",
    run=run,
    cli_params=dict(trials=8, gap_ms=(2, 3, 4)),
    space=dict(trials=(8,), gap_ms=((2, 3, 4),)),
))
