"""E14 — runtime scaling of the Theorem V.2 pipeline.

The paper claims polynomial time; this experiment records wall-clock of the
full 2-approximation (binary search + LP + rounding + scheduling) across
instance sizes and both LP backends, so regressions in the solver stack are
visible.  (pytest-benchmark provides the statistically careful timing; the
table here reports single-run times for orientation.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

from ..analysis import Table
from ..obs.trace import suspended
from ..session import Session
from ..workloads import random_hierarchical, rng_from_seed


@dataclass
class E14Row:
    n: int
    m: int
    backend: str
    seconds: float
    ratio_vs_lp: float


@dataclass
class E14Result:
    rows: List[E14Row]
    table: Table


def run(
    shapes=((6, 3), (10, 4), (16, 6), (24, 8)),
    backends=("exact", "hybrid", "scipy"),
    seed: int = 140,
) -> E14Result:
    """Time the full 2-approximation across sizes and LP backends."""
    rows: List[E14Row] = []
    for n, m in shapes:
        for backend in backends:
            # cache=False: a timing experiment must measure the cold solve —
            # a warm cache hit would report the store's read latency instead.
            session = Session(backend=backend, cache=False)
            rng = rng_from_seed(seed)  # same instances per backend
            inst = random_hierarchical(rng, n=n, m=m)
            # suspended(): the timed region must not pay span bookkeeping —
            # E14 stays trace-off by design even under `--trace`.
            with suspended():
                start = time.perf_counter()
                result = session.two_approximation(inst)
                elapsed = time.perf_counter() - start
            rows.append(
                E14Row(
                    n=n,
                    m=m,
                    backend=backend,
                    seconds=elapsed,
                    ratio_vs_lp=float(result.ratio_vs_lp),
                )
            )
    table = Table(
        "E14 — 2-approximation runtime scaling",
        ["n", "m", "backend", "seconds", "ratio vs T*"],
    )
    for r in rows:
        table.add_row(r.n, r.m, r.backend, r.seconds, r.ratio_vs_lp)
    return E14Result(rows=rows, table=table)

from ..runner.registry import ExperimentSpec, register

#: ``seconds`` is wall-clock — masked in the sweep store (the executor
#: records its own per-task timing in the index), keeping payloads
#: bit-reproducible across ``--jobs`` settings and machines.
SPEC = register(ExperimentSpec(
    id="e14",
    run=run,
    cli_params=dict(shapes=((6, 3), (10, 4))),
    space=dict(shapes=(((6, 3),), ((10, 4),))),
    volatile_columns=("seconds",),
))
