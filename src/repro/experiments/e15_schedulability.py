"""E15 — schedulability study (the classic semi-partitioned-literature figure).

The semi-partitioned line of work the paper builds on (Bastoni–Brandenburg–
Anderson) evaluates schedulers by *acceptance ratio*: the fraction of random
workloads schedulable within a fixed horizon, plotted against system
utilization.  We reproduce that figure's shape for the paper's scheduler
classes: for each utilization level, generate workloads with total cheapest
volume ``u·m·T_ref`` and ask each class for a schedule with makespan
≤ ``T_ref`` (exact restricted solve, Theorem IV.3 makes the check precise).

Expected shape (and the paper's motivation): partitioned acceptance decays
first as bin-packing fragmentation bites; semi-partitioned and hierarchical
stay near 1 until utilization ≈ 1; global depends on the migration overhead
mix.

Reproducibility contract: each utilization level draws its workloads from a
generator derived via ``derive_seed(seed, u)``, so every row is a pure
function of ``(seed, u, trials)`` — a sweep task running one level
(``space=dict(utilizations=((0.6,), (0.9,)))``) produces byte-identical
rows to a serial run over all levels.  Acceptance ratios are exact
``Fraction(accepted, trials)`` values that round-trip through Table
payloads unchanged; solver blowups (:class:`~repro.exceptions.SolverError`)
are tabulated per row instead of being silently miscounted as "not
schedulable".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List

from ..analysis import Table
from ..baselines.restrictions import SCHEDULER_CLASSES, exact_schedulable_within
from ..core.laminar import LaminarFamily
from ..exceptions import SolverError
from ..workloads import derive_seed, rng_from_seed
from ..workloads.generators import utilization_workload


def _schedulable_within(instance, scheduler_class: str, T_ref: int) -> bool:
    """Exact decision within the class; SolverError propagates to run()."""
    return exact_schedulable_within(instance, scheduler_class, T_ref)


@dataclass
class E15Row:
    utilization: float
    acceptance: Dict[str, Fraction]
    solver_errors: Dict[str, int] = field(default_factory=dict)
    """Per class: trials the exact search abandoned (node limit) — excluded
    from the acceptance numerator, reported instead of hidden."""


@dataclass
class E15Result:
    rows: List[E15Row]
    table: Table

    def acceptance_curve(self, scheduler_class: str) -> List[Fraction]:
        return [row.acceptance[scheduler_class] for row in self.rows]

    @property
    def hierarchy_dominates(self) -> bool:
        """Hierarchical acceptance ≥ every other class at every level.

        Exact comparison — acceptance ratios are Fractions, so no epsilon.
        """
        for row in self.rows:
            top = row.acceptance["hierarchical"]
            if any(row.acceptance[c] > top for c in SCHEDULER_CLASSES):
                return False
        return True


def run(
    utilizations=(0.5, 0.7, 0.8, 0.9, 0.95, 1.0),
    m: int = 4,
    cluster_size: int = 2,
    T_ref: int = 40,
    trials: int = 10,
    seed: int = 150,
) -> E15Result:
    """Acceptance ratio vs utilization for each scheduler class."""
    family = LaminarFamily.clustered(m, cluster_size)
    rows: List[E15Row] = []
    for u in utilizations:
        # One generator per level, derived from (seed, u): rows are pure
        # functions of their own parameters, so sweep-assembled curves
        # match serial runs bit-for-bit.
        rng = rng_from_seed(derive_seed(seed, u))
        accepted = {c: 0 for c in SCHEDULER_CLASSES}
        errors = {c: 0 for c in SCHEDULER_CLASSES}
        for _ in range(trials):
            inst = utilization_workload(rng, family, u, T_ref)
            for c in SCHEDULER_CLASSES:
                try:
                    if _schedulable_within(inst, c, T_ref):
                        accepted[c] += 1
                except SolverError:
                    errors[c] += 1
        rows.append(
            E15Row(
                utilization=u,
                acceptance={
                    c: Fraction(accepted[c], trials) for c in SCHEDULER_CLASSES
                },
                solver_errors={c: errors[c] for c in SCHEDULER_CLASSES},
            )
        )
    table = Table(
        f"E15 — acceptance ratio vs utilization (m={m}, clusters of "
        f"{cluster_size}, T_ref={T_ref})",
        ["utilization"] + list(SCHEDULER_CLASSES) + ["solver errors"],
    )
    for row in rows:
        table.add_row(
            row.utilization,
            *(row.acceptance[c] for c in SCHEDULER_CLASSES),
            sum(row.solver_errors.values()),
        )
    return E15Result(rows=rows, table=table)

from ..runner.registry import ExperimentSpec, register

#: Sweep surface: one task per utilization level — the acceptance-ratio
#: curve accumulates across invocations in the results store.
SPEC = register(ExperimentSpec(
    id="e15",
    run=run,
    cli_params=dict(utilizations=(0.6, 0.9), m=4, T_ref=20, trials=3),
    space=dict(utilizations=((0.6,), (0.9,)), m=(4,), T_ref=(20,), trials=(3,)),
))
