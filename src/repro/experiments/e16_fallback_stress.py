"""E16 — phase diagram of the hardened Lemma VI.2 fallback.

The residual-aware drop rule is *complete* when the declared ρ is at least
the column-sum bound (see :mod:`repro.rounding.iterative`), so the fallback
drop — the one step the paper defers to its unavailable full version — is
reachable only when ρ is declared below the column bound, e.g. by applying
a theorem's ρ formula outside its hypotheses.  This experiment sweeps that
mis-declaration on the adversarial odd-cycle programs of
:func:`repro.workloads.families.fallback_stress_program` and records the
three phases the self-certification separates:

* ``rho_scale ≥ 3/4`` (default geometry): certified rules fire, no
  fallback, violation ≤ 1 + ρ trivially;
* ``1/4 ≤ rho_scale < 3/4``: the fallback fires (``fallback_drops > 0``)
  yet the achieved usage still passes the (1+ρ) certification — the
  lemma's bound survives off the happy path;
* ``rho_scale < 1/4``: the rounding genuinely breaks the declared bound
  and :class:`~repro.exceptions.RoundingCertificationError` reports the
  per-row violations instead of silently returning.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional

from ..analysis import Table
from ..exceptions import RoundingCertificationError
from ..rounding.iterative import iterative_round
from ..workloads.families import fallback_stress_program


@dataclass
class E16Row:
    cycle: int
    rho_percent: int
    true_rho: Fraction
    declared_rho: Fraction
    fallback_drops: Optional[int]
    dropped_rows: Optional[int]
    max_violation: Optional[Fraction]
    limit: Fraction
    """The certification threshold ``1 + declared ρ`` (as a ratio)."""

    certified: bool
    violations: int
    """Rows whose usage exceeded their certified limit (0 when certified)."""


@dataclass
class E16Result:
    rows: List[E16Row]
    table: Table

    @property
    def fallback_exercised(self) -> bool:
        """Some sweep point drove the fallback with a certified outcome."""
        return any(r.certified and (r.fallback_drops or 0) > 0 for r in self.rows)

    @property
    def certified_rows_within_limit(self) -> bool:
        return all(
            r.max_violation is not None and r.max_violation <= r.limit
            for r in self.rows
            if r.certified
        )


def run(
    cycles=(3, 5),
    rho_percents=(100, 50, 20),
    jitter_denom: int = 16,
    backend: str = "exact",
    seed: int = 160,
) -> E16Result:
    """Round the stress programs at each declared-ρ scale and certify."""
    rows: List[E16Row] = []
    for cycle in cycles:
        for percent in rho_percents:
            program = fallback_stress_program(
                cycle=cycle,
                rho_scale=Fraction(percent, 100),
                bound_jitter_denom=jitter_denom,
                seed=seed + cycle,
            )
            try:
                result = iterative_round(
                    program.groups,
                    program.rows,
                    costs=program.costs,
                    rho=program.rho,
                    backend=backend,
                )
                certified, violations = True, 0
            except RoundingCertificationError as exc:
                result, certified, violations = exc.result, False, len(exc.violations)
            rows.append(
                E16Row(
                    cycle=cycle,
                    rho_percent=percent,
                    true_rho=program.true_rho,
                    declared_rho=program.rho,
                    fallback_drops=result.fallback_drops if result else None,
                    dropped_rows=len(result.dropped_rows) if result else None,
                    max_violation=result.max_violation_ratio if result else None,
                    limit=1 + program.rho,
                    certified=certified,
                    violations=violations,
                )
            )
    table = Table(
        "E16 — Lemma VI.2 fallback stress: declared ρ vs certification",
        [
            "cycle", "ρ %", "true ρ", "declared ρ", "fallback", "dropped",
            "max usage/b", "limit 1+ρ", "certified", "violations",
        ],
    )
    for r in rows:
        table.add_row(
            r.cycle, r.rho_percent, r.true_rho, r.declared_rho,
            r.fallback_drops, r.dropped_rows, r.max_violation, r.limit,
            r.certified, r.violations,
        )
    return E16Result(rows=rows, table=table)


from ..runner.registry import ExperimentSpec, register

#: One sweep task per cycle length; the ρ-scale phase diagram accumulates
#: in the results store and `repro report` reassembles it.
SPEC = register(ExperimentSpec(
    id="e16",
    run=run,
    cli_params=dict(cycles=(3,), rho_percents=(100, 50, 20)),
    space=dict(
        cycles=((3,), (5,)),
        rho_percents=((100, 50, 20),),
        jitter_denom=(16,),
    ),
))
