"""E17 — topology sensitivity: scheduler classes across the platform zoo.

The paper's SMP-CMP motivation (and the semi-partitioned literature it
builds on) says conclusions flip with platform shape: a family that is
friendly on a flat machine bank can be hostile on a NUMA pair of nodes.
This experiment crosses the workload families of
:mod:`repro.workloads.families` with the topology zoo (flat, clustered,
SMP-CMP, NUMA-annotated, heterogeneous speeds, asymmetric trees) and runs
each scheduler class of Section II on the same instances via family
restriction — ``hierarchical`` uses the full Theorem V.2 pipeline, i.e.
the push-down + LST rounding path.

Reported per (topology, family, class): the mean makespan normalized by
the LP lower bound T* of the *full* hierarchy (≤ 2 is the Theorem V.2
guarantee for the hierarchical row), the count of instances the class
cannot schedule at all (restriction starves a job), and — for the
hierarchical schedule — the migration overhead priced by tier *and* NUMA
distance (:func:`repro.schedule.metrics.priced_migration_cost` with
:meth:`repro.simulation.costs.CostModel.numa_like`), the scalar that makes
"same tree, different distances" topologies distinguishable.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional

from ..analysis import Table
from ..baselines.restrictions import solve_restricted
from ..core.programs import minimal_fractional_T
from ..schedule.metrics import priced_migration_cost
from ..simulation.costs import CostModel
from ..workloads import rng_from_seed
from ..workloads.families import make_instance, make_topology
from ..exceptions import InfeasibleError, SolverError

#: The classes compared (clustered is added automatically when the
#: topology has an intermediate tier).
DEFAULT_CLASSES = ("partitioned", "global", "semi", "hierarchical")


@dataclass
class E17Row:
    topology: str
    family: str
    ratio_vs_lp: Dict[str, Optional[Fraction]]
    """Mean makespan / T* per scheduler class (None = never feasible)."""

    infeasible: Dict[str, int]
    priced_migrations: Optional[Fraction]
    """Mean distance-priced migration overhead of the hierarchical runs."""


@dataclass
class E17Result:
    rows: List[E17Row]
    table: Table

    @property
    def hierarchical_within_guarantee(self) -> bool:
        """Every hierarchical mean stays within Theorem V.2's 2×T*."""
        return all(
            row.ratio_vs_lp.get("hierarchical") is None
            or row.ratio_vs_lp["hierarchical"] <= 2
            for row in self.rows
        )

    def ratio(self, topology: str, family: str, scheduler: str) -> Optional[Fraction]:
        for row in self.rows:
            if row.topology == topology and row.family == family:
                return row.ratio_vs_lp.get(scheduler)
        return None


def run(
    topologies=("flat4", "clustered4x2", "numa2x2", "hetero2x2"),
    families=("aligned", "misaligned"),
    n: int = 6,
    trials: int = 2,
    classes=DEFAULT_CLASSES,
    backend: str = "hybrid",
    method: str = "exact",
    seed: int = 170,
) -> E17Result:
    """Cross the topology zoo with the workload families and compare.

    ``method="exact"`` (default) solves each class optimally over its
    restricted masks — required to exhibit the migration advantage, since
    the 2-approximation's LST step always returns singleton masks;
    ``method="approx"`` runs the scalable push-down pipeline instead.
    """
    cost_model = CostModel.numa_like()
    rows: List[E17Row] = []
    for topo_name in topologies:
        topology = make_topology(topo_name)
        class_list = list(classes)
        if "clustered" not in class_list and any(
            1 < len(a) < topology.m for a in topology.family.sets
        ):
            class_list.append("clustered")
        for family_name in families:
            rng = rng_from_seed(seed)
            sums: Dict[str, Fraction] = {c: Fraction(0) for c in class_list}
            feasible: Dict[str, int] = {c: 0 for c in class_list}
            infeasible: Dict[str, int] = {c: 0 for c in class_list}
            priced_sum, priced_count = Fraction(0), 0
            for _trial in range(trials):
                instance = make_instance(family_name, rng, topology, n)
                try:
                    t_lp = minimal_fractional_T(
                        instance.with_singletons(), backend=backend
                    )
                except (InfeasibleError, SolverError):
                    continue
                for cls in class_list:
                    outcome = solve_restricted(
                        instance, cls, backend=backend, method=method
                    )
                    if not outcome.feasible or outcome.makespan is None:
                        infeasible[cls] += 1
                        continue
                    feasible[cls] += 1
                    if t_lp > 0:
                        sums[cls] += outcome.makespan / t_lp
                    if cls == "hierarchical" and outcome.schedule is not None:
                        priced_sum += priced_migration_cost(
                            outcome.schedule, topology, cost_model
                        )
                        priced_count += 1
            rows.append(
                E17Row(
                    topology=topo_name,
                    family=family_name,
                    ratio_vs_lp={
                        c: (sums[c] / feasible[c]) if feasible[c] else None
                        for c in class_list
                    },
                    infeasible=infeasible,
                    priced_migrations=(
                        priced_sum / priced_count if priced_count else None
                    ),
                )
            )
    headers = ["topology", "family"]
    all_classes = sorted({c for row in rows for c in row.ratio_vs_lp})
    headers += [f"{c}/T*" for c in all_classes]
    headers += ["infeasible", "priced migr"]
    table = Table("E17 — scheduler classes across the topology zoo", headers)
    for row in rows:
        table.add_row(
            row.topology,
            row.family,
            *(row.ratio_vs_lp.get(c) for c in all_classes),
            sum(row.infeasible.values()),
            row.priced_migrations,
        )
    return E17Result(rows=rows, table=table)


from ..runner.registry import ExperimentSpec, register

#: One sweep task per topology; families accumulate columns per task so a
#: full zoo sweep is `repro sweep e17 --params "families=('aligned','misaligned','heavy_tailed','density')"`.
SPEC = register(ExperimentSpec(
    id="e17",
    run=run,
    cli_params=dict(
        topologies=("flat4", "numa2x2"), families=("aligned",), trials=1
    ),
    space=dict(
        topologies=(("flat4",), ("clustered4x2",), ("numa2x2",), ("hetero2x2",)),
        families=(("aligned", "misaligned", "heterogeneous"),),
        n=(6,),
        trials=(2,),
    ),
))
