"""E18 — online arrivals: admission-driven execution of the template schedules.

The paper's algorithms build one wrap-around template per planning window;
the semi-partitioned literature it draws on (Bastoni–Brandenburg–Anderson
for the evaluation discipline, the sporadic task model for the arrival
side) asks the *online* question: when job instances actually arrive —
synchronously, in bursts, with release jitter, sporadically — how do
response times, deadline misses and migration overhead behave as the
workload's utilization grows?

Per (topology, arrival family, utilization) this experiment

1. draws a volume-controlled workload (the E15 generator) and builds the
   hierarchical wrap-around template for the fixed planning window
   ``T_ref`` (the E15 witness machinery: ``find_assignment_within`` +
   Algorithms 2+3) — at high utilization the template genuinely wraps
   past ``T`` and migrates inside non-singleton masks,
2. generates the family's arrival stream over ``windows`` windows with
   period ``T = T_ref`` and implicit deadlines scaled by
   ``deadline_factor``,
3. runs the admission layer (:func:`repro.simulation.admission.admit`) and
   reports exact miss ratios, response times normalized by ``T``, leftover
   backlog and distance-priced migration overhead.

The emergent phase diagram: at low utilization templates rarely wrap, so
implicit deadlines hold; as utilization → 1 more jobs wrap past ``T`` and
complete in the next window — response ``> T`` — so the miss ratio climbs
exactly where offline schedulability (E15) still says "fits".  Offsets,
jitter and sporadic slack add the waiting-time term on top.  A
``deadline_factor`` of 2 absorbs the wrap (the constructions never need
more than one extra window), which the sweep exposes as a miss cliff
moving, not vanishing.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..analysis import Table
from ..exceptions import SolverError
from ..schedule.validator import check_releases
from ..session import Session
from ..simulation.admission import admit, witness_within
from ..simulation.costs import CostModel
from ..workloads import derive_seed, rng_from_seed
from ..workloads.families import make_arrivals, make_topology
from ..workloads.generators import utilization_workload

Num = Union[int, float, Fraction]


@dataclass
class E18Row:
    topology: str
    family: str
    utilization: float
    trials: int
    infeasible: int
    """Trials whose workload has no hierarchical witness within ``T_ref``
    (no template to admit into — offline inadmissibility)."""

    solver_errors: int
    """Trials the exact witness search abandoned (node limit) — reported
    separately, never miscounted as offline inadmissibility."""

    admitted: int
    misses: int
    miss_ratio: Optional[Fraction]
    mean_response_over_T: Optional[Fraction]
    max_response_over_T: Optional[Fraction]
    pending: int
    """Instances still queued when the simulation horizon ended."""

    max_backlog: int
    priced_overhead: Fraction
    """Total distance-priced migration overhead across admitted instances."""

    schedulable_trials: int
    """Trials with zero misses and zero leftover backlog."""


@dataclass
class E18Result:
    rows: List[E18Row]
    table: Table

    def row(self, topology: str, family: str, utilization: float) -> Optional[E18Row]:
        for r in self.rows:
            if (
                r.topology == topology
                and r.family == family
                and abs(r.utilization - utilization) < 1e-12
            ):
                return r
        return None

    @property
    def miss_ratio_monotone_in_utilization(self) -> bool:
        """Within each (topology, family), misses never decrease with u
        (the phase-diagram shape; ties allowed)."""
        groups: Dict[Tuple[str, str], List[E18Row]] = {}
        for r in self.rows:
            groups.setdefault((r.topology, r.family), []).append(r)
        for rows in groups.values():
            rows = sorted(rows, key=lambda r: r.utilization)
            ratios = [r.miss_ratio for r in rows if r.miss_ratio is not None]
            if any(b < a for a, b in zip(ratios, ratios[1:])):
                return False
        return True


def run(
    utilizations: Sequence[float] = (0.5, 0.8, 0.95),
    arrival_families: Sequence[str] = ("synchronous", "jittered"),
    topologies: Sequence[str] = ("flat4",),
    windows: int = 4,
    T_ref: int = 12,
    trials: int = 2,
    deadline_factor: Num = 1,
    seed: int = 180,
    prefilter: bool = False,
) -> E18Result:
    """Sweep utilization × arrival family × topology through admission.

    Every trial's template is the hierarchical wrap-around schedule of a
    fresh volume-controlled workload for the fixed window ``T_ref``;
    release feasibility of the materialized timeline is re-checked exactly
    on every trial (a violation would be a bug, so it raises rather than
    being tabulated).

    With *prefilter* the analytic RTA engine screens each workload before
    the exact witness search (:func:`repro.simulation.admission.
    witness_within`): rows are provably identical either way — the
    pre-filter only rejects workloads the search would also reject — so
    the flag trades nothing but wall-clock (pinned by the test suite).
    """
    if windows < 2:
        raise ValueError("need ≥ 2 windows for a meaningful admission run")
    deadline_factor = Fraction(deadline_factor)
    if deadline_factor <= 0:
        raise ValueError("deadline_factor must be positive")
    cost_model = CostModel.numa_like()
    session = Session()  # templates cache across repeat runs with --cache
    rows: List[E18Row] = []
    for topo_name in topologies:
        topology = make_topology(topo_name)
        for family_name in arrival_families:
            for u in utilizations:
                admitted = misses = pending = backlog = 0
                schedulable_trials = infeasible = solver_errors = 0
                response_sum = Fraction(0)
                response_max: Optional[Fraction] = None
                overhead = Fraction(0)
                done_trials = 0
                for trial in range(trials):
                    trial_seed = derive_seed(
                        seed, "e18", topo_name, family_name, str(u), trial
                    )
                    rng = rng_from_seed(trial_seed)
                    instance = utilization_workload(
                        rng, topology.family, u, T_ref
                    )
                    ext = instance.with_singletons()
                    try:
                        witness = witness_within(
                            ext, T_ref, prefilter=prefilter
                        )
                    except SolverError:
                        # "The search gave up" is not "infeasible": count
                        # it separately so overload curves stay honest.
                        solver_errors += 1
                        continue
                    if witness is None:
                        infeasible += 1
                        continue
                    template = session.template(ext, witness, T_ref)
                    T = template.T
                    model = make_arrivals(
                        family_name, trial_seed, instance.n, T
                    )
                    if deadline_factor != 1:
                        # Scale implicit deadlines uniformly: rebuild each
                        # arrival with the stretched relative deadline.
                        stream = [
                            type(a)(
                                job=a.job,
                                index=a.index,
                                release=a.release,
                                deadline=a.release
                                + deadline_factor * (a.deadline - a.release),
                            )
                            for a in model.arrivals_until(windows * T)
                        ]
                    else:
                        stream = model.arrivals_until(windows * T)
                    result = admit(
                        template, stream, windows,
                        topology=topology, cost_model=cost_model,
                    )
                    violations = check_releases(
                        result.schedule, result.releases()
                    )
                    if violations:  # pragma: no cover - would be a bug
                        raise AssertionError(
                            f"admission broke release feasibility: {violations[0]}"
                        )
                    done_trials += 1
                    admitted += len(result.admitted)
                    misses += result.miss_count
                    pending += len(result.pending)
                    backlog = max(backlog, result.max_backlog)
                    if result.schedulable:
                        schedulable_trials += 1
                    for inst in result.admitted:
                        scaled = inst.response_time / T
                        response_sum += scaled
                        if response_max is None or scaled > response_max:
                            response_max = scaled
                        overhead += inst.priced_overhead
                rows.append(
                    E18Row(
                        topology=topo_name,
                        family=family_name,
                        utilization=float(u),
                        trials=done_trials,
                        infeasible=infeasible,
                        solver_errors=solver_errors,
                        admitted=admitted,
                        misses=misses,
                        miss_ratio=(
                            Fraction(misses, admitted) if admitted else None
                        ),
                        mean_response_over_T=(
                            response_sum / admitted if admitted else None
                        ),
                        max_response_over_T=response_max,
                        pending=pending,
                        max_backlog=backlog,
                        priced_overhead=overhead,
                        schedulable_trials=schedulable_trials,
                    )
                )
    table = Table(
        "E18 — online arrivals: miss ratio / response under admission",
        [
            "topology", "family", "utilization", "infeasible",
            "solver errors", "admitted", "misses", "miss ratio",
            "mean resp/T", "max resp/T", "pending", "backlog",
            "priced overhead", "schedulable",
        ],
    )
    for r in rows:
        table.add_row(
            r.topology, r.family, r.utilization, r.infeasible,
            r.solver_errors, r.admitted, r.misses, r.miss_ratio,
            r.mean_response_over_T, r.max_response_over_T, r.pending,
            r.max_backlog, r.priced_overhead,
            f"{r.schedulable_trials}/{r.trials}",
        )
    return E18Result(rows=rows, table=table)


from ..runner.registry import ExperimentSpec, register

#: One sweep task per (arrival-family group, topology); the utilization axis
#: accumulates inside each task, so `repro sweep e18 --jobs 2` splits the
#: zoo across workers and `repro report` reassembles the phase diagram.
SPEC = register(ExperimentSpec(
    id="e18",
    run=run,
    cli_params=dict(
        utilizations=(0.6, 0.95),
        arrival_families=("synchronous", "jittered"),
        topologies=("flat4",),
        trials=1,
    ),
    space=dict(
        utilizations=((0.5, 0.8, 0.95),),
        arrival_families=(
            ("synchronous", "jittered"),
            ("bursty", "harmonic"),
            ("sporadic",),
        ),
        topologies=(("flat4",), ("clustered4x2",)),
        windows=(4,),
        trials=(2,),
    ),
))
