"""E19 — analytic bounds vs exact truth: the phase diagram of decidability.

The RTA engine (:mod:`repro.rta`) answers schedulability in polynomial time
with three-valued verdicts; the exact branch-and-bound
(:func:`repro.baselines.restrictions.exact_schedulable_within`) answers it
completely.  This experiment sweeps utilization × scheduler class ×
topology and measures **where the analytic bounds decide** — the
tightness phase diagram:

* at low utilization the constructive side (FFD / semi-federated packing)
  finds a witness almost always → SCHEDULABLE everywhere;
* past utilization 1 the demand bounds refute almost always →
  UNSCHEDULABLE everywhere;
* the interesting band is the boundary, where greedy packing fails but no
  necessary bound is violated → UNKNOWN, the honest gap the exact solve
  (or simulation) still has to cover.

Soundness is *enforced*, not measured: every decided verdict is compared
against the exact solve and any disagreement raises
:class:`~repro.exceptions.AnalyticSoundnessError` — a sweep that completes
is a machine-checked soundness proof over its whole grid, which is how CI
pins the acceptance criterion.

Reproducibility: the workload of trial *t* is derived from
``(seed, "e19", topology, u, t)`` — independent of the scheduler-class
axis — so every class judges the *same* workloads and a sweep task
covering a subset of classes produces rows byte-identical to the serial
run.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis import Table
from ..baselines.restrictions import SCHEDULER_CLASSES, exact_schedulable_within
from ..exceptions import AnalyticSoundnessError
from ..rta import SCHEDULABLE, UNKNOWN, UNSCHEDULABLE, analytic_schedulable
from ..workloads import derive_seed, rng_from_seed
from ..workloads.families import make_topology
from ..workloads.generators import utilization_workload


@dataclass
class E19Row:
    topology: str
    scheduler_class: str
    utilization: float
    trials: int
    exact_schedulable: int
    """Trials the exact solve accepts — the ground truth."""

    analytic_schedulable: int
    analytic_unschedulable: int
    unknown: int
    decided: Fraction
    """``(SCHEDULABLE + UNSCHEDULABLE) / trials`` — bound tightness."""


@dataclass
class E19Result:
    rows: List[E19Row]
    table: Table

    def row(
        self, topology: str, scheduler_class: str, utilization: float
    ) -> Optional[E19Row]:
        for r in self.rows:
            if (
                r.topology == topology
                and r.scheduler_class == scheduler_class
                and abs(r.utilization - utilization) < 1e-12
            ):
                return r
        return None

    def decided_rate(self, scheduler_class: str) -> List[Fraction]:
        return [
            r.decided for r in self.rows if r.scheduler_class == scheduler_class
        ]

    @property
    def unknown_total(self) -> int:
        return sum(r.unknown for r in self.rows)

    @property
    def sound(self) -> bool:
        """Always ``True`` for a result that exists: disagreement raises."""
        return True


def run(
    utilizations: Sequence[float] = (0.5, 0.8, 0.95),
    scheduler_classes: Sequence[str] = SCHEDULER_CLASSES,
    topologies: Sequence[str] = ("flat4",),
    T_ref: int = 20,
    trials: int = 3,
    seed: int = 190,
) -> E19Result:
    """Analytic verdict vs exact truth over the sweep grid.

    Raises :class:`AnalyticSoundnessError` on the first decided verdict
    that disagrees with the exact solve.
    """
    counts: Dict[Tuple[str, str, float], Dict[str, int]] = {}
    for topo_name in topologies:
        topology = make_topology(topo_name)
        for u in utilizations:
            for trial in range(trials):
                # Workload seed excludes the class axis: every class (and
                # every class-subset sweep task) judges identical draws.
                trial_seed = derive_seed(seed, "e19", topo_name, str(u), trial)
                inst = utilization_workload(
                    rng_from_seed(trial_seed), topology.family, u, T_ref
                )
                for cls in scheduler_classes:
                    verdict = analytic_schedulable(inst, cls, T_ref)
                    truth = exact_schedulable_within(inst, cls, T_ref)
                    if verdict.status == SCHEDULABLE and not truth:
                        raise AnalyticSoundnessError(
                            f"analytic SCHEDULABLE but exact refutes: "
                            f"{topo_name}/{cls}/u={u}/trial={trial} "
                            f"({verdict.reason})"
                        )
                    if verdict.status == UNSCHEDULABLE and truth:
                        raise AnalyticSoundnessError(
                            f"analytic UNSCHEDULABLE but exact witnesses: "
                            f"{topo_name}/{cls}/u={u}/trial={trial} "
                            f"({verdict.reason})"
                        )
                    c = counts.setdefault(
                        (topo_name, cls, float(u)),
                        {"exact": 0, "s": 0, "u": 0, "unk": 0},
                    )
                    c["exact"] += 1 if truth else 0
                    c["s"] += 1 if verdict.status == SCHEDULABLE else 0
                    c["u"] += 1 if verdict.status == UNSCHEDULABLE else 0
                    c["unk"] += 1 if verdict.status == UNKNOWN else 0

    rows: List[E19Row] = []
    for topo_name in topologies:
        for cls in scheduler_classes:
            for u in utilizations:
                c = counts[(topo_name, cls, float(u))]
                rows.append(
                    E19Row(
                        topology=topo_name,
                        scheduler_class=cls,
                        utilization=float(u),
                        trials=trials,
                        exact_schedulable=c["exact"],
                        analytic_schedulable=c["s"],
                        analytic_unschedulable=c["u"],
                        unknown=c["unk"],
                        decided=Fraction(c["s"] + c["u"], trials),
                    )
                )
    table = Table(
        f"E19 — analytic verdicts vs exact truth (T_ref={T_ref}, "
        f"soundness-checked on every trial)",
        [
            "topology", "class", "utilization", "trials", "exact yes",
            "SCHED", "UNSCHED", "UNKNOWN", "decided",
        ],
    )
    for r in rows:
        table.add_row(
            r.topology, r.scheduler_class, r.utilization, r.trials,
            r.exact_schedulable, r.analytic_schedulable,
            r.analytic_unschedulable, r.unknown, r.decided,
        )
    return E19Result(rows=rows, table=table)


from ..runner.registry import ExperimentSpec, register

#: Sweep surface: (class group) × (topology) tasks; the utilization axis
#: accumulates inside each task.  Workload seeds are class-independent, so
#: the sharded rows equal the serial ones byte-for-byte.
SPEC = register(ExperimentSpec(
    id="e19",
    run=run,
    cli_params=dict(
        utilizations=(0.6, 0.95),
        scheduler_classes=("global", "partitioned", "hierarchical"),
        topologies=("flat4",),
        trials=2,
    ),
    space=dict(
        utilizations=((0.5, 0.8, 0.95),),
        scheduler_classes=(
            ("global", "partitioned"),
            ("semi", "clustered", "hierarchical"),
        ),
        topologies=(("flat4",), ("clustered4x2",)),
        T_ref=(20,),
        trials=(3,),
    ),
))
