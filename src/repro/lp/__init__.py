"""LP/ILP substrate: model builder, exact simplex kernels, scipy + hybrid backends, B&B.

Two exact pivoting kernels share one contract (see
:func:`~repro.lp.simplex.solve_standard`): the dense fraction-free
``tableau`` and the factorized-basis ``revised`` simplex (the default).
"""

from .basis import LUBasis
from .branch_and_bound import BnBResult, solve_binary_ilp
from .certificates import farkas_certifies
from .hybrid import HAVE_SCIPY, solve_standard_hybrid
from .model import LinearProgram, LPSolution, Row
from .revised import PRICINGS, solve_standard_revised
from .simplex import (
    KERNELS,
    SimplexResult,
    get_default_kernel,
    get_default_pricing,
    set_default_kernel,
    set_default_pricing,
    solve_standard,
)
from .solve import BACKENDS, feasible_point, feasible_point_rows, is_feasible, solve_lp
from .stats import SolverStats, collect_stats
from .warm import WarmState

if HAVE_SCIPY:
    from .scipy_backend import solve_standard_float
else:  # pragma: no cover - scipy is present in CI images
    solve_standard_float = None  # type: ignore[assignment]

__all__ = [
    "BACKENDS",
    "BnBResult",
    "KERNELS",
    "LPSolution",
    "LUBasis",
    "LinearProgram",
    "PRICINGS",
    "Row",
    "SimplexResult",
    "SolverStats",
    "WarmState",
    "collect_stats",
    "farkas_certifies",
    "feasible_point",
    "feasible_point_rows",
    "get_default_kernel",
    "get_default_pricing",
    "is_feasible",
    "set_default_kernel",
    "set_default_pricing",
    "solve_binary_ilp",
    "solve_lp",
    "solve_standard",
    "solve_standard_float",
    "solve_standard_hybrid",
    "solve_standard_revised",
]
