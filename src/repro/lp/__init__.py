"""LP/ILP substrate: model builder, exact simplex, scipy backend, B&B."""

from .branch_and_bound import BnBResult, solve_binary_ilp
from .model import LinearProgram, LPSolution, Row
from .scipy_backend import solve_standard_float
from .simplex import SimplexResult, solve_standard
from .solve import is_feasible, solve_lp

__all__ = [
    "BnBResult",
    "LPSolution",
    "LinearProgram",
    "Row",
    "SimplexResult",
    "is_feasible",
    "solve_binary_ilp",
    "solve_lp",
    "solve_standard",
    "solve_standard_float",
]
