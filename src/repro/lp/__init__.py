"""LP/ILP substrate: model builder, exact simplex, scipy + hybrid backends, B&B."""

from .branch_and_bound import BnBResult, solve_binary_ilp
from .hybrid import HAVE_SCIPY, solve_standard_hybrid
from .model import LinearProgram, LPSolution, Row
from .simplex import SimplexResult, solve_standard
from .solve import BACKENDS, feasible_point, is_feasible, solve_lp

if HAVE_SCIPY:
    from .scipy_backend import solve_standard_float
else:  # pragma: no cover - scipy is present in CI images
    solve_standard_float = None  # type: ignore[assignment]

__all__ = [
    "BACKENDS",
    "BnBResult",
    "LPSolution",
    "LinearProgram",
    "Row",
    "SimplexResult",
    "feasible_point",
    "is_feasible",
    "solve_binary_ilp",
    "solve_lp",
    "solve_standard",
    "solve_standard_float",
    "solve_standard_hybrid",
]
