"""Fraction-free factorized-basis kernel for the revised exact simplex.

The dense tableau of :mod:`repro.lp.simplex` updates **every** column on
every pivot — ``O(rows·cols)`` big-integer work per pivot, even though a
simplex iteration only ever reads one entering column and one cost row.
The revised simplex (:mod:`repro.lp.revised`) instead maintains a
factorization of the *basis* alone; per-pivot work drops to ``O(rows²)``
plus the sparse pricing of candidate columns.

Representation
--------------
:class:`LUBasis` keeps the basis inverse in Edmonds' integer-preserving
form, the same arithmetic lrs uses for the full tableau:

    B⁻¹ = W / den,         W integer (rows² entries),  den > 0

where ``den = |det(B)|`` in the row-scaled integer system and ``W`` is the
correspondingly scaled adjugate.  Every entry of ``W`` (and of the
transformed right-hand side ``W·b``) is a minor of the original constraint
matrix — the classical Bareiss/Edmonds subdeterminant identity — so the
rank-one pivot update

    W'[i][j] = (W[i][j]·α_r − α_i·W[r][j]) / den        (i ≠ r)

divides **exactly**: no rational normalization, no gcd scans, and the
representation after any pivot sequence is *canonical* (it depends only on
the current basis, not on the path taken to reach it).

Sparse rows
-----------
``W`` starts as the identity — one nonzero per row — and a pivot touches a
row's support only through the pivot row's support, so early in a solve
(and throughout phase 1, where the basis is mostly slacks/artificials)
most rows stay very sparse.  Each row of ``W`` is therefore stored as a
**dict of nonzeros** until its fill exceeds :data:`DENSIFY_THRESHOLD` of
the dimension, at which point it converts to a dense list for good (dense
scans of small integer lists beat dict overhead once fill is substantial,
and converting back and forth would churn).  ``ftran``/``btran``/
``row_dot``/``update`` all branch per row, so their cost tracks nnz while
sparsity lasts; ``sparse_btrans`` counts btran calls answered entirely
from sparse rows (surfaced through :class:`~repro.lp.stats.SolverStats`).

Rows are **copy-on-write**: every operation replaces row objects instead
of mutating them, so :meth:`clone` is ``O(rows)`` (it shares row objects)
— the cheap primitive behind verbatim basis reuse across solves (see
:mod:`repro.lp.warm`).

Operations
----------
``ftran(a)``
    Forward transform: the den-scaled tableau column ``W·a`` of a sparse
    column ``a`` — ``O(rows · nnz(a))``.
``btran(c_B)``
    Backward transform: the den-scaled dual row ``c_Bᵀ·W`` of a sparse
    basic-cost vector — ``O(nnz(c_B) · nnz(rows))``.
``update(r, α)``
    Rank-one basis exchange given the already-ftran'd entering column α,
    pivoting on row ``r`` — ``O(Σ_i nnz(row_i))``, at worst ``O(rows²)``.
``factorize(columns, b)``
    Fraction-free elimination of an explicit column set straight into a
    factorized basis (Gauss–Jordan realized as ``rows`` ftran+update
    steps, i.e. the LU elimination with the L-factor applied through).
    This is how the hybrid backend certifies a float candidate — and how a
    carried :class:`~repro.lp.warm.WarmState` whose structure witness does
    not match is re-anchored: the labelled basis is factorized
    **directly** — ``O(rows³)``, independent of the total column count —
    instead of being pushed in through ``O(rows)`` full-tableau pivots of
    ``O(rows·cols)`` each.

Because the arithmetic is exact, periodic refactorization is *not* needed
for numerical hygiene (there is no drift to flush, and a from-scratch
factorization reproduces ``W`` and ``den`` bit-for-bit — the representation
is canonical).  :meth:`refactorize` exists for the structural occasions
where the basis is *given* rather than evolved — crash starts from a float
candidate, re-anchoring a basis carried across two neighbouring LPs of a
binary search — and as an invariant self-check; the driver counts every
call in :class:`~repro.lp.stats.SolverStats`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

from .._fraction import bigint
from ..exceptions import SolverError

#: A row of ``W``: dict-of-nonzeros while sparse, dense list once filled.
Row = Union[Dict[int, int], List[int]]

#: Fill fraction above which a sparse row converts to a dense list (and
#: stays dense).  Dict iteration costs ~3× a list scan per element in
#: CPython, so the crossover sits near 1/3.
DENSIFY_THRESHOLD = 0.34


class LUBasis:
    """Integer-preserving factorized basis inverse (see module docstring).

    ``inv`` holds ``W`` row-major (sparse dict rows or dense list rows);
    ``rhs`` holds the transformed right-hand side ``W·b`` (updated in
    lockstep with ``W`` so the current basic values are always
    ``rhs[i] / den``); ``den > 0`` is maintained as an invariant so sign
    tests read directly off the integers.
    """

    __slots__ = (
        "m", "den", "inv", "rhs", "updates", "refactorizations",
        "sparse_btrans", "_dense_at",
    )

    def __init__(self, m: int, b: Sequence[int]):
        if len(b) != m:
            raise SolverError("rhs length must match the basis dimension")
        one = bigint(1)
        self.m = m
        self.den = one
        self.inv: List[Row] = [{i: one} for i in range(m)]
        self.rhs: List[int] = [bigint(v) for v in b]
        self.updates = 0
        self.refactorizations = 0
        #: btran calls answered entirely from sparse rows.
        self.sparse_btrans = 0
        # Densify once fill crosses the threshold; precomputed per instance.
        self._dense_at = max(2, int(DENSIFY_THRESHOLD * m) + 1)

    # ------------------------------------------------------------------
    # Cheap structural copies (copy-on-write rows)
    # ------------------------------------------------------------------

    def clone(self) -> "LUBasis":
        """``O(m)`` copy sharing row objects (rows are copy-on-write)."""
        dup = LUBasis.__new__(LUBasis)
        dup.m = self.m
        dup.den = self.den
        dup.inv = list(self.inv)
        dup.rhs = list(self.rhs)
        dup.updates = 0
        dup.refactorizations = 0
        dup.sparse_btrans = 0
        dup._dense_at = self._dense_at
        return dup

    def rebind(self, b: Sequence[int]) -> "LUBasis":
        """Clone with ``rhs`` recomputed as ``W·b`` — ``O(Σ nnz(row))``.

        The primitive behind verbatim basis reuse: the same factorized
        ``W`` anchored to a new right-hand side (only sound when the basis
        columns themselves are unchanged — the caller vouches via the
        :class:`~repro.lp.warm.WarmState` structure token).
        """
        if len(b) != self.m:
            raise SolverError("rhs length must match the basis dimension")
        dup = self.clone()
        rhs: List[int] = []
        for row in self.inv:
            s = bigint(0)
            if type(row) is dict:
                for k, w in row.items():
                    v = b[k]
                    if v:
                        s += w * v
            else:
                for k, v in enumerate(b):
                    if v:
                        w = row[k]
                        if w:
                            s += w * v
            rhs.append(s)
        dup.rhs = rhs
        return dup

    # ------------------------------------------------------------------
    # Exact solves
    # ------------------------------------------------------------------

    def ftran(self, col: Mapping[int, int]) -> List[int]:
        """``W·a`` for a sparse column *a* — the den-scaled tableau column."""
        items = [(k, v) for k, v in col.items() if v]
        cdict = dict(items)
        cget = cdict.get
        nitems = len(items)
        zero = bigint(0)
        out = []
        for row in self.inv:
            s = zero
            if type(row) is dict:
                # Dot over the intersection: iterate whichever side is
                # smaller — deep in a sparse factorization rows often hold
                # fewer nonzeros than the incoming column.
                if len(row) < nitems:
                    for k, w in row.items():
                        v = cget(k)
                        if v is not None:
                            s += w * v
                else:
                    get = row.get
                    for k, v in items:
                        w = get(k)
                        if w is not None:
                            s += w * v
            else:
                for k, v in items:
                    w = row[k]
                    if w:
                        s += w * v
            out.append(s)
        return out

    def btran(self, basic_costs: Mapping[int, int]) -> List[int]:
        """``c_Bᵀ·W`` for a sparse basic-cost vector — den-scaled duals."""
        out = [bigint(0)] * self.m
        all_sparse = True
        for i, c in basic_costs.items():
            if c == 0:
                continue
            row = self.inv[i]
            if type(row) is dict:
                for j, w in row.items():
                    out[j] += c * w
            else:
                all_sparse = False
                for j in range(self.m):
                    w = row[j]
                    if w:
                        out[j] += c * w
        if all_sparse:
            self.sparse_btrans += 1
        return out

    # ------------------------------------------------------------------
    # Rank-one update
    # ------------------------------------------------------------------

    def update(self, row: int, alpha: Sequence[int]) -> None:
        """Basis exchange pivoting on ``(row, alpha[row])``.

        *alpha* is the entering column's forward transform (``ftran``
        output).  Exactly the Edmonds tableau pivot restricted to the
        ``W | rhs`` block; divisions are exact by the minor identity.
        Row objects are replaced, never mutated (copy-on-write for
        :meth:`clone`).
        """
        piv = alpha[row]
        if piv == 0:
            raise SolverError("zero pivot element in basis update")
        den = self.den
        m = self.m
        dense_at = self._dense_at
        inv, rhs = self.inv, self.rhs
        piv_row = inv[row]
        piv_sparse = type(piv_row) is dict
        piv_rhs = rhs[row]
        for i in range(m):
            if i == row:
                continue
            f = alpha[i]
            w_row = inv[i]
            w_sparse = type(w_row) is dict
            if f == 0:
                if piv != den:
                    if w_sparse:
                        inv[i] = {j: w * piv // den for j, w in w_row.items()}
                    else:
                        inv[i] = [w * piv // den if w else 0 for w in w_row]
                    rhs[i] = rhs[i] * piv // den
            else:
                if w_sparse and piv_sparse:
                    acc: Dict[int, int] = {j: w * piv for j, w in w_row.items()}
                    get = acc.get
                    zero = bigint(0)
                    for j, p in piv_row.items():
                        acc[j] = get(j, zero) - f * p
                    new_row: Row = {}
                    for j, v in acc.items():
                        if v:
                            new_row[j] = v // den
                    if len(new_row) >= dense_at:
                        dense = [0] * m
                        for j, v in new_row.items():
                            dense[j] = v
                        new_row = dense
                    inv[i] = new_row
                else:
                    wr = w_row if not w_sparse else _to_dense(w_row, m)
                    pr = piv_row if not piv_sparse else _to_dense(piv_row, m)
                    inv[i] = [
                        (w * piv - f * p) // den for w, p in zip(wr, pr)
                    ]
                rhs[i] = (rhs[i] * piv - f * piv_rhs) // den
        if piv < 0:
            # Keep den > 0 so feasibility tests read off rhs signs directly.
            self.den = -piv
            self.inv = [
                {j: -w for j, w in r.items()} if type(r) is dict
                else [-w for w in r]
                for r in inv
            ]
            self.rhs = [-v for v in rhs]
        else:
            self.den = piv
        self.updates += 1

    # ------------------------------------------------------------------
    # Factorization of an explicit basis
    # ------------------------------------------------------------------

    @classmethod
    def factorize(
        cls,
        m: int,
        columns: Sequence[Mapping[int, int]],
        b: Sequence[int],
    ) -> Optional["LUBasis"]:
        """Factorize an explicit set of ``m`` columns, or ``None`` if singular.

        Fraction-free elimination: each column is forward-transformed
        against the partial factorization and pivoted into the first still
        unclaimed row with a non-zero transformed entry (deterministic; any
        non-zero choice is exact).  ``O(m³)`` total.
        """
        if len(columns) != m:
            return None
        basis = cls(m, b)
        claimed = [False] * m
        for col in columns:
            alpha = basis.ftran(col)
            row = next(
                (r for r in range(m) if not claimed[r] and alpha[r] != 0), None
            )
            if row is None:
                return None  # linearly dependent on the columns placed so far
            basis.update(row, alpha)
            claimed[row] = True
        return basis

    def refactorize(
        self, columns: Sequence[Mapping[int, int]], b: Sequence[int]
    ) -> bool:
        """Rebuild this factorization from scratch off *columns*.

        Returns ``False`` (state unchanged) when the columns are singular.
        With exact arithmetic the rebuilt ``W``/``den`` equal the updated
        ones whenever *columns* is the basis the updates evolved — the
        canonical-representation property — so this is used to (re)anchor a
        basis that came from *outside* the update path, and as a self-check.
        """
        fresh = self.factorize(self.m, columns, b)
        if fresh is None:
            return False
        self.den = fresh.den
        self.inv = fresh.inv
        self.rhs = fresh.rhs
        self.refactorizations += 1
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def row_dot(self, row: int, col: Mapping[int, int]) -> int:
        """Single transformed entry ``(W·a)[row]`` — ``O(nnz(a))``."""
        inv_row = self.inv[row]
        if type(inv_row) is dict:
            get = inv_row.get
            s = bigint(0)
            for k, v in col.items():
                if v:
                    w = get(k)
                    if w is not None:
                        s += w * v
            return s
        return sum(inv_row[k] * v for k, v in col.items() if v)

    def row_items(self, row: int):
        """Nonzero ``(col, value)`` pairs of ``W[row]`` in arbitrary order."""
        inv_row = self.inv[row]
        if type(inv_row) is dict:
            return list(inv_row.items())
        return [(j, w) for j, w in enumerate(inv_row) if w]

    def row_density(self, row: int) -> float:
        """Fill fraction of a row (1.0 for dense-converted rows)."""
        inv_row = self.inv[row]
        if type(inv_row) is dict:
            return len(inv_row) / self.m if self.m else 0.0
        return 1.0

    def is_feasible_dictionary(self) -> bool:
        """Whether the current basic values are all non-negative."""
        return all(v >= 0 for v in self.rhs)


def _to_dense(row: Dict[int, int], m: int) -> List[int]:
    out = [0] * m
    for j, w in row.items():
        out[j] = w
    return out
