"""Fraction-free factorized-basis kernel for the revised exact simplex.

The dense tableau of :mod:`repro.lp.simplex` updates **every** column on
every pivot — ``O(rows·cols)`` big-integer work per pivot, even though a
simplex iteration only ever reads one entering column and one cost row.
The revised simplex (:mod:`repro.lp.revised`) instead maintains a
factorization of the *basis* alone; per-pivot work drops to ``O(rows²)``
plus the sparse pricing of candidate columns.

Representation
--------------
:class:`LUBasis` keeps the basis inverse in Edmonds' integer-preserving
form, the same arithmetic lrs uses for the full tableau:

    B⁻¹ = W / den,         W integer (rows² entries),  den > 0

where ``den = |det(B)|`` in the row-scaled integer system and ``W`` is the
correspondingly scaled adjugate.  Every entry of ``W`` (and of the
transformed right-hand side ``W·b``) is a minor of the original constraint
matrix — the classical Bareiss/Edmonds subdeterminant identity — so the
rank-one pivot update

    W'[i][j] = (W[i][j]·α_r − α_i·W[r][j]) / den        (i ≠ r)

divides **exactly**: no rational normalization, no gcd scans, and the
representation after any pivot sequence is *canonical* (it depends only on
the current basis, not on the path taken to reach it).

Operations
----------
``ftran(a)``
    Forward transform: the den-scaled tableau column ``W·a`` of a sparse
    column ``a`` — ``O(rows · nnz(a))``.
``btran(c_B)``
    Backward transform: the den-scaled dual row ``c_Bᵀ·W`` of a sparse
    basic-cost vector — ``O(nnz(c_B) · rows)``.
``update(r, α)``
    Rank-one basis exchange given the already-ftran'd entering column α,
    pivoting on row ``r`` — ``O(rows²)``.
``factorize(columns, b)``
    Fraction-free elimination of an explicit column set straight into a
    factorized basis (Gauss–Jordan realized as ``rows`` ftran+update
    steps, i.e. the LU elimination with the L-factor applied through).
    This is how the hybrid backend certifies a float candidate: the
    candidate's claimed basis is factorized **directly** — ``O(rows³)``,
    independent of the total column count — instead of being pushed in
    through ``O(rows)`` full-tableau pivots of ``O(rows·cols)`` each.

Because the arithmetic is exact, periodic refactorization is *not* needed
for numerical hygiene (there is no drift to flush, and a from-scratch
factorization reproduces ``W`` and ``den`` bit-for-bit — the representation
is canonical).  :meth:`refactorize` exists for the structural occasions
where the basis is *given* rather than evolved — crash starts from a float
candidate, re-anchoring a basis carried across two neighbouring LPs of a
binary search — and as an invariant self-check; the driver counts every
call in :class:`~repro.lp.stats.SolverStats`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..exceptions import SolverError


class LUBasis:
    """Integer-preserving factorized basis inverse (see module docstring).

    ``inv`` holds ``W`` row-major; ``rhs`` holds the transformed right-hand
    side ``W·b`` (updated in lockstep with ``W`` so the current basic values
    are always ``rhs[i] / den``); ``den > 0`` is maintained as an invariant
    so sign tests read directly off the integers.
    """

    __slots__ = ("m", "den", "inv", "rhs", "updates", "refactorizations")

    def __init__(self, m: int, b: Sequence[int]):
        if len(b) != m:
            raise SolverError("rhs length must match the basis dimension")
        self.m = m
        self.den = 1
        self.inv: List[List[int]] = [
            [1 if i == j else 0 for j in range(m)] for i in range(m)
        ]
        self.rhs: List[int] = list(b)
        self.updates = 0
        self.refactorizations = 0

    # ------------------------------------------------------------------
    # Exact solves
    # ------------------------------------------------------------------

    def ftran(self, col: Mapping[int, int]) -> List[int]:
        """``W·a`` for a sparse column *a* — the den-scaled tableau column."""
        items = [(k, v) for k, v in col.items() if v]
        out = []
        for row in self.inv:
            s = 0
            for k, v in items:
                w = row[k]
                if w:
                    s += w * v
            out.append(s)
        return out

    def btran(self, basic_costs: Mapping[int, int]) -> List[int]:
        """``c_Bᵀ·W`` for a sparse basic-cost vector — den-scaled duals."""
        out = [0] * self.m
        for i, c in basic_costs.items():
            if c == 0:
                continue
            row = self.inv[i]
            for j in range(self.m):
                w = row[j]
                if w:
                    out[j] += c * w
        return out

    # ------------------------------------------------------------------
    # Rank-one update
    # ------------------------------------------------------------------

    def update(self, row: int, alpha: Sequence[int]) -> None:
        """Basis exchange pivoting on ``(row, alpha[row])``.

        *alpha* is the entering column's forward transform (``ftran``
        output).  Exactly the Edmonds tableau pivot restricted to the
        ``W | rhs`` block; divisions are exact by the minor identity.
        """
        piv = alpha[row]
        if piv == 0:
            raise SolverError("zero pivot element in basis update")
        den = self.den
        inv, rhs = self.inv, self.rhs
        piv_row = inv[row]
        piv_rhs = rhs[row]
        for i in range(self.m):
            if i == row:
                continue
            f = alpha[i]
            if f == 0:
                if piv != den:
                    inv[i] = [w * piv // den if w else 0 for w in inv[i]]
                    rhs[i] = rhs[i] * piv // den
            else:
                inv[i] = [
                    (w * piv - f * p) // den for w, p in zip(inv[i], piv_row)
                ]
                rhs[i] = (rhs[i] * piv - f * piv_rhs) // den
        if piv < 0:
            # Keep den > 0 so feasibility tests read off rhs signs directly.
            self.den = -piv
            self.inv = [[-w for w in r] for r in inv]
            self.rhs = [-v for v in rhs]
        else:
            self.den = piv
        self.updates += 1

    # ------------------------------------------------------------------
    # Factorization of an explicit basis
    # ------------------------------------------------------------------

    @classmethod
    def factorize(
        cls,
        m: int,
        columns: Sequence[Mapping[int, int]],
        b: Sequence[int],
    ) -> Optional["LUBasis"]:
        """Factorize an explicit set of ``m`` columns, or ``None`` if singular.

        Fraction-free elimination: each column is forward-transformed
        against the partial factorization and pivoted into the first still
        unclaimed row with a non-zero transformed entry (deterministic; any
        non-zero choice is exact).  ``O(m³)`` total.
        """
        if len(columns) != m:
            return None
        basis = cls(m, b)
        claimed = [False] * m
        for col in columns:
            alpha = basis.ftran(col)
            row = next(
                (r for r in range(m) if not claimed[r] and alpha[r] != 0), None
            )
            if row is None:
                return None  # linearly dependent on the columns placed so far
            basis.update(row, alpha)
            claimed[row] = True
        return basis

    def refactorize(
        self, columns: Sequence[Mapping[int, int]], b: Sequence[int]
    ) -> bool:
        """Rebuild this factorization from scratch off *columns*.

        Returns ``False`` (state unchanged) when the columns are singular.
        With exact arithmetic the rebuilt ``W``/``den`` equal the updated
        ones whenever *columns* is the basis the updates evolved — the
        canonical-representation property — so this is used to (re)anchor a
        basis that came from *outside* the update path, and as a self-check.
        """
        fresh = self.factorize(self.m, columns, b)
        if fresh is None:
            return False
        self.den = fresh.den
        self.inv = fresh.inv
        self.rhs = fresh.rhs
        self.refactorizations += 1
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def row_dot(self, row: int, col: Mapping[int, int]) -> int:
        """Single transformed entry ``(W·a)[row]`` — ``O(nnz(a))``."""
        inv_row = self.inv[row]
        return sum(inv_row[k] * v for k, v in col.items() if v)

    def is_feasible_dictionary(self) -> bool:
        """Whether the current basic values are all non-negative."""
        return all(v >= 0 for v in self.rhs)
