"""Exact 0/1 ILP solving via LP-based branch and bound.

Used by the experiment suite to compute true optima on small instances
(approximation-ratio measurements in E07/E10/E11) and as a generic substrate
for the memory-constrained programs (IP-3)+(7) and (IP-4).  Branching is on
the most fractional binary variable; bounding uses the exact simplex so
pruning decisions are never corrupted by floating-point noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..exceptions import SolverError
from .model import LinearProgram, LPSolution, VarKey
from .solve import solve_lp


@dataclass
class BnBResult:
    status: str  # "optimal" | "infeasible"
    values: Dict[VarKey, Fraction]
    objective: Optional[Fraction]
    nodes_explored: int

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"


def _most_fractional(
    lp: LinearProgram, solution: LPSolution
) -> Optional[VarKey]:
    """The binary variable whose value is closest to 1/2, or None."""
    best_key: Optional[VarKey] = None
    best_dist: Optional[Fraction] = None
    for key in lp.variable_keys:
        if not lp.is_integral_var(key):
            continue
        value = solution.value(key)
        frac_part = value - int(value)
        if frac_part == 0:
            continue
        dist = abs(frac_part - Fraction(1, 2))
        if best_dist is None or dist < best_dist:
            best_dist = dist
            best_key = key
    return best_key


def solve_binary_ilp(
    lp: LinearProgram,
    backend: str = "exact",
    node_limit: int = 100000,
) -> BnBResult:
    """Minimize *lp* with its integral-flagged variables forced to {0, 1}.

    Integral variables must carry bounds within [0, 1].  Raises
    :class:`SolverError` when the node limit is exhausted (the experiment
    suite sizes its exact comparisons to stay well below it).
    """
    for key in lp.variable_keys:
        if lp.is_integral_var(key):
            ub = lp.upper_bound(key)
            if lp.lower_bound(key) != 0 or ub is None or ub > 1:
                raise SolverError(
                    f"binary variable {key!r} must have bounds within [0, 1]"
                )

    best_objective: Optional[Fraction] = None
    best_values: Optional[Dict[VarKey, Fraction]] = None
    nodes = 0

    # Each node is a dict of fixed variable values layered over the base LP.
    stack: List[Dict[VarKey, int]] = [{}]
    while stack:
        fixed = stack.pop()
        nodes += 1
        if nodes > node_limit:
            raise SolverError(f"branch-and-bound exceeded {node_limit} nodes")
        node_lp = _with_fixings(lp, fixed)
        relaxation = solve_lp(node_lp, backend=backend)
        if not relaxation.is_optimal:
            continue  # infeasible subtree
        if (
            best_objective is not None
            and relaxation.objective is not None
            and relaxation.objective >= best_objective
        ):
            continue  # bound
        branch_key = _most_fractional(lp, relaxation)
        if branch_key is None:
            # Integral (in the binary vars) — candidate incumbent.
            if best_objective is None or relaxation.objective < best_objective:
                best_objective = relaxation.objective
                best_values = dict(relaxation.values)
            continue
        for value in (1, 0):  # explore the 1-branch first (assignment LPs)
            child = dict(fixed)
            child[branch_key] = value
            stack.append(child)

    if best_values is None:
        return BnBResult("infeasible", {}, None, nodes)
    return BnBResult("optimal", best_values, best_objective, nodes)


def _with_fixings(lp: LinearProgram, fixed: Dict[VarKey, int]) -> LinearProgram:
    """A copy of *lp* with equality rows pinning the fixed variables."""
    clone = LinearProgram()
    for key in lp.variable_keys:
        clone.add_variable(
            key,
            lb=lp.lower_bound(key),
            ub=lp.upper_bound(key),
            integral=lp.is_integral_var(key),
        )
    for row in lp.rows:
        coeffs = {lp.variable_keys[i]: v for i, v in row.coeffs.items()}
        clone.add_constraint(coeffs, row.sense, row.rhs, name=row.name)
    clone.set_objective(lp.objective_coeffs)
    for key, value in fixed.items():
        clone.add_constraint({key: 1}, "==", value, name=f"fix[{key!r}]")
    return clone
