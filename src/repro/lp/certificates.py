"""Exact Farkas certificates of LP infeasibility, checkable in O(nnz).

A vector ``y`` (one entry per constraint row, in the caller's row order)
certifies that ``{x ≥ 0 : rows}`` is empty when

* ``y_i ≤ 0`` for every ``<=`` row and ``y_i ≥ 0`` for every ``>=`` row
  (equality rows are unrestricted),
* ``Σ_i y_i·a_{ij} ≤ 0`` for every column ``j``, and
* ``Σ_i y_i·b_i > 0``.

Proof: for any feasible ``x ≥ 0``, the sign conditions give
``y_i·(a_i·x) ≥ y_i·b_i`` row-wise, so ``yᵀA·x ≥ yᵀb > 0`` — but every
column sum of ``yᵀA`` is ``≤ 0`` and ``x ≥ 0`` force ``yᵀA·x ≤ 0``.

These certificates are the currency of the incremental probe pipeline: an
infeasible probe of a binary search hands its ``y`` to the next probe,
which re-checks it against the *new* rows in ``O(nnz)`` rational work — if
it still certifies, an entire exact solve is skipped (see
:meth:`repro.core.programs.IP3Builder`).  Both exact kernels and the
HiGHS-dual path of :func:`repro.lp.hybrid.certify_infeasible` emit their
certificates in this one format.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Sequence

from .._fraction import to_fraction


def farkas_certifies(
    coeff_rows: Sequence[Dict[int, Fraction]],
    senses: Sequence[str],
    rhs: Sequence[Fraction],
    y: Sequence[Fraction],
) -> bool:
    """Exactly verify the certificate conditions above (``True`` = proof)."""
    if len(y) != len(coeff_rows):
        return False
    for yi, sense in zip(y, senses):
        if sense == "<=" and yi > 0:
            return False
        if sense == ">=" and yi < 0:
            return False
    column_sums: Dict[int, Fraction] = {}
    for yi, row in zip(y, coeff_rows):
        if yi == 0:
            continue
        for j, v in row.items():
            column_sums[j] = column_sums.get(j, Fraction(0)) + yi * v
    if any(total > 0 for total in column_sums.values()):
        return False
    gain = sum(
        (yi * to_fraction(b) for yi, b in zip(y, rhs) if yi), Fraction(0)
    )
    return gain > 0


def denormalize_farkas(
    y_std: Sequence[Fraction], raw_rhs: Sequence[Fraction]
) -> List[Fraction]:
    """Map a certificate on sign-normalized rows back to the raw rows.

    :func:`repro.lp.simplex.standard_form` negates every row whose rhs is
    negative; a dual on the normalized system certifies the raw system with
    the corresponding entries negated back.
    """
    return [
        -yi if to_fraction(b) < 0 else yi for yi, b in zip(y_std, raw_rhs)
    ]
