"""Exact Farkas certificates of LP infeasibility, checkable in O(nnz).

A vector ``y`` (one entry per constraint row, in the caller's row order)
certifies that ``{x ≥ 0 : rows}`` is empty when

* ``y_i ≤ 0`` for every ``<=`` row and ``y_i ≥ 0`` for every ``>=`` row
  (equality rows are unrestricted),
* ``Σ_i y_i·a_{ij} ≤ 0`` for every column ``j``, and
* ``Σ_i y_i·b_i > 0``.

Proof: for any feasible ``x ≥ 0``, the sign conditions give
``y_i·(a_i·x) ≥ y_i·b_i`` row-wise, so ``yᵀA·x ≥ yᵀb > 0`` — but every
column sum of ``yᵀA`` is ``≤ 0`` and ``x ≥ 0`` force ``yᵀA·x ≤ 0``.

These certificates are the currency of the incremental probe pipeline: an
infeasible probe of a binary search hands its ``y`` to the next probe,
which re-checks it against the *new* rows in ``O(nnz)`` rational work — if
it still certifies, an entire exact solve is skipped (see
:meth:`repro.core.programs.IP3Builder`).  Both exact kernels and the
HiGHS-dual path of :func:`repro.lp.hybrid.certify_infeasible` emit their
certificates in this one format.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, List, Sequence

from .._fraction import to_fraction


def _lcm(a: int, b: int) -> int:
    return a // gcd(a, b) * b


def farkas_certifies(
    coeff_rows: Sequence[Dict[int, Fraction]],
    senses: Sequence[str],
    rhs: Sequence[Fraction],
    y: Sequence[Fraction],
) -> bool:
    """Exactly verify the certificate conditions above (``True`` = proof)."""
    if len(y) != len(coeff_rows):
        return False
    fy = [to_fraction(yi) for yi in y]
    for yi, sense in zip(fy, senses):
        if sense == "<=" and yi > 0:
            return False
        if sense == ">=" and yi < 0:
            return False
    # Scale y by the (positive) lcm of its denominators: every condition
    # below is a sign test, so the scaling changes nothing — but it turns
    # the column sums into (mostly) pure integer arithmetic, an order of
    # magnitude cheaper than Fraction accumulation on the probe hot path.
    scale = 1
    for yi in fy:
        scale = _lcm(scale, yi.denominator)
    y_int = [yi.numerator * (scale // yi.denominator) for yi in fy]
    column_sums: Dict[int, object] = {}
    for yi, row in zip(y_int, coeff_rows):
        if not yi:
            continue
        for j, v in row.items():
            term = yi * v.numerator if v.denominator == 1 else yi * v
            acc = column_sums.get(j)
            column_sums[j] = term if acc is None else acc + term
    if any(total > 0 for total in column_sums.values()):
        return False
    gain = 0
    for yi, b in zip(y_int, rhs):
        if yi:
            fb = to_fraction(b)
            gain += yi * fb.numerator if fb.denominator == 1 else yi * fb
    return gain > 0


def denormalize_farkas(
    y_std: Sequence[Fraction], raw_rhs: Sequence[Fraction]
) -> List[Fraction]:
    """Map a certificate on sign-normalized rows back to the raw rows.

    :func:`repro.lp.simplex.standard_form` negates every row whose rhs is
    negative; a dual on the normalized system certifies the raw system with
    the corresponding entries negated back.
    """
    return [
        -yi if to_fraction(b) < 0 else yi for yi, b in zip(y_std, raw_rhs)
    ]
