"""Certified hybrid LP backend: HiGHS speed, exact-simplex guarantees.

The ``scipy`` backend is fast but returns rationalized floats whose
"feasibility" and "basicness" are only approximate — propagating them into
the Section V/VI rounding arguments silently voids the pseudo-forest and
fractionality properties those proofs rely on.  The ``exact`` backend is
certified but pays rational-pivoting cost from a cold start.

``hybrid`` composes the two so callers always get a guaranteed rational
basic optimal solution at close to float speed:

1. solve the LP with HiGHS (:func:`solve_standard_float`);
2. rationalize the candidate and read off its support;
3. re-solve with the **exact** fraction-free simplex, warm-started by
   pushing the candidate's support columns into the basis first
   (:func:`repro.lp.simplex.solve_standard` with ``warm_hints``).

Step 3 is the certificate: every number the caller sees was produced by
exact pivoting, so feasibility, optimality and basicness hold
unconditionally.  When the float candidate was right — the common case —
the warm-started exact solve needs no phase-1 work and terminates after the
support pushes plus a handful of cleanup pivots.  When the candidate was
wrong (rounding noise, wrong vertex, wrong verdict) the exact simplex
transparently repairs it: bad hints cost only the pivots they take.  A
claimed "infeasible"/"unbounded" is likewise never trusted — the exact
solver re-derives the verdict from scratch.

Small programs skip HiGHS entirely (below :data:`_FLOAT_SIZE_CUTOFF` the
fixed ``linprog`` overhead exceeds a full exact solve).  When scipy is not
installed the backend degrades to the exact solver, keeping every guarantee.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from .._fraction import rationalize, to_fraction
from .certificates import denormalize_farkas, farkas_certifies
from .simplex import SimplexResult, solve_standard, standard_form

try:  # pragma: no cover - exercised implicitly on import
    from .scipy_backend import solve_standard_float

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - scipy is present in CI images
    solve_standard_float = None  # type: ignore[assignment]
    HAVE_SCIPY = False

#: Problems with (variables × rows) below this skip the float probe: the
#: fixed cost of one ``linprog`` call exceeds a cold exact solve there.
_FLOAT_SIZE_CUTOFF = 64


def float_candidate(
    coeff_rows: Sequence[Dict[int, Fraction]],
    senses: Sequence[str],
    rhs: Sequence[Fraction],
    objective: Sequence[Fraction],
) -> Optional[SimplexResult]:
    """The HiGHS candidate, or ``None`` when scipy is missing or HiGHS fails.

    The result is *uncertified*: statuses and values are hints only.
    """
    if not HAVE_SCIPY:
        return None
    try:
        return solve_standard_float(coeff_rows, senses, rhs, objective)
    except Exception:  # pragma: no cover - HiGHS internal failures
        return None


def certify_infeasible(
    coeff_rows: Sequence[Dict[int, Fraction]],
    senses: Sequence[str],
    rhs: Sequence[Fraction],
    num_vars: Optional[int] = None,
) -> Optional[List[Fraction]]:
    """Exact Farkas certificate of infeasibility from a float phase-1 dual.

    A non-``None`` return is a *proof* — never a float verdict: the
    returned ``y`` (row-indexed in the caller's row order, semantics of
    :func:`repro.lp.certificates.farkas_certifies`) has been verified
    exactly, so callers may cache it and re-check it against neighbouring
    LPs (the binary-search probe pipeline does).  The phase-1 program

        min 1ᵀa   s.t.   A·x + S·s + I·a = b,   x, s, a ≥ 0

    (rows sign-normalized to ``b ≥ 0``; ``S`` the slack columns) is always
    feasible, so HiGHS returns an optimal dual ``y``.  Rationalizing ``y``
    and re-checking **exactly** the Farkas conditions

        yᵀA ≤ 0 (all columns),  sign conditions per row sense,  yᵀb > 0

    establishes that the original program is infeasible — without a single
    exact pivot.  Any check failing (dual noise too large, wrong verdict)
    returns ``None`` and the caller falls back to the exact simplex.

    This is what makes the binary search of ``minimal_fractional_T`` fast:
    its infeasible probes are certified in ``O(nnz)`` rational work instead
    of a cold exact phase-1 solve.
    """
    if not HAVE_SCIPY:
        return None
    import numpy as np
    from scipy.optimize import linprog

    if num_vars is None:
        num_vars = _num_vars(coeff_rows)
    std = standard_form(coeff_rows, senses, rhs, [Fraction(0)] * num_vars)
    n, r = std.n, std.num_rows
    if r == 0:
        return None  # x = 0 is feasible
    num_slack = sum(1 for s in std.slack_of_row if s is not None)
    width = n + num_slack + r
    a_eq = np.zeros((r, width))
    for i in range(r):
        for j, v in std.rows[i].items():
            a_eq[i][j] = float(v)
        if std.slack_of_row[i] is not None:
            a_eq[i][std.slack_of_row[i]] = float(std.slack_sign[i])
        a_eq[i][n + num_slack + i] = 1.0
    b_eq = np.array([float(b) for b in std.rhs])
    c = np.zeros(width)
    c[n + num_slack:] = 1.0
    try:
        result = linprog(
            c=c, A_eq=a_eq, b_eq=b_eq, bounds=[(0, None)] * width, method="highs"
        )
    except Exception:  # pragma: no cover - HiGHS internal failures
        return None
    if result.status != 0 or result.fun < 1e-9 or result.eqlin is None:
        return None
    raw_rhs = [to_fraction(b) for b in rhs]
    raw = [float(v) for v in result.eqlin.marginals]
    for sign in (1.0, -1.0):  # scipy's dual sign convention varies by path
        try:
            y_std = [rationalize(sign * v, 10**9) for v in raw]
        except ValueError:  # pragma: no cover - non-finite marginals
            continue
        y = denormalize_farkas(y_std, raw_rhs)
        if farkas_certifies(coeff_rows, senses, rhs, y):
            return y
    return None


def _num_vars(coeff_rows: Sequence[Dict[int, Fraction]]) -> int:
    return 1 + max((max(row, default=-1) for row in coeff_rows), default=-1)


def solve_standard_hybrid(
    coeff_rows: Sequence[Dict[int, Fraction]],
    senses: Sequence[str],
    rhs: Sequence[Fraction],
    objective: Sequence[Fraction],
    warm_hints: Optional[Sequence[int]] = None,
    warm_point: Optional[Sequence[Fraction]] = None,
    kernel: Optional[str] = None,
    warm_state=None,
    structure_token: object = None,
    canonical: "bool | str" = True,
) -> SimplexResult:
    """Certified solve: float candidate first, exact verification always.

    The returned :class:`SimplexResult` is produced by the exact simplex in
    every path, so it carries the same guarantees as ``backend="exact"``.
    The rationalized HiGHS point (when HiGHS claims optimality) takes
    precedence over the caller's *warm_point* as the crash-basis seed; with
    the default ``revised`` kernel the candidate's basis is **factorized
    directly** (``O(rows³)``, independent of the column count) instead of
    being pushed in through full-width tableau pivots.  A claimed
    infeasibility is accepted only with an exact Farkas certificate, which
    is attached to the result for reuse.

    A carried *warm_state* (see :mod:`repro.lp.warm`) is handed through to
    the exact solve, where it takes precedence over any point-based seed —
    a resolvable carried basis beats re-pushing the float candidate's
    support.
    """
    n = len(objective)
    size = n * max(len(coeff_rows), 1)
    if size >= _FLOAT_SIZE_CUTOFF:
        candidate = float_candidate(coeff_rows, senses, rhs, objective)
        if candidate is not None and candidate.status == "optimal":
            warm_point = candidate.x
        elif candidate is not None and candidate.status == "infeasible":
            farkas = certify_infeasible(coeff_rows, senses, rhs, num_vars=n)
            if farkas is not None:
                return SimplexResult(
                    "infeasible", [], None, None, farkas=farkas
                )
    return solve_standard(
        coeff_rows, senses, rhs, objective,
        warm_hints=warm_hints, warm_point=warm_point, kernel=kernel,
        warm_state=warm_state, structure_token=structure_token,
        canonical=canonical,
    )
