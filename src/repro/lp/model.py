"""A small LP/ILP model builder with named variables.

The paper's programs (IP-1) … (IP-4) index variables by ``(α, j)`` pairs; a
dense matrix interface would force every call site to maintain its own
index maps.  :class:`LinearProgram` lets callers build rows against hashable
variable keys and converts to the dense/standard forms the solvers need.

All coefficients are stored as exact :class:`~fractions.Fraction` values so
the exact simplex can run unchanged; the scipy backend converts to floats on
the way out.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple, Union

from .._fraction import to_fraction
from ..exceptions import SolverError
from .stats import SolverStats

VarKey = Hashable
Sense = str  # "<=", ">=", "=="

_SENSES = ("<=", ">=", "==")


@dataclass
class Row:
    """One linear constraint ``Σ coeffs·x  sense  rhs``."""

    coeffs: Dict[int, Fraction]
    sense: Sense
    rhs: Fraction
    name: str = ""


class LinearProgram:
    """Minimization LP with named variables and explicit rows.

    Variables default to ``lb=0, ub=None`` (the natural domain for all
    programs in the paper); integrality flags are honoured by the
    branch-and-bound solver only.
    """

    def __init__(self):
        self._keys: List[VarKey] = []
        self._index: Dict[VarKey, int] = {}
        self._lb: List[Fraction] = []
        self._ub: List[Optional[Fraction]] = []
        self._integral: List[bool] = []
        self._rows: List[Row] = []
        self._objective: Dict[int, Fraction] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_variable(
        self,
        key: VarKey,
        lb: Union[int, Fraction] = 0,
        ub: Optional[Union[int, Fraction]] = None,
        integral: bool = False,
    ) -> VarKey:
        if key in self._index:
            raise SolverError(f"duplicate variable key {key!r}")
        self._index[key] = len(self._keys)
        self._keys.append(key)
        self._lb.append(to_fraction(lb))
        self._ub.append(None if ub is None else to_fraction(ub))
        self._integral.append(integral)
        return key

    def has_variable(self, key: VarKey) -> bool:
        return key in self._index

    def add_constraint(
        self,
        coeffs: Mapping[VarKey, Union[int, Fraction]],
        sense: Sense,
        rhs: Union[int, Fraction],
        name: str = "",
    ) -> None:
        if sense not in _SENSES:
            raise SolverError(f"unknown constraint sense {sense!r}")
        row: Dict[int, Fraction] = {}
        for key, value in coeffs.items():
            coeff = to_fraction(value)
            if coeff != 0:
                row[self._index[key]] = coeff
        self._rows.append(Row(coeffs=row, sense=sense, rhs=to_fraction(rhs), name=name))

    def set_objective(self, coeffs: Mapping[VarKey, Union[int, Fraction]]) -> None:
        """Minimization objective; omit for pure feasibility problems."""
        self._objective = {
            self._index[key]: to_fraction(value) for key, value in coeffs.items()
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return len(self._keys)

    @property
    def objective_coeffs(self) -> Dict[VarKey, Fraction]:
        """Objective coefficients keyed by variable key (zeros omitted)."""
        return {self._keys[i]: v for i, v in self._objective.items()}

    @property
    def num_constraints(self) -> int:
        return len(self._rows)

    @property
    def variable_keys(self) -> Tuple[VarKey, ...]:
        return tuple(self._keys)

    @property
    def rows(self) -> Tuple[Row, ...]:
        return tuple(self._rows)

    def lower_bound(self, key: VarKey) -> Fraction:
        return self._lb[self._index[key]]

    def upper_bound(self, key: VarKey) -> Optional[Fraction]:
        return self._ub[self._index[key]]

    def is_integral_var(self, key: VarKey) -> bool:
        return self._integral[self._index[key]]

    def index_of(self, key: VarKey) -> int:
        return self._index[key]

    # ------------------------------------------------------------------
    # Conversion for the solvers
    # ------------------------------------------------------------------

    def to_standard_rows(self) -> Tuple[
        List[Dict[int, Fraction]], List[Sense], List[Fraction], List[Fraction]
    ]:
        """Rows with variable bounds materialized as constraints.

        Returns ``(coeff_rows, senses, rhs, objective_vector)``; variable
        lower bounds must be 0 (all programs in the paper satisfy this) —
        non-zero lower bounds raise, finite upper bounds become ≤ rows.
        """
        for idx, lb in enumerate(self._lb):
            if lb != 0:
                raise SolverError(
                    f"variable {self._keys[idx]!r} has lb={lb}; the exact "
                    f"solver requires lb=0 (shift the variable instead)"
                )
        coeff_rows: List[Dict[int, Fraction]] = []
        senses: List[Sense] = []
        rhs: List[Fraction] = []
        for row in self._rows:
            coeff_rows.append(dict(row.coeffs))
            senses.append(row.sense)
            rhs.append(row.rhs)
        for idx, ub in enumerate(self._ub):
            if ub is not None:
                coeff_rows.append({idx: Fraction(1)})
                senses.append("<=")
                rhs.append(ub)
        objective = [self._objective.get(i, Fraction(0)) for i in range(len(self._keys))]
        return coeff_rows, senses, rhs, objective

    def values_by_key(self, x: Sequence[Union[Fraction, float]]) -> Dict[VarKey, Union[Fraction, float]]:
        return {key: x[i] for key, i in self._index.items()}

    # ------------------------------------------------------------------
    # Exact certification
    # ------------------------------------------------------------------

    def check_values(
        self, values: Mapping[VarKey, Union[int, Fraction]]
    ) -> List[str]:
        """Exactly verify a candidate point; return the violations found.

        Every variable bound and every constraint row is re-evaluated in
        rational arithmetic — no tolerances.  An empty list certifies that
        *values* (missing keys read as 0) is a feasible point of this
        program.  This is the gate that keeps rationalized float-backend
        output from entering the exact pipeline unchecked.
        """
        x = [Fraction(0)] * len(self._keys)
        for key, value in values.items():
            idx = self._index.get(key)
            if idx is None:
                continue
            x[idx] = to_fraction(value)
        violations: List[str] = []
        for idx, key in enumerate(self._keys):
            if x[idx] < self._lb[idx]:
                violations.append(f"{key!r} = {x[idx]} < lb {self._lb[idx]}")
            ub = self._ub[idx]
            if ub is not None and x[idx] > ub:
                violations.append(f"{key!r} = {x[idx]} > ub {ub}")
        for pos, row in enumerate(self._rows):
            lhs = sum((v * x[i] for i, v in row.coeffs.items()), Fraction(0))
            ok = (
                lhs <= row.rhs if row.sense == "<="
                else lhs >= row.rhs if row.sense == ">="
                else lhs == row.rhs
            )
            if not ok:
                name = row.name or f"row[{pos}]"
                violations.append(f"{name}: {lhs} {row.sense} {row.rhs} violated")
        return violations


@dataclass
class LPSolution:
    """Solver-agnostic result: status, per-key values, objective, counters."""

    status: str  # "optimal" | "infeasible" | "unbounded"
    values: Dict[VarKey, Fraction]
    objective: Optional[Fraction]
    #: Per-solve performance counters (``None`` for the float backend).
    stats: Optional["SolverStats"] = None
    #: Carried solver basis (:class:`~repro.lp.warm.WarmState`) with
    #: structural labels mapped to this program's variable keys; process-
    #: local ephemera — never serialized (``None`` for non-exact backends).
    warm_state: Optional[object] = None

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"

    def value(self, key: VarKey) -> Fraction:
        return self.values.get(key, Fraction(0))
