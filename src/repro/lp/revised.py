"""Revised exact simplex: lazy pricing over a factorized basis.

The dense-tableau kernel (:mod:`repro.lp.simplex`) pays ``O(rows·cols)``
big-integer work per pivot because it updates every column, including the
thousands it will never pivot on.  This driver keeps only the basis inverse
factorized (:class:`repro.lp.basis.LUBasis` — integer-preserving, exact) and
reconstructs just what an iteration needs:

* the dual row ``y = c_B·B⁻¹`` by one backward transform (``btran``) of the
  sparse basic-cost vector,
* reduced costs ``c_j − y·a_j`` by sparse dot products against the original
  columns (*pricing* — never materialized as a row),
* the entering column ``B⁻¹·a_q`` by one forward transform (``ftran``),
* the basis exchange by one ``O(rows²)`` rank-one update.

Pricing is lazy either way; two rules are offered.  ``pricing="dantzig"``
(the default) prices every column with the tableau kernel's exact
tie-breaking; from a cold start this replicates the dense kernel's pivot
sequence *pivot for pivot*, so the two kernels return byte-identical
vertices — the cross-check suite and the benchmark's reproducibility
guarantee rely on it.  ``pricing="partial"`` scans columns in rotating
blocks and takes the Dantzig winner of the first block containing an
improving column, pricing only a fraction of the columns per iteration; it
is faster on very wide programs but may land on a *different* (equally
optimal) vertex when optima are non-unique.  Under both rules, once the
pivot count crosses ``bland_threshold`` the rule switches to Bland's
smallest-index rule (scanning from column 0), which cannot cycle, so
termination is guaranteed exactly as in the tableau kernel.

Warm starts factorize directly: a candidate point's support columns are
eliminated straight into the basis (``O(rows³)``, independent of the column
count) instead of being pushed through full-width tableau pivots.  This is
how the hybrid backend certifies HiGHS candidates.  A failed crash falls
back to ordinary ratio-test pushes, which preserve feasibility
unconditionally.

Infeasible programs return an exact Farkas certificate
(:mod:`repro.lp.certificates`) read off the optimal phase-1 duals, so
callers running probe sequences can re-check it against a neighbouring LP
and skip entire solves.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple

from .._fraction import to_fraction
from ..exceptions import PivotLimitError, SolverError
from .basis import LUBasis
from .certificates import denormalize_farkas, farkas_certifies
from .stats import SolverStats


def _lcm(a: int, b: int) -> int:
    return a // gcd(a, b) * b


class _RevisedSolver:
    """One solve's state: scaled columns, factorized basis, counters."""

    def __init__(
        self,
        std,
        objective: Sequence[Fraction],
        bland_threshold: int,
        max_pivots: int,
        pricing: str,
    ):
        self.std = std
        self.m = std.num_rows
        self.bland_threshold = bland_threshold
        self.max_pivots = max_pivots
        if pricing not in ("partial", "dantzig"):
            raise SolverError(f"unknown pricing rule {pricing!r}")
        self.pricing = pricing
        self.stats = SolverStats(solves=1)
        self.stats.count_kernel("revised")
        self.phase = 2

        # Row scales: every constraint row becomes integer; slacks and
        # artificials are implicitly rescaled with their row (their columns
        # keep ±1 entries), exactly as the tableau kernel does — the two
        # kernels therefore pivot on identical integers.
        m, n = self.m, std.n
        self.scales: List[int] = []
        for i in range(m):
            scale = 1
            for v in std.rows[i].values():
                scale = _lcm(scale, v.denominator)
            scale = _lcm(scale, std.rhs[i].denominator)
            self.scales.append(scale)
        self.b_int: List[int] = [
            int(std.rhs[i] * self.scales[i]) for i in range(m)
        ]

        # Sparse integer columns of [A | S | I].
        cols: List[Dict[int, int]] = [dict() for _ in range(std.total_cols)]
        for i in range(m):
            scale = self.scales[i]
            for j, v in std.rows[i].items():
                cols[j][i] = int(v * scale)
        art_index = std.art_start
        self.art_of_row: List[Optional[int]] = [None] * m
        for i in range(m):
            s = std.slack_of_row[i]
            if s is not None:
                cols[s][i] = std.slack_sign[i]
            if std.needs_artificial[i]:
                cols[art_index][i] = 1
                self.art_of_row[i] = art_index
                art_index += 1
        self.cols = cols
        self.col_items: List[Tuple[Tuple[int, int], ...]] = [
            tuple(c.items()) for c in cols
        ]

        # Scaled integer objective (positive scaling preserves signs/argmin).
        obj_scale = 1
        fr_obj = [to_fraction(c) for c in objective]
        for c in fr_obj:
            obj_scale = _lcm(obj_scale, c.denominator)
        self.c_int: List[int] = [int(c * obj_scale) for c in fr_obj]

        # Slack-or-artificial starting basis (identity in the scaled system).
        self.basis: List[int] = [
            self.art_of_row[i]
            if self.art_of_row[i] is not None
            else std.slack_of_row[i]  # type: ignore[list-item]
            for i in range(m)
        ]
        self.lub = LUBasis(m, self.b_int)
        self._cursor = 0
        self._block = max(64, (std.art_start + 7) // 8)

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------

    @property
    def pivots(self) -> int:
        return self.lub.updates

    def _pivot(self, row: int, alpha: Sequence[int], col: int) -> None:
        self.lub.update(row, alpha)
        self.basis[row] = col
        if self.phase == 1:
            self.stats.phase1_pivots += 1
        if self.lub.updates > self.max_pivots:
            raise PivotLimitError(
                self.max_pivots, self.lub.updates, self.phase, kernel="revised"
            )

    # ------------------------------------------------------------------
    # Pricing
    # ------------------------------------------------------------------

    def _structural_cost(self, j: int) -> int:
        # Phase 1 prices against zero structural costs; phase 2 against the
        # scaled objective (slack/artificial costs are zero in both).
        if self.phase == 1 or j >= self.std.n:
            return 0
        return self.c_int[j]

    def _reduced(self, j: int, y_num: List[int], den: int) -> int:
        r = self._structural_cost(j) * den
        for i, v in self.col_items[j]:
            yi = y_num[i]
            if yi:
                r -= yi * v
        return r

    def _entering(self, y_num: List[int], bland: bool) -> Optional[int]:
        limit = self.std.art_start
        den = self.lub.den
        if bland:
            for j in range(limit):
                if self._reduced(j, y_num, den) < 0:
                    return j
            return None
        if self.pricing == "dantzig":
            best_j: Optional[int] = None
            best = 0
            for j in range(limit):
                v = self._reduced(j, y_num, den)
                if v < best:
                    best = v
                    best_j = j
            return best_j
        # Partial pricing: rotating blocks, Dantzig winner of the first
        # block that contains any improving column.
        scanned = 0
        j = self._cursor if self._cursor < limit else 0
        best_j = None
        best = 0
        while scanned < limit:
            v = self._reduced(j, y_num, den)
            if v < best:
                best = v
                best_j = j
            scanned += 1
            j += 1
            if j >= limit:
                j = 0
            if scanned % self._block == 0 and best_j is not None:
                break
        if best_j is not None:
            self._cursor = (best_j + 1) % limit
        return best_j

    def _dual_row(self) -> List[int]:
        """den-scaled duals ``c_B·W`` for the current phase's costs."""
        if self.phase == 1:
            cb = {
                i: 1
                for i in range(self.m)
                if self.basis[i] >= self.std.art_start
            }
        else:
            cb = {}
            for i in range(self.m):
                b = self.basis[i]
                if b < self.std.n and self.c_int[b]:
                    cb[i] = self.c_int[b]
        return self.lub.btran(cb)

    # ------------------------------------------------------------------
    # Ratio test (identical comparisons and tie-breaks to the tableau)
    # ------------------------------------------------------------------

    def _leaving(self, alpha: Sequence[int]) -> Optional[int]:
        rhs, basis = self.lub.rhs, self.basis
        best_r: Optional[int] = None
        best_b = best_a = 0
        for r in range(self.m):
            a = alpha[r]
            if a <= 0:
                continue
            b = rhs[r]
            if best_r is None:
                best_r, best_b, best_a = r, b, a
                continue
            lhs = b * best_a
            cmp = best_b * a
            if lhs < cmp or (lhs == cmp and basis[r] < basis[best_r]):
                best_r, best_b, best_a = r, b, a
        return best_r

    def run_phase(self, phase: int) -> str:
        self.phase = phase
        while True:
            bland = self.pivots >= self.bland_threshold
            y_num = self._dual_row()
            col = self._entering(y_num, bland)
            if col is None:
                return "optimal"
            alpha = self.lub.ftran(self.cols[col])
            row = self._leaving(alpha)
            if row is None:
                return "unbounded"
            self._pivot(row, alpha, col)

    # ------------------------------------------------------------------
    # Warm starts
    # ------------------------------------------------------------------

    def crash_factorize(
        self, hints: Sequence[int], eligible: Optional[Sequence[bool]]
    ) -> bool:
        """Factorize the hinted basis directly; ``True`` iff exactly feasible.

        Hint columns are eliminated into eligible (tight) rows —
        structurally-owning rows first, artificial-basic ones preferred so
        phase 1 dissolves as a side effect — then slack columns are
        reinstated on rows whose artificial would otherwise sit at a
        non-zero level.  The intermediate dictionaries may be infeasible;
        the result counts only if the final one is exactly feasible with
        every remaining artificial at level 0.
        """
        std, m = self.std, self.m
        self.stats.refactorizations += 1
        self.lub.refactorizations += 1
        claimed = [False] * m
        in_basis = set(self.basis)
        skipped: List[int] = []
        for col in hints:
            if not 0 <= col < std.art_start or col in in_basis:
                continue
            alpha = self.lub.ftran(self.cols[col])
            best_row: Optional[int] = None
            best_rank = 2
            for r in range(m):
                if (
                    claimed[r]
                    or (eligible is not None and not eligible[r])
                    or r not in self.cols[col]
                    or alpha[r] == 0
                ):
                    continue
                rank = 0 if self.basis[r] >= std.art_start else 1
                if rank < best_rank:
                    best_rank = rank
                    best_row = r
                    if rank == 0:
                        break
            if best_row is None:
                skipped.append(col)
                continue
            in_basis.discard(self.basis[best_row])
            self._pivot(best_row, alpha, col)
            in_basis.add(col)
            claimed[best_row] = True
        # Mop-up: stragglers may factor into eligible rows through fill-in
        # once every structurally-owning row is placed.
        for col in skipped:
            alpha = self.lub.ftran(self.cols[col])
            best_row = None
            for r in range(m):
                if (
                    claimed[r]
                    or (eligible is not None and not eligible[r])
                    or alpha[r] == 0
                ):
                    continue
                best_row = r
                if self.basis[r] >= std.art_start:
                    break
            if best_row is None:
                continue  # linearly dependent on the placed columns
            in_basis.discard(self.basis[best_row])
            self._pivot(best_row, alpha, col)
            in_basis.add(col)
            claimed[best_row] = True
        # A "≥" row that is slack at the warm point starts artificial-basic;
        # reinstate its surplus column so the artificial is not left at a
        # negative level.
        for r in range(m):
            if self.basis[r] >= std.art_start:
                s = std.slack_of_row[r]
                if s is not None and s not in in_basis:
                    alpha = self.lub.ftran(self.cols[s])
                    if alpha[r] != 0:
                        in_basis.discard(self.basis[r])
                        self._pivot(r, alpha, s)
                        in_basis.add(s)
        for r in range(m):
            if self.lub.rhs[r] < 0:
                return False
            if self.basis[r] >= std.art_start and self.lub.rhs[r] != 0:
                return False
        return True

    def push_hints(self, hints: Sequence[int]) -> None:
        """Ratio-test pushes: always legal, bad hints only cost their pivots."""
        in_basis = set(self.basis)
        for col in hints:
            if not 0 <= col < self.std.art_start or col in in_basis:
                continue
            alpha = self.lub.ftran(self.cols[col])
            row = self._leaving(alpha)
            if row is None:
                continue
            in_basis.discard(self.basis[row])
            self._pivot(row, alpha, col)
            in_basis.add(col)

    def reset(self) -> None:
        """Back to the slack/artificial identity basis (crash fallback)."""
        self.basis = [
            self.art_of_row[i]
            if self.art_of_row[i] is not None
            else self.std.slack_of_row[i]  # type: ignore[list-item]
            for i in range(self.m)
        ]
        updates, refact = self.lub.updates, self.lub.refactorizations
        self.lub = LUBasis(self.m, self.b_int)
        self.lub.updates = updates  # pivot budget covers the failed crash
        self.lub.refactorizations = refact

    # ------------------------------------------------------------------
    # Phase-1 bookkeeping
    # ------------------------------------------------------------------

    def artificial_level_positive(self) -> bool:
        return any(
            self.lub.rhs[i] != 0
            for i in range(self.m)
            if self.basis[i] >= self.std.art_start
        )

    def clear_artificials(self) -> None:
        """Pivot zero-level artificials out wherever a structural entry exists.

        Load-bearing (same invariant as the tableau kernel): a basic
        artificial at level 0 whose row has non-zero structural entries
        could be lifted off zero by a later phase-2 pivot, silently voiding
        an equality row.  All-zero rows (redundant constraints) keep their
        artificial marker; extraction skips it and pricing never enters
        artificial columns.
        """
        for i in range(self.m):
            if self.basis[i] >= self.std.art_start:
                for j in range(self.std.art_start):
                    entry = self.lub.row_dot(i, self.cols[j])
                    if entry != 0:
                        alpha = self.lub.ftran(self.cols[j])
                        self._pivot(i, alpha, j)
                        break

    def farkas_certificate(
        self,
        coeff_rows: Sequence[Dict[int, Fraction]],
        senses: Sequence[str],
        rhs: Sequence[Fraction],
    ) -> Optional[List[Fraction]]:
        """The exact Farkas dual read off the optimal phase-1 basis.

        The scaled phase-1 duals ``y_num/den`` certify the *scaled* rows;
        row ``i`` of the scaled system is ``scales[i]`` times the
        sign-normalized row, so the normalized certificate is
        ``y_num[i]·scales[i]/den``, denormalized back to the caller's row
        signs.  Verified exactly before being returned — a certificate this
        module emits is always a proof.
        """
        self.phase = 1
        y_num = self._dual_row()
        den = self.lub.den
        y_std = [
            Fraction(y_num[i] * self.scales[i], den) for i in range(self.m)
        ]
        y_raw = denormalize_farkas(y_std, [to_fraction(b) for b in rhs])
        if farkas_certifies(coeff_rows, senses, rhs, y_raw):
            return y_raw
        return None  # pragma: no cover - duality guarantees the checks

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------

    def extract(self, objective: Sequence[Fraction]):
        n = self.std.n
        den = self.lub.den
        x = [Fraction(0)] * n
        for i in range(self.m):
            if self.basis[i] < n:
                x[self.basis[i]] = Fraction(self.lub.rhs[i], den)
        value = sum(
            (to_fraction(objective[j]) * x[j] for j in range(n) if x[j]),
            Fraction(0),
        )
        return x, value


def solve_standard_revised(
    coeff_rows: Sequence[Dict[int, Fraction]],
    senses: Sequence[str],
    rhs: Sequence[Fraction],
    objective: Sequence[Fraction],
    warm_hints: Optional[Sequence[int]] = None,
    warm_point: Optional[Sequence[Fraction]] = None,
    bland_threshold: Optional[int] = None,
    max_pivots: Optional[int] = None,
    pricing: str = "dantzig",
    want_farkas: bool = True,
):
    """Solve ``min c·x  s.t.  rows, x ≥ 0`` exactly via the revised simplex.

    Same contract as :func:`repro.lp.simplex.solve_standard` (which
    dispatches here for ``kernel="revised"``): exact rational basic optimal
    solutions, warm starts never change the result.  Additionally fills
    ``SimplexResult.stats`` and, for infeasible programs (when
    *want_farkas*), ``SimplexResult.farkas`` with a verified certificate.
    """
    # Imported late: simplex dispatches into this module (kernel switch).
    from .simplex import (
        BLAND_THRESHOLD_DEFAULT,
        MAX_PIVOTS_DEFAULT,
        SimplexResult,
        _point_hints,
        _tight_rows,
        standard_form,
    )
    from ..obs.trace import span as trace_span
    from .stats import record

    with trace_span(
        "lp.solve", kernel="revised", rows=len(coeff_rows), cols=len(objective),
    ) as solve_sp:
        std = standard_form(coeff_rows, senses, rhs, objective)
        solver = _RevisedSolver(
            std,
            objective,
            bland_threshold if bland_threshold is not None else BLAND_THRESHOLD_DEFAULT,
            max_pivots if max_pivots is not None else MAX_PIVOTS_DEFAULT,
            pricing,
        )
        has_artificials = any(std.needs_artificial)

        eligible: Optional[List[bool]] = None
        if warm_point is not None and len(warm_point) == std.n:
            point = [to_fraction(v) for v in warm_point]
            warm_hints = _point_hints(point) + list(warm_hints or [])
            eligible = _tight_rows(coeff_rows, senses, rhs, point)

        crashed = False
        if warm_hints:
            solver.stats.warm_start_attempts += 1
            with trace_span("lp.crash", hints=len(warm_hints)) as crash_sp:
                crashed = solver.crash_factorize(warm_hints, eligible)
                if crashed:
                    solver.stats.warm_start_hits += 1
                else:
                    # The crash landed on an infeasible dictionary; restart
                    # from the identity basis and fall back to ratio-test
                    # pushes.
                    solver.reset()
                    solver.push_hints(warm_hints)
                if crash_sp:
                    crash_sp.attrs["hit"] = crashed
                    crash_sp.attrs["pivots"] = solver.pivots

        # ------------- Phase 1: minimize the sum of artificials ------------
        if has_artificials and not crashed:
            with trace_span("lp.phase1") as phase_sp:
                status = solver.run_phase(1)
                if phase_sp:
                    phase_sp.attrs["pivots"] = solver.stats.phase1_pivots
            if status == "unbounded":  # pragma: no cover - impossible: cost ≥ 0
                raise SolverError("phase-1 objective unbounded")
            if solver.artificial_level_positive():
                farkas = (
                    solver.farkas_certificate(coeff_rows, senses, rhs)
                    if want_farkas
                    else None
                )
                solver.stats.pivots = solver.pivots
                record(solver.stats)
                if solve_sp:
                    solve_sp.attrs["status"] = "infeasible"
                return SimplexResult(
                    "infeasible", [], None, None, solver.pivots,
                    stats=solver.stats, farkas=farkas,
                )
        if has_artificials:
            solver.clear_artificials()

        # ------------- Phase 2: original objective -------------------------
        phase1_total = solver.pivots
        with trace_span("lp.phase2") as phase_sp:
            status = solver.run_phase(2)
            if phase_sp:
                phase_sp.attrs["pivots"] = solver.pivots - phase1_total
        solver.stats.pivots = solver.pivots
        record(solver.stats)
        if solve_sp:
            solve_sp.attrs["status"] = status
            solve_sp.attrs["pivots"] = solver.pivots
        if status == "unbounded":
            return SimplexResult(
                "unbounded", [], None, list(solver.basis), solver.pivots,
                stats=solver.stats,
            )
        x, value = solver.extract(objective)
        return SimplexResult(
            "optimal", x, value, list(solver.basis), solver.pivots,
            stats=solver.stats,
        )
