"""Revised exact simplex: lazy pricing over a factorized basis.

The dense-tableau kernel (:mod:`repro.lp.simplex`) pays ``O(rows·cols)``
big-integer work per pivot because it updates every column, including the
thousands it will never pivot on.  This driver keeps only the basis inverse
factorized (:class:`repro.lp.basis.LUBasis` — integer-preserving, exact) and
reconstructs just what an iteration needs:

* the dual row ``y = c_B·B⁻¹`` by one backward transform (``btran``) of the
  sparse basic-cost vector,
* reduced costs ``c_j − y·a_j`` by sparse dot products against the original
  columns (*pricing* — never materialized as a row),
* the entering column ``B⁻¹·a_q`` by one forward transform (``ftran``),
* the basis exchange by one ``O(rows²)`` rank-one update.

Pricing is lazy either way; two rules are offered.  ``pricing="dantzig"``
(the default) prices every column with the tableau kernel's exact
tie-breaking; from a cold start this replicates the dense kernel's pivot
sequence *pivot for pivot*, so the two kernels return byte-identical
vertices — the cross-check suite and the benchmark's reproducibility
guarantee rely on it.  ``pricing="partial"`` scans columns in rotating
blocks and takes the Dantzig winner of the first block containing an
improving column, pricing only a fraction of the columns per iteration; it
is faster on very wide programs but may land on a *different* (equally
optimal) vertex when optima are non-unique.  Under both rules, once the
pivot count crosses ``bland_threshold`` the rule switches to Bland's
smallest-index rule (scanning from column 0), which cannot cycle, so
termination is guaranteed exactly as in the tableau kernel.

Warm starts factorize directly: a candidate point's support columns are
eliminated straight into the basis (``O(rows³)``, independent of the column
count) instead of being pushed through full-width tableau pivots.  This is
how the hybrid backend certifies HiGHS candidates.  A failed crash falls
back to ordinary ratio-test pushes, which preserve feasibility
unconditionally.

Infeasible programs return an exact Farkas certificate
(:mod:`repro.lp.certificates`) read off the optimal phase-1 duals, so
callers running probe sequences can re-check it against a neighbouring LP
and skip entire solves.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple

from .._fraction import bigint, to_fraction
from ..exceptions import PivotLimitError, SolverError
from .basis import LUBasis
from .certificates import denormalize_farkas, farkas_certifies
from .stats import SolverStats
from .warm import WarmState

#: Pricing rules the revised kernel implements.  ``dantzig`` replicates the
#: tableau kernel pivot for pivot; ``partial`` scans rotating blocks (the
#: default for non-canonical solves, and safe under ``canonical`` because
#: the optimal vertex is lexicographically canonicalized — see
#: ``canonicalize``); ``steepest`` is projected steepest edge with exact
#: reference weights (fewest pivots, but each pricing step is dense — best
#: when pivots are expensive relative to pricing).
PRICINGS: Tuple[str, ...] = ("dantzig", "partial", "steepest")


def _lcm(a: int, b: int) -> int:
    return a // gcd(a, b) * b


_ONE = Fraction(1)


class _RevisedSolver:
    """One solve's state: scaled columns, factorized basis, counters."""

    def __init__(
        self,
        std,
        objective: Sequence[Fraction],
        bland_threshold: int,
        max_pivots: int,
        pricing: str,
    ):
        self.std = std
        self.m = std.num_rows
        self.bland_threshold = bland_threshold
        self.max_pivots = max_pivots
        if pricing not in PRICINGS:
            raise SolverError(f"unknown pricing rule {pricing!r}")
        self.pricing = pricing
        #: Steepest-edge reference weights, sparse (absent = 1).  Reset
        #: whenever the basis is replaced wholesale (crash, reset): the
        #: reference framework re-anchors at the new basis.
        self._gamma: Dict[int, Fraction] = {}
        self.stats = SolverStats(solves=1)
        self.stats.count_kernel("revised")
        self.phase = 2

        # Row scales: every constraint row becomes integer; slacks and
        # artificials are implicitly rescaled with their row (their columns
        # keep ±1 entries), exactly as the tableau kernel does — the two
        # kernels therefore pivot on identical integers.
        m, n = self.m, std.n
        self.scales: List[int] = []
        for i in range(m):
            scale = 1
            for v in std.rows[i].values():
                scale = _lcm(scale, v.denominator)
            scale = _lcm(scale, std.rhs[i].denominator)
            self.scales.append(scale)
        # Kernel integers go through the active bigint backend (gmpy2 when
        # available): products/sums inside ftran/btran/update then stay in
        # the fast type automatically.  Each row scale is a multiple of
        # every denominator in its row, so the scaled entries come from
        # pure integer arithmetic — no Fraction multiply (whose gcd
        # normalization used to dominate solver construction).
        self.b_int: List[int] = [
            bigint(
                std.rhs[i].numerator * (self.scales[i] // std.rhs[i].denominator)
            )
            for i in range(m)
        ]

        # Sparse integer columns of [A | S | I].
        cols: List[Dict[int, int]] = [dict() for _ in range(std.total_cols)]
        for i in range(m):
            scale = self.scales[i]
            for j, v in std.rows[i].items():
                cols[j][i] = bigint(v.numerator * (scale // v.denominator))
        art_index = std.art_start
        self.art_of_row: List[Optional[int]] = [None] * m
        for i in range(m):
            s = std.slack_of_row[i]
            if s is not None:
                cols[s][i] = std.slack_sign[i]
            if std.needs_artificial[i]:
                cols[art_index][i] = 1
                self.art_of_row[i] = art_index
                art_index += 1
        self.cols = cols
        self.col_items: List[Tuple[Tuple[int, int], ...]] = [
            tuple(c.items()) for c in cols
        ]

        # Scaled integer objective (positive scaling preserves signs/argmin).
        obj_scale = 1
        fr_obj = [to_fraction(c) for c in objective]
        for c in fr_obj:
            obj_scale = _lcm(obj_scale, c.denominator)
        self.c_int: List[int] = [
            bigint(c.numerator * (obj_scale // c.denominator)) for c in fr_obj
        ]

        # Slack-or-artificial starting basis (identity in the scaled system).
        self.basis: List[int] = [
            self.art_of_row[i]
            if self.art_of_row[i] is not None
            else std.slack_of_row[i]  # type: ignore[list-item]
            for i in range(m)
        ]
        self.lub = LUBasis(m, self.b_int)
        self._cursor = 0
        self._block = max(64, (std.art_start + 7) // 8)

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------

    @property
    def pivots(self) -> int:
        return self.lub.updates

    def _pivot(self, row: int, alpha: Sequence[int], col: int) -> None:
        self.lub.update(row, alpha)
        self.basis[row] = col
        if self.phase == 1:
            self.stats.phase1_pivots += 1
        if self.lub.updates > self.max_pivots:
            raise PivotLimitError(
                self.max_pivots, self.lub.updates, self.phase, kernel="revised"
            )

    # ------------------------------------------------------------------
    # Pricing
    # ------------------------------------------------------------------

    def _structural_cost(self, j: int) -> int:
        # Phase 1 prices against zero structural costs; phase 2 against the
        # scaled objective (slack/artificial costs are zero in both).
        if self.phase == 1 or j >= self.std.n:
            return 0
        return self.c_int[j]

    def _reduced(self, j: int, y_num: List[int], den: int) -> int:
        r = self._structural_cost(j) * den
        for i, v in self.col_items[j]:
            yi = y_num[i]
            if yi:
                r -= yi * v
        return r

    def _entering(self, y_num: List[int], bland: bool) -> Optional[int]:
        limit = self.std.art_start
        den = self.lub.den
        if bland:
            for j in range(limit):
                if self._reduced(j, y_num, den) < 0:
                    return j
            return None
        if self.pricing == "steepest":
            return self._entering_steepest(y_num, den, limit)
        if self.pricing == "dantzig":
            best_j: Optional[int] = None
            best = 0
            for j in range(limit):
                v = self._reduced(j, y_num, den)
                if v < best:
                    best = v
                    best_j = j
            return best_j
        # Partial pricing: rotating blocks, Dantzig winner of the first
        # block that contains any improving column.
        scanned = 0
        j = self._cursor if self._cursor < limit else 0
        best_j = None
        best = 0
        while scanned < limit:
            v = self._reduced(j, y_num, den)
            if v < best:
                best = v
                best_j = j
            scanned += 1
            j += 1
            if j >= limit:
                j = 0
            if scanned % self._block == 0 and best_j is not None:
                break
        if best_j is not None:
            self._cursor = (best_j + 1) % limit
        return best_j

    # -- steepest edge (projected, exact reference weights) -------------

    def _entering_steepest(
        self, y_num: List[int], den: int, limit: int
    ) -> Optional[int]:
        """Maximize ``rc_j² / γ_j`` over improving columns (ties → smallest).

        ``rc`` is den-scaled; the common ``den²`` factor cancels in the
        argmax.  Weights γ are exact Fractions relative to the reference
        framework anchored at the last wholesale basis change (γ = 1 there,
        the projected-steepest-edge convention); the comparison is done by
        cross-multiplication, so selection is exact.
        """
        best_j: Optional[int] = None
        best_num = 0  # rc², integer
        best_gam = Fraction(1)
        gamma = self._gamma
        for j in range(limit):
            rc = self._reduced(j, y_num, den)
            if rc >= 0:
                continue
            gam = gamma.get(j)
            if gam is None:
                gam = _ONE
            num = rc * rc
            # num / gam > best_num / best_gam  ⟺  num·best_gam > best_num·gam
            if best_j is None or (
                num * best_gam.numerator * gam.denominator
                > best_num * gam.numerator * best_gam.denominator
            ):
                best_j, best_num, best_gam = j, num, gam
        return best_j

    def _update_steepest(self, q: int, row: int, alpha: Sequence[int]) -> None:
        """Goldfarb weight recurrence for the pivot (enter *q* at *row*).

        Called **before** the basis update — it needs the pre-pivot ``W``,
        ``den`` and the transformed entering column α.  For every nonbasic
        column *j* with ᾱ_rj ≠ 0::

            t_j = ᾱ_rj / ᾱ_rq
            γ_j ← γ_j − 2·t_j·(a_j·v) + t_j²·γ_q,   v = B⁻ᵀB⁻¹a_q

        and the leaving variable re-enters the nonbasic pool with
        ``γ = γ_q / ᾱ_rq²``.  All quantities are exact: ᾱ entries are
        ``row_dot/den``, ``v = Wᵀα/den²``.
        """
        lub = self.lub
        den = lub.den
        piv = alpha[row]
        gamma = self._gamma
        gamma_q = gamma.pop(q, _ONE)
        v_num = lub.btran({i: a for i, a in enumerate(alpha) if a})
        den2 = den * den
        in_basis = set(self.basis)
        limit = self.std.art_start
        for j in range(limit):
            if j == q or j in in_basis:
                continue
            arj = lub.row_dot(row, self.cols[j])
            if arj == 0:
                continue
            t = Fraction(int(arj), int(piv))
            ajv_num = 0
            for i, v in self.col_items[j]:
                vi = v_num[i]
                if vi:
                    ajv_num += vi * v
            g = (
                gamma.get(j, _ONE)
                - 2 * t * Fraction(int(ajv_num), int(den2))
                + t * t * gamma_q
            )
            if g <= 0:  # pragma: no cover - exact recurrence keeps γ > 0
                g = t * t
            gamma[j] = g
        t_leave = Fraction(int(den), int(piv))
        gamma[self.basis[row]] = gamma_q * t_leave * t_leave

    def _dual_row(self) -> List[int]:
        """den-scaled duals ``c_B·W`` for the current phase's costs."""
        if self.phase == 1:
            cb = {
                i: 1
                for i in range(self.m)
                if self.basis[i] >= self.std.art_start
            }
        else:
            cb = {}
            for i in range(self.m):
                b = self.basis[i]
                if b < self.std.n and self.c_int[b]:
                    cb[i] = self.c_int[b]
        return self.lub.btran(cb)

    # ------------------------------------------------------------------
    # Ratio test (identical comparisons and tie-breaks to the tableau)
    # ------------------------------------------------------------------

    def _leaving(self, alpha: Sequence[int]) -> Optional[int]:
        rhs, basis = self.lub.rhs, self.basis
        best_r: Optional[int] = None
        best_b = best_a = 0
        for r in range(self.m):
            a = alpha[r]
            if a <= 0:
                continue
            b = rhs[r]
            if best_r is None:
                best_r, best_b, best_a = r, b, a
                continue
            lhs = b * best_a
            cmp = best_b * a
            if lhs < cmp or (lhs == cmp and basis[r] < basis[best_r]):
                best_r, best_b, best_a = r, b, a
        return best_r

    def run_phase(self, phase: int) -> str:
        self.phase = phase
        while True:
            bland = self.pivots >= self.bland_threshold
            y_num = self._dual_row()
            col = self._entering(y_num, bland)
            if col is None:
                return "optimal"
            alpha = self.lub.ftran(self.cols[col])
            row = self._leaving(alpha)
            if row is None:
                return "unbounded"
            if self.pricing == "steepest" and not bland:
                self._update_steepest(col, row, alpha)
            self._pivot(row, alpha, col)

    # ------------------------------------------------------------------
    # Warm starts
    # ------------------------------------------------------------------

    def crash_factorize(
        self, hints: Sequence[int], eligible: Optional[Sequence[bool]]
    ) -> bool:
        """Factorize the hinted basis directly; ``True`` iff exactly feasible.

        Hint columns are eliminated into eligible (tight) rows —
        structurally-owning rows first, artificial-basic ones preferred so
        phase 1 dissolves as a side effect — then slack columns are
        reinstated on rows whose artificial would otherwise sit at a
        non-zero level.  The intermediate dictionaries may be infeasible;
        the result counts only if the final one is exactly feasible with
        every remaining artificial at level 0.
        """
        std, m = self.std, self.m
        self.stats.refactorizations += 1
        self.lub.refactorizations += 1
        claimed = [False] * m
        in_basis = set(self.basis)
        skipped: List[int] = []
        for col in hints:
            if not 0 <= col < std.art_start or col in in_basis:
                continue
            alpha = self.lub.ftran(self.cols[col])
            best_row: Optional[int] = None
            best_rank = 2
            for r in range(m):
                if (
                    claimed[r]
                    or (eligible is not None and not eligible[r])
                    or r not in self.cols[col]
                    or alpha[r] == 0
                ):
                    continue
                rank = 0 if self.basis[r] >= std.art_start else 1
                if rank < best_rank:
                    best_rank = rank
                    best_row = r
                    if rank == 0:
                        break
            if best_row is None:
                skipped.append(col)
                continue
            in_basis.discard(self.basis[best_row])
            self._pivot(best_row, alpha, col)
            in_basis.add(col)
            claimed[best_row] = True
        # Mop-up: stragglers may factor into eligible rows through fill-in
        # once every structurally-owning row is placed.
        for col in skipped:
            alpha = self.lub.ftran(self.cols[col])
            best_row = None
            for r in range(m):
                if (
                    claimed[r]
                    or (eligible is not None and not eligible[r])
                    or alpha[r] == 0
                ):
                    continue
                best_row = r
                if self.basis[r] >= std.art_start:
                    break
            if best_row is None:
                continue  # linearly dependent on the placed columns
            in_basis.discard(self.basis[best_row])
            self._pivot(best_row, alpha, col)
            in_basis.add(col)
            claimed[best_row] = True
        # A "≥" row that is slack at the warm point starts artificial-basic;
        # reinstate its surplus column so the artificial is not left at a
        # negative level.
        for r in range(m):
            if self.basis[r] >= std.art_start:
                s = std.slack_of_row[r]
                if s is not None and s not in in_basis:
                    alpha = self.lub.ftran(self.cols[s])
                    if alpha[r] != 0:
                        in_basis.discard(self.basis[r])
                        self._pivot(r, alpha, s)
                        in_basis.add(s)
        self._gamma = {}  # pivots above bypass weight maintenance: re-anchor
        for r in range(m):
            if self.lub.rhs[r] < 0:
                return False
            if self.basis[r] >= std.art_start and self.lub.rhs[r] != 0:
                return False
        return True

    def push_hints(self, hints: Sequence[int]) -> None:
        """Ratio-test pushes: always legal, bad hints only cost their pivots."""
        in_basis = set(self.basis)
        for col in hints:
            if not 0 <= col < self.std.art_start or col in in_basis:
                continue
            alpha = self.lub.ftran(self.cols[col])
            row = self._leaving(alpha)
            if row is None:
                continue
            in_basis.discard(self.basis[row])
            self._pivot(row, alpha, col)
            in_basis.add(col)
        self._gamma = {}  # same: reference framework re-anchors here

    def crash_from_state(
        self, state: WarmState, token: object
    ) -> bool:
        """Install a carried :class:`WarmState` basis; ``True`` iff feasible.

        Two tiers (see :mod:`repro.lp.warm`): when the caller's structure
        *token* matches the state's and the row scales are identical, the
        factorized ``W`` is reinstalled verbatim — ``rhs = W·b`` is the only
        arithmetic (``crash_skips``).  Otherwise the labelled columns are
        factorized directly, ``O(m³)`` but self-validating against the
        *current* columns.  Either way the resulting dictionary must be
        exactly feasible with every artificial at level 0, or the state is
        rejected with the solver untouched (stale bases degrade cleanly).
        """
        std, m = self.std, self.m
        if state.m != m or len(state.labels) != m:
            return False
        resolved: List[int] = []
        for kind, payload in state.labels:
            col: Optional[int] = None
            if kind == "x":
                if isinstance(payload, int) and 0 <= payload < std.n:
                    col = payload
            elif kind == "s":
                if isinstance(payload, int) and 0 <= payload < m:
                    col = std.slack_of_row[payload]
            elif kind == "a":
                if isinstance(payload, int) and 0 <= payload < m:
                    col = self.art_of_row[payload]
            if col is None:
                return False
            resolved.append(col)
        if len(set(resolved)) != m:
            return False

        # Tier 1: verbatim W reinstall.  Sound only when the caller vouches
        # (token equality) that its basis columns are identical to the
        # producer's — a feasibility check alone cannot validate W as B⁻¹.
        if (
            state.lub is not None
            and token is not None
            and state.token is not None
            and state.token == token
            and state.scales == tuple(self.scales)
            and state.lub.m == m
        ):
            cand = state.lub.rebind(self.b_int)
            if self._dictionary_feasible(cand, resolved):
                cand.updates = self.lub.updates
                cand.refactorizations = self.lub.refactorizations
                cand.sparse_btrans = self.lub.sparse_btrans
                self.lub = cand
                self.basis = resolved
                self._gamma = {}
                self.stats.crash_skips += 1
                return True

        # Tier 2: factorize the labelled columns against the current system
        # (self-validating — no token needed), tracking which row each
        # column claims so basis membership stays positional.
        prior_updates = self.lub.updates
        prior_refacts = self.lub.refactorizations
        self.stats.refactorizations += 1
        fresh = LUBasis(m, self.b_int)
        claimed = [False] * m
        assign: List[int] = [-1] * m
        for col in resolved:
            alpha = fresh.ftran(self.cols[col])
            row = next(
                (r for r in range(m) if not claimed[r] and alpha[r] != 0), None
            )
            if row is None:
                return False  # singular against the current columns
            fresh.update(row, alpha)
            claimed[row] = True
            assign[row] = col
        if not self._dictionary_feasible(fresh, assign):
            return False
        fresh.updates = prior_updates  # a crash is a refactorization, not pivots
        fresh.refactorizations = prior_refacts + 1
        fresh.sparse_btrans += self.lub.sparse_btrans
        self.lub = fresh
        self.basis = assign
        self._gamma = {}
        return True

    def _dictionary_feasible(self, lub: LUBasis, basis: Sequence[int]) -> bool:
        """Non-negative basics, artificials (if basic) exactly at zero."""
        art_start = self.std.art_start
        for r in range(self.m):
            v = lub.rhs[r]
            if v < 0:
                return False
            if basis[r] >= art_start and v != 0:
                return False
        return True

    def reset(self) -> None:
        """Back to the slack/artificial identity basis (crash fallback)."""
        self.basis = [
            self.art_of_row[i]
            if self.art_of_row[i] is not None
            else self.std.slack_of_row[i]  # type: ignore[list-item]
            for i in range(self.m)
        ]
        updates, refact = self.lub.updates, self.lub.refactorizations
        sparse_btrans = self.lub.sparse_btrans
        self.lub = LUBasis(self.m, self.b_int)
        self.lub.updates = updates  # pivot budget covers the failed crash
        self.lub.refactorizations = refact
        self.lub.sparse_btrans = sparse_btrans
        self._gamma = {}

    # ------------------------------------------------------------------
    # Lexicographic canonicalization
    # ------------------------------------------------------------------

    def canonicalize(self) -> None:
        """Pivot within the optimal face to the **lex-min** optimal vertex.

        Runs Bland's rule on the ε-perturbed objective ``c·x + Σ εᵏ·x_k``
        over Q(ε): among the zero-reduced-cost columns, enter the smallest
        *j* whose lex reduced-cost vector is lex-negative.  The component of
        that vector at structural index ``k`` (ascending) is 0 when *k* is
        nonbasic (≠ j), +1 when ``k == j`` (structural *j* itself), and
        ``−(W·a_j)[r(k)]/den`` when *k* is basic at row ``r(k)`` — so the
        scan below stops at the first basic ``k < j`` whose row entry is
        non-zero (positive entry ⟹ improving, negative ⟹ not), and a
        structural *j* surviving the scan hits its own +1 (not improving)
        while a slack *j* with an all-zero scan moves no structural at all.

        Pivots on zero-reduced-cost columns leave the phase-2 reduced costs
        unchanged, so optimality is preserved throughout; Bland's rule
        cannot cycle, and the lex-min optimum is **unique**, so the vertex
        reached is independent of the pivot path (and hence of the pricing
        rule) — what makes partial/steepest pricing safe defaults for
        output-facing solves.
        """
        n = self.std.n
        limit = self.std.art_start
        while True:
            y_num = self._dual_row()
            den = self.lub.den
            basics = sorted(
                (self.basis[r], r) for r in range(self.m) if self.basis[r] < n
            )
            in_basis = set(self.basis)
            enter: Optional[int] = None
            for j in range(limit):
                if j in in_basis:
                    continue
                if self._reduced(j, y_num, den) != 0:
                    continue
                improving = False
                for k, r in basics:
                    if k >= j:
                        break  # j's own +1 component decides: not improving
                    d = self.lub.row_dot(r, self.cols[j])
                    if d > 0:
                        improving = True
                        break
                    if d < 0:
                        break
                if improving:
                    enter = j
                    break
            if enter is None:
                return
            alpha = self.lub.ftran(self.cols[enter])
            row = self._leaving(alpha)
            if row is None:  # pragma: no cover - lex objective bounded on x≥0
                return
            if self.pricing == "steepest":
                self._update_steepest(enter, row, alpha)
            self._pivot(row, alpha, enter)

    # ------------------------------------------------------------------
    # WarmState extraction
    # ------------------------------------------------------------------

    def build_warm_state(
        self, x: Sequence[Fraction], token: object
    ) -> WarmState:
        """Package the final basis as a carried :class:`WarmState`.

        The live :class:`LUBasis` is *moved* (rows are copy-on-write, so a
        future consumer cloning it never aliases mutations); labels encode
        basis membership positionally in this solve's index space.
        """
        std = self.std
        labels: List[Tuple[str, object]] = []
        slack_row = {
            s: r for r, s in enumerate(std.slack_of_row) if s is not None
        }
        art_row = {a: r for r, a in enumerate(self.art_of_row) if a is not None}
        for b in self.basis:
            if b < std.n:
                labels.append(("x", b))
            elif b >= std.art_start:
                labels.append(("a", art_row[b]))
            else:
                labels.append(("s", slack_row[b]))
        point = {j: x[j] for j in range(std.n) if x[j]}
        return WarmState(
            labels,
            self.m,
            std.n,
            tuple(self.scales),
            lub=self.lub,
            token=token,
            point=point,
        )

    # ------------------------------------------------------------------
    # Phase-1 bookkeeping
    # ------------------------------------------------------------------

    def artificial_level_positive(self) -> bool:
        return any(
            self.lub.rhs[i] != 0
            for i in range(self.m)
            if self.basis[i] >= self.std.art_start
        )

    def clear_artificials(self) -> None:
        """Pivot zero-level artificials out wherever a structural entry exists.

        Load-bearing (same invariant as the tableau kernel): a basic
        artificial at level 0 whose row has non-zero structural entries
        could be lifted off zero by a later phase-2 pivot, silently voiding
        an equality row.  All-zero rows (redundant constraints) keep their
        artificial marker; extraction skips it and pricing never enters
        artificial columns.
        """
        for i in range(self.m):
            if self.basis[i] >= self.std.art_start:
                for j in range(self.std.art_start):
                    entry = self.lub.row_dot(i, self.cols[j])
                    if entry != 0:
                        alpha = self.lub.ftran(self.cols[j])
                        self._pivot(i, alpha, j)
                        break

    def farkas_certificate(
        self,
        coeff_rows: Sequence[Dict[int, Fraction]],
        senses: Sequence[str],
        rhs: Sequence[Fraction],
    ) -> Optional[List[Fraction]]:
        """The exact Farkas dual read off the optimal phase-1 basis.

        The scaled phase-1 duals ``y_num/den`` certify the *scaled* rows;
        row ``i`` of the scaled system is ``scales[i]`` times the
        sign-normalized row, so the normalized certificate is
        ``y_num[i]·scales[i]/den``, denormalized back to the caller's row
        signs.  Verified exactly before being returned — a certificate this
        module emits is always a proof.
        """
        self.phase = 1
        y_num = self._dual_row()
        den = self.lub.den
        y_std = [
            Fraction(y_num[i] * self.scales[i], den) for i in range(self.m)
        ]
        y_raw = denormalize_farkas(y_std, [to_fraction(b) for b in rhs])
        if farkas_certifies(coeff_rows, senses, rhs, y_raw):
            return y_raw
        return None  # pragma: no cover - duality guarantees the checks

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------

    def extract(self, objective: Sequence[Fraction]):
        n = self.std.n
        den = self.lub.den
        x = [Fraction(0)] * n
        for i in range(self.m):
            if self.basis[i] < n:
                x[self.basis[i]] = Fraction(self.lub.rhs[i], den)
        value = sum(
            (to_fraction(objective[j]) * x[j] for j in range(n) if x[j]),
            Fraction(0),
        )
        return x, value


def solve_standard_revised(
    coeff_rows: Sequence[Dict[int, Fraction]],
    senses: Sequence[str],
    rhs: Sequence[Fraction],
    objective: Sequence[Fraction],
    warm_hints: Optional[Sequence[int]] = None,
    warm_point: Optional[Sequence[Fraction]] = None,
    bland_threshold: Optional[int] = None,
    max_pivots: Optional[int] = None,
    pricing: str = "dantzig",
    want_farkas: bool = True,
    warm_state: Optional[WarmState] = None,
    structure_token: object = None,
    canonical: "bool | str" = True,
):
    """Solve ``min c·x  s.t.  rows, x ≥ 0`` exactly via the revised simplex.

    Same contract as :func:`repro.lp.simplex.solve_standard` (which
    dispatches here for ``kernel="revised"``): exact rational basic optimal
    solutions, warm starts never change the result.  Additionally fills
    ``SimplexResult.stats`` and, for infeasible programs (when
    *want_farkas*), ``SimplexResult.farkas`` with a verified certificate.

    *warm_state* is a carried :class:`~repro.lp.warm.WarmState` (labels in
    **this** LP's index space); when its basis resolves and is feasible,
    phase 1 and the ratio-test push are skipped outright.  A stale state
    degrades to its carried point, then to a cold start — never changes the
    result.  *structure_token* authorizes verbatim ``W`` reuse (see
    :mod:`repro.lp.warm`).  *canonical* picks the vertex-identity contract:
    ``True`` (the default) yields the deterministic kernel-invariant vertex
    — with Dantzig pricing nothing extra is needed (the tableau kernel
    pivots identically), while any other pricing rule gets a lexicographic
    cleanup so the vertex never depends on scan order; ``"lex"`` always
    post-processes the optimum to the lex-min vertex (independent of
    pricing *and* warm start); ``False`` skips all cleanup for probe-style
    callers that only need feasibility/values.  Optimal results carry the
    final basis on ``SimplexResult.warm_state``.
    """
    # Imported late: simplex dispatches into this module (kernel switch).
    from .simplex import (
        BLAND_THRESHOLD_DEFAULT,
        SimplexResult,
        _point_hints,
        _tight_rows,
        default_max_pivots,
        standard_form,
    )
    from ..obs.trace import span as trace_span
    from .stats import record

    with trace_span(
        "lp.solve", kernel="revised", rows=len(coeff_rows), cols=len(objective),
    ) as solve_sp:
        std = standard_form(coeff_rows, senses, rhs, objective)
        solver = _RevisedSolver(
            std,
            objective,
            bland_threshold if bland_threshold is not None else BLAND_THRESHOLD_DEFAULT,
            max_pivots if max_pivots is not None else default_max_pivots(),
            pricing,
        )
        has_artificials = any(std.needs_artificial)

        crashed = False
        if warm_state is not None:
            solver.stats.warm_start_attempts += 1
            with trace_span("lp.crash", state=True) as crash_sp:
                crashed = solver.crash_from_state(warm_state, structure_token)
                if crash_sp:
                    crash_sp.attrs["hit"] = crashed
                    crash_sp.attrs["verbatim"] = bool(solver.stats.crash_skips)
            if crashed:
                solver.stats.warm_start_hits += 1
                solver.stats.basis_reuses += 1
            elif warm_point is None and warm_state.point:
                # Stale basis: degrade to the carried vertex as a point hint.
                pt = [Fraction(0)] * std.n
                for payload, value in warm_state.point.items():
                    if isinstance(payload, int) and 0 <= payload < std.n:
                        pt[payload] = to_fraction(value)
                warm_point = pt

        eligible: Optional[List[bool]] = None
        if not crashed and warm_point is not None and len(warm_point) == std.n:
            point = [to_fraction(v) for v in warm_point]
            warm_hints = _point_hints(point) + list(warm_hints or [])
            eligible = _tight_rows(coeff_rows, senses, rhs, point)

        if not crashed and warm_hints:
            solver.stats.warm_start_attempts += 1
            with trace_span("lp.crash", hints=len(warm_hints)) as crash_sp:
                crashed = solver.crash_factorize(warm_hints, eligible)
                if crashed:
                    solver.stats.warm_start_hits += 1
                else:
                    # The crash landed on an infeasible dictionary; restart
                    # from the identity basis and fall back to ratio-test
                    # pushes.
                    solver.reset()
                    solver.push_hints(warm_hints)
                if crash_sp:
                    crash_sp.attrs["hit"] = crashed
                    crash_sp.attrs["pivots"] = solver.pivots

        # ------------- Phase 1: minimize the sum of artificials ------------
        if has_artificials and not crashed:
            with trace_span("lp.phase1") as phase_sp:
                status = solver.run_phase(1)
                if phase_sp:
                    phase_sp.attrs["pivots"] = solver.stats.phase1_pivots
            if status == "unbounded":  # pragma: no cover - impossible: cost ≥ 0
                raise SolverError("phase-1 objective unbounded")
            if solver.artificial_level_positive():
                farkas = (
                    solver.farkas_certificate(coeff_rows, senses, rhs)
                    if want_farkas
                    else None
                )
                solver.stats.pivots = solver.pivots
                solver.stats.sparse_btrans = solver.lub.sparse_btrans
                record(solver.stats)
                if solve_sp:
                    solve_sp.attrs["status"] = "infeasible"
                return SimplexResult(
                    "infeasible", [], None, None, solver.pivots,
                    stats=solver.stats, farkas=farkas,
                )
        if has_artificials:
            solver.clear_artificials()

        # ------------- Phase 2: original objective -------------------------
        phase1_total = solver.pivots
        with trace_span("lp.phase2") as phase_sp:
            status = solver.run_phase(2)
            if phase_sp:
                phase_sp.attrs["pivots"] = solver.pivots - phase1_total
        if status == "optimal" and (
            canonical == "lex" or (canonical is True and pricing != "dantzig")
        ):
            solver.canonicalize()
        solver.stats.pivots = solver.pivots
        solver.stats.sparse_btrans = solver.lub.sparse_btrans
        record(solver.stats)
        if solve_sp:
            solve_sp.attrs["status"] = status
            solve_sp.attrs["pivots"] = solver.pivots
        if status == "unbounded":
            return SimplexResult(
                "unbounded", [], None, list(solver.basis), solver.pivots,
                stats=solver.stats,
            )
        x, value = solver.extract(objective)
        return SimplexResult(
            "optimal", x, value, list(solver.basis), solver.pivots,
            stats=solver.stats,
            warm_state=solver.build_warm_state(x, structure_token),
        )
