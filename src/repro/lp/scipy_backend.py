"""Floating-point LP backend on top of :func:`scipy.optimize.linprog`.

Used for the larger benchmark instances where the exact simplex would be
slow.  ``method="highs"`` (dual simplex inside HiGHS) returns a basic optimal
solution, which is what the Section V rounding needs; values are snapped back
to rationals with a denominator bound before re-entering the exact pipeline.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy.optimize import linprog

from .._fraction import rationalize
from ..exceptions import SolverError
from .simplex import SimplexResult

#: Values within this distance of an integer are snapped during rationalization.
_SNAP_EPS = 1e-9


def solve_standard_float(
    coeff_rows: Sequence[Dict[int, Fraction]],
    senses: Sequence[str],
    rhs: Sequence[Fraction],
    objective: Sequence[Fraction],
    max_denominator: int = 10**6,
) -> SimplexResult:
    """Solve the same standard form as the exact simplex, via HiGHS.

    The result's ``x`` is rationalized (``limit_denominator``) so downstream
    exact checks can run; statuses map onto the exact solver's vocabulary.
    """
    n = len(objective)
    if n == 0:
        # linprog rejects empty programs; decide them exactly right here.
        # (The IP-3 builders encode "job has no options" as a {} == 1 row.)
        for sense, b in zip(senses, rhs):
            b = Fraction(b)
            ok = (b >= 0) if sense == "<=" else (b <= 0) if sense == ">=" else b == 0
            if not ok:
                return SimplexResult("infeasible", [], None, None)
        return SimplexResult("optimal", [], Fraction(0), [])
    a_ub: List[List[float]] = []
    b_ub: List[float] = []
    a_eq: List[List[float]] = []
    b_eq: List[float] = []
    for row, sense, b in zip(coeff_rows, senses, rhs):
        dense = [0.0] * n
        for j, v in row.items():
            dense[j] = float(v)
        if sense == "<=":
            a_ub.append(dense)
            b_ub.append(float(b))
        elif sense == ">=":
            a_ub.append([-v for v in dense])
            b_ub.append(-float(b))
        elif sense == "==":
            a_eq.append(dense)
            b_eq.append(float(b))
        else:  # pragma: no cover - guarded upstream
            raise SolverError(f"unknown sense {sense!r}")

    result = linprog(
        c=np.array([float(v) for v in objective]),
        A_ub=np.array(a_ub) if a_ub else None,
        b_ub=np.array(b_ub) if b_ub else None,
        A_eq=np.array(a_eq) if a_eq else None,
        b_eq=np.array(b_eq) if b_eq else None,
        bounds=[(0, None)] * n,
        method="highs",
    )
    if result.status == 2:
        return SimplexResult("infeasible", [], None, None)
    if result.status == 3:
        return SimplexResult("unbounded", [], None, None)
    if result.status != 0:  # pragma: no cover - solver-internal failures
        raise SolverError(f"HiGHS failed: {result.message}")

    x: List[Fraction] = []
    for value in result.x:
        value = float(value)
        nearest = round(value)
        if abs(value - nearest) < _SNAP_EPS:
            x.append(Fraction(int(nearest)))
        else:
            x.append(rationalize(value, max_denominator))
    objective_value = sum(
        (Fraction(objective[j]) * x[j] for j in range(n)), Fraction(0)
    )
    return SimplexResult("optimal", x, objective_value, None)
