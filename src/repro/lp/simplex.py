"""Exact two-phase simplex over the rationals, with fraction-free pivoting.

The rounding arguments of Sections V and VI need *basic* feasible solutions:
Lenstra–Shmoys–Tardos relies on the pseudo-forest structure of a vertex's
support, and Lemma VI.2's iterative relaxation counts fractional variables at
a vertex.  Floating-point solvers return "almost" vertices; telling a
fractional value from numeric noise then needs tolerances that can break the
combinatorial arguments.  This implementation is exact throughout, so support
and fractionality are exact properties.

Arithmetic: instead of a dense :class:`~fractions.Fraction` tableau (whose
per-cell gcd normalization dominated the old hot path), the tableau is kept
as **integers with one common denominator** — Edmonds' integer pivoting, the
arithmetic used by lrs.  Each row is pre-scaled to integers; a pivot on
``(r, c)`` updates every other row as

    T'[i][j] = (T[i][j]·T[r][c] − T[i][c]·T[r][j]) / d

where ``d`` is the previous pivot value.  The division is exact (tableau
entries are subdeterminants of the scaled input), so no rational
normalization ever happens inside the pivot loop; the true tableau value of
cell ``(i, j)`` is ``T[i][j] / d`` with ``d > 0`` maintained as an invariant.

Pivot rule: Dantzig's for speed, switching to Bland's (which cannot cycle)
once the iteration count exceeds a threshold, so termination is guaranteed.

Warm starts: callers that already hold a (near-)feasible point — a prior
solve of a neighbouring LP in a binary search, or a rationalized HiGHS
candidate in the ``hybrid`` backend — can pass its support as
``warm_hints``.  Hint columns are pushed into the basis by ordinary
ratio-test pivots before the phase-1/phase-2 loops run, which preserves
every invariant (each push is a legal simplex pivot) while typically letting
phase 1 terminate immediately and phase 2 start at (or next to) the optimal
vertex.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple

from .._fraction import to_fraction
from ..exceptions import PivotLimitError, SolverError
from .revised import PRICINGS
from .stats import SolverStats, record
from .warm import WarmState

#: After this many pivots the pivot rule switches to Bland's (anti-cycling).
#: Overridable per solve via ``solve_standard(bland_threshold=…)``.
BLAND_THRESHOLD_DEFAULT = 5000
#: Default hard cap — exceeded only by a bug, not by honest degeneracy.
#: Overridable per solve via ``solve_standard(max_pivots=…)``; exceeding it
#: raises the structured :class:`~repro.exceptions.PivotLimitError`.
MAX_PIVOTS_DEFAULT = 200000

#: Process-default override of :data:`MAX_PIVOTS_DEFAULT` (``None`` = use
#: the constant).  The sweep runner's per-task pivot budget
#: (:mod:`repro.runner.budget`) installs a cap here for the duration of a
#: worker task, so every solve the task performs — however deep in the
#: pipeline — answers to the budget without threading ``max_pivots``
#: through every call chain.
_default_max_pivots: "Optional[int]" = None


def set_default_max_pivots(cap: "Optional[int]") -> "Optional[int]":
    """Set the process-default pivot budget; returns the previous value.

    ``None`` restores :data:`MAX_PIVOTS_DEFAULT`.  Explicit
    ``solve_standard(max_pivots=…)`` arguments always win over the default.
    """
    global _default_max_pivots
    previous = _default_max_pivots
    _default_max_pivots = cap
    return previous


def default_max_pivots() -> int:
    """The pivot budget solves use when no ``max_pivots`` is passed."""
    return MAX_PIVOTS_DEFAULT if _default_max_pivots is None else _default_max_pivots

#: The exact pivoting kernels ``solve_standard`` dispatches between.
KERNELS = ("revised", "tableau")

#: Process-wide default kernel (the CLI's ``--kernel`` flag sets it).
_default_kernel = "revised"

#: Process-wide default pricing for the revised kernel when callers pass
#: ``pricing=None`` on a **non-canonical** solve (probes, min-T bisection —
#: the hot paths, where any optimal vertex will do).  ``partial`` is safe
#: there, and safe even under ``canonical`` because an explicit non-Dantzig
#: pricing gets its optimal vertex lexicographically canonicalized (see
#: ``_RevisedSolver.canonicalize``).  Canonical solves with ``pricing=None``
#: pin Dantzig instead, which is deterministic and kernel-invariant by
#: construction.  The tableau kernel always prices Dantzig→Bland.
_default_pricing = "partial"


def set_default_kernel(kernel: str) -> None:
    """Set the kernel used when callers pass ``kernel=None`` (the default)."""
    global _default_kernel
    if kernel not in KERNELS:
        raise SolverError(f"unknown kernel {kernel!r}; choose from {KERNELS}")
    _default_kernel = kernel


def get_default_kernel() -> str:
    return _default_kernel


def set_default_pricing(pricing: str) -> None:
    """Set the revised-kernel pricing used when callers pass ``pricing=None``."""
    global _default_pricing
    if pricing not in PRICINGS:
        raise SolverError(
            f"unknown pricing {pricing!r}; choose from {PRICINGS}"
        )
    _default_pricing = pricing


def get_default_pricing() -> str:
    return _default_pricing


@dataclass
class SimplexResult:
    status: str  # "optimal" | "infeasible" | "unbounded"
    x: List[Fraction]
    objective: Optional[Fraction]
    basis: Optional[List[int]]
    pivots: int = 0
    #: Per-solve performance counters (``None`` for the float backend).
    stats: Optional[SolverStats] = None
    #: Verified Farkas certificate (infeasible results from the revised
    #: kernel; row-indexed in the caller's row order, see
    #: :mod:`repro.lp.certificates`).
    farkas: Optional[List[Fraction]] = None
    #: Carried solver state for the *next* solve (optimal results only):
    #: the final basis as labels, the live factorized basis (revised
    #: kernel), and the vertex.  Process-local ephemera — never serialized.
    warm_state: Optional[WarmState] = None

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"


def _lcm(a: int, b: int) -> int:
    return a // gcd(a, b) * b


@dataclass
class StandardForm:
    """The normalized standard form shared by the exact and hybrid solvers.

    Rows are sign-normalized to ``b ≥ 0``; slack and artificial variables are
    assigned fixed column indices so a candidate basis can be described by
    column index alone.
    """

    n: int  # structural variables
    num_rows: int
    rows: List[Dict[int, Fraction]]
    senses: List[str]
    rhs: List[Fraction]
    slack_of_row: List[Optional[int]]
    slack_sign: List[int]
    needs_artificial: List[bool]
    art_start: int  # first artificial column; == total non-artificial columns
    total_cols: int  # including artificials, excluding the rhs column


def standard_form(
    coeff_rows: Sequence[Dict[int, Fraction]],
    senses: Sequence[str],
    rhs: Sequence[Fraction],
    objective: Sequence[Fraction],
) -> StandardForm:
    """Normalize ``min c·x s.t. rows, x ≥ 0`` for the tableau solvers."""
    n = len(objective)
    r = len(coeff_rows)
    if len(senses) != r or len(rhs) != r:
        raise SolverError("rows, senses and rhs must have equal length")
    norm_rows: List[Dict[int, Fraction]] = []
    norm_rhs: List[Fraction] = []
    norm_senses: List[str] = []
    for i in range(r):
        row = dict(coeff_rows[i])
        b = to_fraction(rhs[i])
        sense = senses[i]
        if sense not in ("<=", ">=", "=="):
            raise SolverError(f"unknown sense {sense!r}")
        if b < 0:
            row = {j: -v for j, v in row.items()}
            b = -b
            sense = {"<=": ">=", ">=": "<=", "==": "=="}[sense]
        norm_rows.append(row)
        norm_rhs.append(b)
        norm_senses.append(sense)

    slack_index = n
    slack_of_row: List[Optional[int]] = [None] * r
    slack_sign: List[int] = [0] * r
    for i, sense in enumerate(norm_senses):
        if sense in ("<=", ">="):
            slack_of_row[i] = slack_index
            slack_sign[i] = 1 if sense == "<=" else -1
            slack_index += 1
    needs_artificial = [sense in (">=", "==") for sense in norm_senses]
    art_start = slack_index
    total_cols = art_start + sum(needs_artificial)
    return StandardForm(
        n=n,
        num_rows=r,
        rows=norm_rows,
        senses=norm_senses,
        rhs=norm_rhs,
        slack_of_row=slack_of_row,
        slack_sign=slack_sign,
        needs_artificial=needs_artificial,
        art_start=art_start,
        total_cols=total_cols,
    )


class _Tableau:
    """Integer tableau with one common denominator (``den > 0``).

    ``rows`` holds the constraint rows followed by one or two cost rows; the
    true rational value of any cell is ``cell / den``.  The rhs is the last
    column of every row.
    """

    __slots__ = (
        "rows", "den", "basis", "num_rows", "art_start", "pivots",
        "bland_threshold", "max_pivots", "phase",
    )

    def __init__(
        self,
        rows: List[List[int]],
        basis: List[int],
        num_rows: int,
        art_start: int,
        bland_threshold: int = BLAND_THRESHOLD_DEFAULT,
        max_pivots: int = MAX_PIVOTS_DEFAULT,
    ):
        self.rows = rows
        self.den = 1
        self.basis = basis
        self.num_rows = num_rows
        self.art_start = art_start
        self.pivots = 0
        self.bland_threshold = bland_threshold
        self.max_pivots = max_pivots
        self.phase = 2

    def pivot(self, row: int, col: int) -> None:
        rows = self.rows
        den = self.den
        piv_row = rows[row]
        piv = piv_row[col]
        if piv == 0:
            raise SolverError("zero pivot element")
        for i in range(len(rows)):
            if i == row:
                continue
            cur = rows[i]
            f = cur[col]
            if f == 0:
                if piv != den:
                    rows[i] = [a * piv // den if a else 0 for a in cur]
            else:
                rows[i] = [
                    (a * piv - f * b) // den for a, b in zip(cur, piv_row)
                ]
        self.basis[row] = col
        if piv < 0:
            # Keep den > 0 so sign tests read directly off the entries.
            self.den = -piv
            self.rows = [[-a for a in rw] for rw in rows]
        else:
            self.den = piv
        self.pivots += 1
        if self.pivots > self.max_pivots:
            raise PivotLimitError(
                self.max_pivots, self.pivots, self.phase, kernel="tableau"
            )

    def entering(self, cost_index: int, bland: bool) -> Optional[int]:
        """An improving non-artificial column (negative reduced cost)."""
        cost = self.rows[cost_index]
        limit = self.art_start
        if bland:
            for j in range(limit):
                if cost[j] < 0:
                    return j
            return None
        best_j: Optional[int] = None
        best = 0
        for j in range(limit):
            v = cost[j]
            if v < best:
                best = v
                best_j = j
        return best_j

    def leaving(self, col: int) -> Optional[int]:
        """Min-ratio test; ties broken by smallest basis index (Bland-safe).

        Ratios compare as ``b_r·a_s  vs  b_s·a_r`` — the common denominator
        cancels, so no rationals are formed.
        """
        rows, basis = self.rows, self.basis
        best_r: Optional[int] = None
        best_b = best_a = 0
        for r in range(self.num_rows):
            a = rows[r][col]
            if a <= 0:
                continue
            b = rows[r][-1]
            if best_r is None:
                best_r, best_b, best_a = r, b, a
                continue
            lhs = b * best_a
            rhs = best_b * a
            if lhs < rhs or (lhs == rhs and basis[r] < basis[best_r]):
                best_r, best_b, best_a = r, b, a
        return best_r

    def push_hints(self, hints: Sequence[int]) -> None:
        """Drive hint columns into the basis with legal ratio-test pivots.

        A hint that is already basic, has no positive column entry, or lies
        outside the column range is skipped; nothing here can violate
        feasibility, so bad hints only cost the pivots they take.
        """
        in_basis = set(self.basis)
        for col in hints:
            if not 0 <= col < self.art_start or col in in_basis:
                continue
            row = self.leaving(col)
            if row is None:
                continue
            old = self.basis[row]
            self.pivot(row, col)
            in_basis.discard(old)
            in_basis.add(col)

    def crash_basis(
        self,
        hints: Sequence[int],
        std: "StandardForm",
        eligible: Optional[Sequence[bool]] = None,
    ) -> bool:
        """Gaussian-eliminate hint columns straight into the basis.

        Unlike :meth:`push_hints` this ignores the ratio test — each hint is
        pivoted into one of its *structurally-owning* rows (rows where the
        column has a non-zero coefficient in the original program, so
        elimination fill-in cannot misroute a variable into an unrelated
        row), artificial-basic rows first so phase 1 dissolves as a side
        effect.  *eligible* marks the rows that are tight at the warm-start
        point — claiming a slack row that is *not* tight would force its
        positive slack out of the basis and land on a different (generally
        infeasible) basic solution, so non-tight rows are never claimed.

        The intermediate dictionaries may be primal infeasible, so the
        result is accepted only if the final one is exactly feasible
        (``b ≥ 0``) with every remaining artificial at level 0; returns
        whether it was.  On success the caller skips phase 1 outright — this
        is the certification step of the hybrid backend, where the hints are
        a float solver's optimal support and one elimination pass replaces
        both simplex phases.
        """
        hinted: set = set()
        in_basis = set(self.basis)
        skipped: List[int] = []
        for col in hints:
            if not 0 <= col < self.art_start or col in in_basis:
                continue
            best_row: Optional[int] = None
            best_rank = 2
            for r in range(self.num_rows):
                if (
                    (eligible is not None and not eligible[r])
                    or self.basis[r] in hinted
                    or col not in std.rows[r]
                    or self.rows[r][col] == 0
                ):
                    continue
                rank = 0 if self.basis[r] >= self.art_start else 1
                if rank < best_rank:
                    best_rank = rank
                    best_row = r
                    if rank == 0:
                        break
            if best_row is None:
                skipped.append(col)
                continue
            in_basis.discard(self.basis[best_row])
            self.pivot(best_row, col)
            in_basis.add(col)
            hinted.add(col)
        # Mop-up pass: with the bulk of the structure placed, stragglers may
        # pivot into eligible rows through elimination fill-in (no longer a
        # misrouting risk — every structurally-owning row is already hinted).
        for col in skipped:
            best_row = None
            for r in range(self.num_rows):
                if (
                    (eligible is not None and not eligible[r])
                    or self.basis[r] in hinted
                    or self.rows[r][col] == 0
                ):
                    continue
                best_row = r
                if self.basis[r] >= self.art_start:
                    break
            if best_row is None:
                continue  # linearly dependent on the placed columns
            in_basis.discard(self.basis[best_row])
            self.pivot(best_row, col)
            in_basis.add(col)
            hinted.add(col)
        # A "≥" row that is slack at the warm point starts artificial-basic
        # (its slack has coefficient −1, not +1); reinstate the slack so the
        # artificial doesn't sit at a negative level.
        for r in range(self.num_rows):
            if self.basis[r] >= self.art_start:
                slack = std.slack_of_row[r]
                if slack is not None and slack not in in_basis and self.rows[r][slack]:
                    in_basis.discard(self.basis[r])
                    self.pivot(r, slack)
                    in_basis.add(slack)
        for r in range(self.num_rows):
            if self.rows[r][-1] < 0:
                return False
            if self.basis[r] >= self.art_start and self.rows[r][-1] != 0:
                return False
        return True

    def drop_artificials(self) -> None:
        """Compact artificial columns away once phase 1 is done.

        Redundant rows can keep an artificial basic at level 0; their basis
        markers stay ≥ ``art_start`` (skipped by extraction and never chosen
        by the entering rule), while every row sheds the dead columns so
        later pivots touch fewer cells.
        """
        art_start = self.art_start
        self.rows = [row[:art_start] + [row[-1]] for row in self.rows]

    def run_phase(self, cost_index: int) -> str:
        self.phase = 1 if cost_index > self.num_rows else 2
        while True:
            bland = self.pivots >= self.bland_threshold
            col = self.entering(cost_index, bland)
            if col is None:
                return "optimal"
            row = self.leaving(col)
            if row is None:
                return "unbounded"
            self.pivot(row, col)

    def value(self, row: int, col: int) -> Fraction:
        return Fraction(self.rows[row][col], self.den)


def _build_tableau(
    std: StandardForm,
    objective: Sequence[Fraction],
    bland_threshold: int = BLAND_THRESHOLD_DEFAULT,
    max_pivots: int = MAX_PIVOTS_DEFAULT,
) -> Tuple[_Tableau, bool]:
    """Integer tableau for *std* with the slack/artificial starting basis.

    Each constraint row is scaled by the lcm of its denominators; slack and
    artificial variables are implicitly rescaled with their row, which keeps
    their columns unit columns (required for the starting basis) without
    changing the structural solution.  Returns ``(tableau, has_artificials)``
    with the phase-2 cost row at index ``num_rows`` and, when artificials
    exist, the reduced phase-1 cost row at index ``num_rows + 1``.
    """
    r, width = std.num_rows, std.total_cols + 1
    rows: List[List[int]] = []
    basis: List[int] = []
    art_index = std.art_start
    for i in range(r):
        scale = 1
        for v in std.rows[i].values():
            scale = _lcm(scale, v.denominator)
        scale = _lcm(scale, std.rhs[i].denominator)
        row = [0] * width
        # scale is a multiple of every denominator in the row: scaled
        # entries are exact in pure integer arithmetic (no Fraction mul).
        for j, v in std.rows[i].items():
            row[j] = v.numerator * (scale // v.denominator)
        if std.slack_of_row[i] is not None:
            row[std.slack_of_row[i]] = std.slack_sign[i]
        if std.needs_artificial[i]:
            row[art_index] = 1
            basis.append(art_index)
            art_index += 1
        else:
            basis.append(std.slack_of_row[i])  # type: ignore[arg-type]
        row[-1] = std.rhs[i].numerator * (scale // std.rhs[i].denominator)
        rows.append(row)

    # Phase-2 cost row (scaled to integers by its own lcm; the scale only
    # stretches reduced costs by a positive factor, so sign tests and the
    # argmin are unaffected).
    obj_scale = 1
    fr_obj = [to_fraction(c) for c in objective]
    for c in fr_obj:
        obj_scale = _lcm(obj_scale, c.denominator)
    cost2 = [0] * width
    for j, c in enumerate(fr_obj):
        cost2[j] = c.numerator * (obj_scale // c.denominator)
    rows.append(cost2)

    has_artificials = art_index > std.art_start
    if has_artificials:
        cost1 = [0] * width
        for j in range(std.art_start, std.total_cols):
            cost1[j] = 1
        # Reduce w.r.t. the artificial part of the starting basis.
        for i in range(r):
            if basis[i] >= std.art_start:
                cost1 = [a - b for a, b in zip(cost1, rows[i])]
        rows.append(cost1)

    return (
        _Tableau(rows, basis, r, std.art_start, bland_threshold, max_pivots),
        has_artificials,
    )


def _point_hints(point: Sequence[Fraction]) -> List[int]:
    """Support of a warm-start point, largest value first (deterministic)."""
    support = [(v, j) for j, v in enumerate(point) if v > 0]
    support.sort(key=lambda pair: (-pair[0], pair[1]))
    return [j for _v, j in support]


#: Relative slack below which a row counts as tight at a warm-start point.
#: Only a *heuristic* (the crash result is verified exactly afterwards), so
#: the tolerance exists to keep rationalization noise from hiding a row that
#: is tight at the true vertex.
_TIGHT_EPS = 1e-9


def _tight_rows(
    coeff_rows: Sequence[Dict[int, Fraction]],
    senses: Sequence[str],
    rhs: Sequence[Fraction],
    point: Sequence[Fraction],
) -> List[bool]:
    """Which rows hold with (near-)equality at *point*.

    Equality rows count as tight regardless of the (possibly noisy) point —
    their artificial has to leave the basis either way.
    """
    flags: List[bool] = []
    # Float throughout: this is a heuristic with a relative tolerance nine
    # orders of magnitude above float dot-product noise, and the crash it
    # feeds is verified exactly afterwards.  Exact Fraction accumulation
    # here used to be one of the most expensive steps of a warm solve.
    fpoint = [float(v) for v in point]
    for row, sense, b in zip(coeff_rows, senses, rhs):
        if sense == "==":
            flags.append(True)
            continue
        activity = 0.0
        for j, v in row.items():
            pj = fpoint[j]
            if pj:
                activity += float(v) * pj
        fb = float(b)
        flags.append(abs(activity - fb) <= _TIGHT_EPS * max(1.0, abs(fb)))
    return flags


def _canonicalize_tableau(tab: _Tableau, std: StandardForm) -> None:
    """Pivot within the optimal face to the lex-min optimal vertex.

    The tableau twin of ``_RevisedSolver.canonicalize`` — Bland's rule on
    the ε-perturbed objective over the zero-reduced-cost columns (see the
    revised kernel for the full argument).  From the same basis both
    kernels pick identical entering/leaving pairs (the cost row entry is
    zero exactly when the revised reduced cost is, and ``rows[r][j]`` is
    the same den-scaled ᾱ ``row_dot`` computes), so the kernels stay
    pivot-for-pivot identical through the cleanup as well.
    """
    n = std.n
    limit = std.art_start
    r_count = tab.num_rows
    while True:
        cost_row = tab.rows[r_count]
        basics = sorted(
            (tab.basis[r], r) for r in range(r_count) if tab.basis[r] < n
        )
        in_basis = set(tab.basis)
        enter: Optional[int] = None
        for j in range(limit):
            if j in in_basis or cost_row[j] != 0:
                continue
            improving = False
            for k, rr in basics:
                if k >= j:
                    break  # j's own +1 lex component: not improving
                d = tab.rows[rr][j]
                if d > 0:
                    improving = True
                    break
                if d < 0:
                    break
            if improving:
                enter = j
                break
        if enter is None:
            return
        row = tab.leaving(enter)
        if row is None:  # pragma: no cover - lex objective bounded on x≥0
            return
        tab.pivot(row, enter)


def _tableau_warm_state(
    tab: _Tableau, std: StandardForm, x: Sequence[Fraction], token: object
) -> WarmState:
    """Package the tableau's final basis as a (lub-less) :class:`WarmState`.

    A consumer factorizes the labelled columns directly (the tableau keeps
    no basis inverse to reinstall), so ``scales`` is empty and ``token`` is
    carried only for symmetry with the revised kernel.
    """
    slack_row = {s: i for i, s in enumerate(std.slack_of_row) if s is not None}
    art_row: Dict[int, int] = {}
    art_index = std.art_start
    for i in range(std.num_rows):
        if std.needs_artificial[i]:
            art_row[art_index] = i
            art_index += 1
    labels: List[Tuple[str, object]] = []
    for b in tab.basis:
        if b < std.n:
            labels.append(("x", b))
        elif b >= std.art_start:
            labels.append(("a", art_row[b]))
        else:
            labels.append(("s", slack_row[b]))
    point = {j: x[j] for j in range(std.n) if x[j]}
    return WarmState(
        labels, std.num_rows, std.n, (), lub=None, token=token, point=point
    )


def solve_standard(
    coeff_rows: Sequence[Dict[int, Fraction]],
    senses: Sequence[str],
    rhs: Sequence[Fraction],
    objective: Sequence[Fraction],
    warm_hints: Optional[Sequence[int]] = None,
    warm_point: Optional[Sequence[Fraction]] = None,
    kernel: Optional[str] = None,
    bland_threshold: Optional[int] = None,
    max_pivots: Optional[int] = None,
    pricing: Optional[str] = None,
    warm_state: Optional[WarmState] = None,
    structure_token: object = None,
    canonical: "bool | str" = True,
) -> SimplexResult:
    """Solve ``min c·x  s.t.  rows, x ≥ 0`` exactly.

    *coeff_rows* are sparse ``{var_index: coefficient}`` mappings; *senses*
    entries are ``"<="``, ``">="`` or ``"=="``.  The returned ``x`` is a
    basic solution: at most ``len(coeff_rows)`` entries are non-zero.

    *kernel* selects the exact pivoting engine: ``"revised"`` (default —
    lazy pricing over the factorized basis of :mod:`repro.lp.revised`) or
    ``"tableau"`` (the dense fraction-free tableau below).  Both are exact
    and return the same statuses/objectives; from a cold start with full
    Dantzig pricing they pivot identically.

    *bland_threshold* / *max_pivots* override the anti-cycling switchover
    and the pivot budget (:data:`BLAND_THRESHOLD_DEFAULT` /
    :data:`MAX_PIVOTS_DEFAULT`); exhausting the budget raises the
    structured :class:`~repro.exceptions.PivotLimitError`.

    Warm starts (see the module docstring) can only speed the solve up,
    never change its guarantees: *warm_point* is a candidate solution whose
    support and tight rows seed a crash basis; *warm_hints* is the bare
    column-index form used when no full point is available; *warm_state* is
    a carried :class:`~repro.lp.warm.WarmState` whose basis (labels in this
    LP's index space) skips phase 1 and the crash push outright when it is
    still feasible — *structure_token* additionally authorizes verbatim
    ``W`` reuse (see :mod:`repro.lp.warm`).  Optimal results carry the next
    solve's ``warm_state``.

    *canonical* picks the vertex-identity contract.  ``True`` (the
    default) returns a deterministic, kernel-invariant vertex: with
    ``pricing=None`` the solve pins Dantzig (both kernels pivot
    identically, so results stay byte-compatible across kernels and code
    generations for free), and an explicitly non-Dantzig pricing gets a
    lexicographic cleanup instead.  ``"lex"`` always pivots the optimum to
    the lexicographically minimal vertex — identical across kernels,
    pricing rules *and* warm starts.  ``False`` skips all of it:
    probe-style callers that need only feasibility or the objective value
    take the process-default pricing (normally ``partial``) and whatever
    vertex the solve lands on.
    """
    kernel = kernel or _default_kernel
    if kernel not in KERNELS:
        raise SolverError(f"unknown kernel {kernel!r}; choose from {KERNELS}")
    if kernel == "revised":
        from .revised import solve_standard_revised

        if pricing is None:
            # Canonical solves default to Dantzig: it is kernel-invariant
            # by construction (the tableau twin pivots identically), so the
            # deterministic vertex costs nothing extra.  Non-canonical
            # (probe-style) solves take the process default pricing.
            pricing = "dantzig" if canonical is True else _default_pricing
        return solve_standard_revised(
            coeff_rows, senses, rhs, objective,
            warm_hints=warm_hints, warm_point=warm_point,
            bland_threshold=bland_threshold, max_pivots=max_pivots,
            pricing=pricing,
            warm_state=warm_state, structure_token=structure_token,
            canonical=canonical,
        )
    if pricing not in (None, "dantzig"):
        raise SolverError(
            f"pricing {pricing!r} requires kernel='revised' (the tableau "
            f"kernel always prices with Dantzig→Bland)"
        )

    from ..obs.trace import span as trace_span

    bland_threshold = (
        BLAND_THRESHOLD_DEFAULT if bland_threshold is None else bland_threshold
    )
    max_pivots = default_max_pivots() if max_pivots is None else max_pivots
    stats = SolverStats(solves=1)
    stats.count_kernel("tableau")
    with trace_span(
        "lp.solve", kernel="tableau", rows=len(coeff_rows), cols=len(objective),
    ) as solve_sp:
        std = standard_form(coeff_rows, senses, rhs, objective)
        tab, has_artificials = _build_tableau(std, objective, bland_threshold, max_pivots)
        r = std.num_rows

        if warm_state is not None:
            # The tableau kernel has no factorized basis to reinstall; a
            # carried state degrades to its labels (as column hints) and
            # its vertex (as a warm point).
            state_hints = [
                payload
                for kind, payload in warm_state.labels
                if kind == "x" and isinstance(payload, int)
                and 0 <= payload < std.n
            ]
            warm_hints = state_hints + list(warm_hints or [])
            if warm_point is None and warm_state.point:
                pt = [Fraction(0)] * std.n
                for payload, value in warm_state.point.items():
                    if isinstance(payload, int) and 0 <= payload < std.n:
                        pt[payload] = to_fraction(value)
                warm_point = pt

        eligible: Optional[List[bool]] = None
        if warm_point is not None and len(warm_point) == std.n:
            point = [to_fraction(v) for v in warm_point]
            warm_hints = _point_hints(point) + list(warm_hints or [])
            eligible = _tight_rows(coeff_rows, senses, rhs, point)

        crashed = False
        if warm_hints:
            stats.warm_start_attempts += 1
            with trace_span("lp.crash", hints=len(warm_hints)) as crash_sp:
                crashed = tab.crash_basis(warm_hints, std, eligible)
                if crashed:
                    stats.warm_start_hits += 1
                else:
                    # The crash left an infeasible dictionary; rebuild and
                    # fall back to ratio-test pushes (always legal, merely
                    # less direct).
                    tab, has_artificials = _build_tableau(
                        std, objective, bland_threshold, max_pivots
                    )
                    tab.push_hints(warm_hints)
                if crash_sp:
                    crash_sp.attrs["hit"] = crashed
                    crash_sp.attrs["pivots"] = tab.pivots

        # ------------- Phase 1: minimize the sum of artificials ------------
        if has_artificials:
            if not crashed:
                before = tab.pivots
                with trace_span("lp.phase1") as phase_sp:
                    status = tab.run_phase(r + 1)
                    if phase_sp:
                        phase_sp.attrs["pivots"] = tab.pivots - before
                stats.phase1_pivots += tab.pivots - before
                if status == "unbounded":  # pragma: no cover - impossible: cost ≥ 0
                    raise SolverError("phase-1 objective unbounded")
                if tab.rows[r + 1][-1] < 0:  # objective −rhs/den still positive
                    stats.pivots = tab.pivots
                    record(stats)
                    if solve_sp:
                        solve_sp.attrs["status"] = "infeasible"
                    return SimplexResult(
                        "infeasible", [], None, None, tab.pivots, stats=stats
                    )
            # Drive any zero-level artificials out of the basis.  This is
            # load-bearing, not cosmetic: a basic artificial at level 0 whose
            # row has non-zero structural entries could be lifted off zero by
            # a later phase-2 pivot, silently voiding an equality row.
            for i in range(r):
                if tab.basis[i] >= std.art_start:
                    pivot_col = None
                    row_i = tab.rows[i]
                    for j in range(std.art_start):
                        if row_i[j] != 0:
                            pivot_col = j
                            break
                    if pivot_col is not None:
                        tab.pivot(i, pivot_col)
                    # else: the row is all-zero outside its artificial column
                    # (redundant constraint); the artificial stays basic at 0
                    # and nothing can move it.
            tab.rows.pop()  # drop the phase-1 cost row
            tab.drop_artificials()

        # ------------- Phase 2: original objective -------------------------
        phase1_total = tab.pivots
        with trace_span("lp.phase2") as phase_sp:
            status = tab.run_phase(r)
            if phase_sp:
                phase_sp.attrs["pivots"] = tab.pivots - phase1_total
        if status == "optimal" and canonical == "lex":
            # Dantzig→Bland is already deterministic and kernel-invariant,
            # so plain ``canonical=True`` needs no cleanup here; only the
            # strong warm-start-independent contract pivots to lex-min.
            _canonicalize_tableau(tab, std)
        stats.pivots = tab.pivots
        record(stats)
        if solve_sp:
            solve_sp.attrs["status"] = status
            solve_sp.attrs["pivots"] = tab.pivots
        if status == "unbounded":
            return SimplexResult(
                "unbounded", [], None, list(tab.basis), tab.pivots, stats=stats
            )

        n = std.n
        x = [Fraction(0)] * n
        for i in range(r):
            if tab.basis[i] < n:
                x[tab.basis[i]] = tab.value(i, -1)
        objective_value = sum(
            (to_fraction(objective[j]) * x[j] for j in range(n) if x[j]), Fraction(0)
        )
        return SimplexResult(
            "optimal", x, objective_value, list(tab.basis), tab.pivots, stats=stats,
            warm_state=_tableau_warm_state(tab, std, x, structure_token),
        )
