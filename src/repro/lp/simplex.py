"""Exact two-phase simplex over the rationals.

The rounding arguments of Sections V and VI need *basic* feasible solutions:
Lenstra–Shmoys–Tardos relies on the pseudo-forest structure of a vertex's
support, and Lemma VI.2's iterative relaxation counts fractional variables at
a vertex.  Floating-point solvers return "almost" vertices; telling a
fractional value from numeric noise then needs tolerances that can break the
combinatorial arguments.  This implementation works on
:class:`~fractions.Fraction` throughout, so support and fractionality are
exact properties.

Algorithm: classic dense-tableau two-phase simplex.  Pivoting uses Dantzig's
rule for speed and switches to Bland's rule (which cannot cycle) once the
iteration count exceeds a threshold, so termination is guaranteed.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from .._fraction import to_fraction
from ..exceptions import SolverError, UnboundedError

#: After this many pivots the pivot rule switches to Bland's (anti-cycling).
_BLAND_THRESHOLD = 5000
#: Hard cap — exceeded only by a bug, not by honest degeneracy.
_MAX_PIVOTS = 200000


@dataclass
class SimplexResult:
    status: str  # "optimal" | "infeasible" | "unbounded"
    x: List[Fraction]
    objective: Optional[Fraction]
    basis: Optional[List[int]]

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"


def _pivot(tableau: List[List[Fraction]], basis: List[int], row: int, col: int) -> None:
    """Pivot the tableau on (row, col); updates basis in place."""
    pivot_row = tableau[row]
    pivot_val = pivot_row[col]
    if pivot_val == 0:
        raise SolverError("zero pivot element")
    inv = Fraction(1) / pivot_val
    tableau[row] = [value * inv for value in pivot_row]
    pivot_row = tableau[row]
    for r, other in enumerate(tableau):
        if r == row:
            continue
        factor = other[col]
        if factor == 0:
            continue
        tableau[r] = [a - factor * b for a, b in zip(other, pivot_row)]
    basis[row] = col


def _choose_entering(cost_row: Sequence[Fraction], num_cols: int, bland: bool) -> Optional[int]:
    """Index of an improving column (negative reduced cost), or None."""
    if bland:
        for j in range(num_cols):
            if cost_row[j] < 0:
                return j
        return None
    best_j: Optional[int] = None
    best_val = Fraction(0)
    for j in range(num_cols):
        if cost_row[j] < best_val:
            best_val = cost_row[j]
            best_j = j
    return best_j


def _choose_leaving(
    tableau: List[List[Fraction]], basis: List[int], col: int, num_rows: int
) -> Optional[int]:
    """Min-ratio test; ties broken by smallest basis index (Bland-safe)."""
    best_row: Optional[int] = None
    best_ratio: Optional[Fraction] = None
    for r in range(num_rows):
        a = tableau[r][col]
        if a <= 0:
            continue
        ratio = tableau[r][-1] / a
        if best_ratio is None or ratio < best_ratio or (
            ratio == best_ratio and basis[r] < basis[best_row]  # type: ignore[index]
        ):
            best_ratio = ratio
            best_row = r
    return best_row


def _run_phase(
    tableau: List[List[Fraction]],
    basis: List[int],
    num_rows: int,
    num_cols: int,
    pivots_done: int,
) -> Tuple[str, int]:
    """Iterate until optimal/unbounded; cost row is tableau[num_rows]."""
    cost_row = tableau[num_rows]
    pivots = pivots_done
    while True:
        bland = pivots >= _BLAND_THRESHOLD
        entering = _choose_entering(cost_row, num_cols, bland)
        if entering is None:
            return "optimal", pivots
        leaving = _choose_leaving(tableau, basis, entering, num_rows)
        if leaving is None:
            return "unbounded", pivots
        _pivot(tableau, basis, leaving, entering)
        cost_row = tableau[num_rows]
        pivots += 1
        if pivots > _MAX_PIVOTS:
            raise SolverError("simplex exceeded the pivot budget (cycling bug?)")


def solve_standard(
    coeff_rows: Sequence[Dict[int, Fraction]],
    senses: Sequence[str],
    rhs: Sequence[Fraction],
    objective: Sequence[Fraction],
) -> SimplexResult:
    """Solve ``min c·x  s.t.  rows, x ≥ 0`` exactly.

    *coeff_rows* are sparse ``{var_index: coefficient}`` mappings; *senses*
    entries are ``"<="``, ``">="`` or ``"=="``.  The returned ``x`` is a
    basic solution: at most ``len(coeff_rows)`` entries are non-zero.
    """
    n = len(objective)
    r = len(coeff_rows)
    if len(senses) != r or len(rhs) != r:
        raise SolverError("rows, senses and rhs must have equal length")

    # Normalize to b ≥ 0 and attach slack / artificial columns.
    slack_cols: List[Tuple[int, Fraction]] = []  # (row, sign)
    artificial_rows: List[int] = []
    norm_rows: List[Dict[int, Fraction]] = []
    norm_rhs: List[Fraction] = []
    norm_senses: List[str] = []
    for i in range(r):
        row = dict(coeff_rows[i])
        b = to_fraction(rhs[i])
        sense = senses[i]
        if b < 0:
            row = {j: -v for j, v in row.items()}
            b = -b
            sense = {"<=": ">=", ">=": "<=", "==": "=="}[sense]
        norm_rows.append(row)
        norm_rhs.append(b)
        norm_senses.append(sense)

    num_slack = sum(1 for s in norm_senses if s in ("<=", ">="))
    total_cols = n + num_slack  # artificials appended after
    slack_index = n
    slack_of_row: List[Optional[int]] = [None] * r
    slack_sign: List[Fraction] = [Fraction(0)] * r
    for i, sense in enumerate(norm_senses):
        if sense == "<=":
            slack_of_row[i] = slack_index
            slack_sign[i] = Fraction(1)
            slack_index += 1
        elif sense == ">=":
            slack_of_row[i] = slack_index
            slack_sign[i] = Fraction(-1)
            slack_index += 1

    needs_artificial = [
        sense in (">=", "==") for sense in norm_senses
    ]
    num_artificial = sum(needs_artificial)
    art_start = total_cols
    total_with_art = total_cols + num_artificial

    # Build the tableau: r constraint rows + 1 cost row; last column is rhs.
    tableau: List[List[Fraction]] = []
    basis: List[int] = []
    art_index = art_start
    zero = Fraction(0)
    for i in range(r):
        row = [zero] * (total_with_art + 1)
        for j, v in norm_rows[i].items():
            row[j] = v
        if slack_of_row[i] is not None:
            row[slack_of_row[i]] = slack_sign[i]
        if needs_artificial[i]:
            row[art_index] = Fraction(1)
            basis.append(art_index)
            art_index += 1
        else:
            basis.append(slack_of_row[i])  # type: ignore[arg-type]
        row[-1] = norm_rhs[i]
        tableau.append(row)

    # ---------------- Phase 1: minimize the sum of artificials -------------
    pivots = 0
    if num_artificial:
        cost = [zero] * (total_with_art + 1)
        for j in range(art_start, total_with_art):
            cost[j] = Fraction(1)
        tableau.append(cost)
        # Express the cost row in terms of the non-basic variables.
        for i in range(r):
            if basis[i] >= art_start:
                tableau[r] = [a - b for a, b in zip(tableau[r], tableau[i])]
        status, pivots = _run_phase(tableau, basis, r, total_with_art, 0)
        if status == "unbounded":  # pragma: no cover - impossible: cost ≥ 0
            raise SolverError("phase-1 objective unbounded")
        phase1_obj = -tableau[r][-1]
        if phase1_obj > 0:
            return SimplexResult("infeasible", [], None, None)
        # Drive any zero-level artificials out of the basis.
        for i in range(r):
            if basis[i] >= art_start:
                pivot_col = None
                for j in range(total_cols):
                    if tableau[i][j] != 0:
                        pivot_col = j
                        break
                if pivot_col is not None:
                    _pivot(tableau, basis, i, pivot_col)
                # else: redundant row; the artificial stays basic at 0, which
                # is harmless as long as its column never re-enters.
        tableau.pop()  # drop the phase-1 cost row

    # ---------------- Phase 2: original objective --------------------------
    cost = [zero] * (total_with_art + 1)
    for j in range(n):
        cost[j] = to_fraction(objective[j])
    # Forbid artificials from re-entering.
    tableau.append(cost)
    for i in range(r):
        cb = cost[basis[i]] if basis[i] < n else zero
        if cb != 0:
            tableau[r] = [a - cb * b for a, b in zip(tableau[r], tableau[i])]
    # Zero out reduced costs of artificial columns so they are never chosen;
    # mark them unattractive by forcing non-negative reduced cost.
    for j in range(art_start, total_with_art):
        if tableau[r][j] < 0:
            tableau[r][j] = zero
    status, pivots = _run_phase(tableau, basis, r, total_cols, pivots)
    if status == "unbounded":
        return SimplexResult("unbounded", [], None, basis)

    x = [zero] * n
    for i in range(r):
        if basis[i] < n:
            x[basis[i]] = tableau[i][-1]
    objective_value = sum(
        (to_fraction(objective[j]) * x[j] for j in range(n)), Fraction(0)
    )
    return SimplexResult("optimal", x, objective_value, list(basis))
