"""Unified LP solving entry point with backend dispatch."""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Optional

from ..exceptions import SolverError
from .model import LinearProgram, LPSolution
from .scipy_backend import solve_standard_float
from .simplex import SimplexResult, solve_standard

BACKENDS = ("exact", "scipy")

#: Problem size (variables × rows) above which "auto" prefers the float backend.
_AUTO_SIZE_LIMIT = 20000


def solve_lp(lp: LinearProgram, backend: str = "exact") -> LPSolution:
    """Solve *lp* (minimization) and map values back to variable keys.

    ``backend="exact"`` guarantees a rational basic solution;
    ``backend="scipy"`` is faster on large programs and rationalizes its
    output; ``backend="auto"`` picks by problem size.
    """
    if backend == "auto":
        size = lp.num_variables * max(lp.num_constraints, 1)
        backend = "exact" if size <= _AUTO_SIZE_LIMIT else "scipy"
    if backend not in BACKENDS:
        raise SolverError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    coeff_rows, senses, rhs, objective = lp.to_standard_rows()
    if backend == "exact":
        result = solve_standard(coeff_rows, senses, rhs, objective)
    else:
        result = solve_standard_float(coeff_rows, senses, rhs, objective)
    if result.status != "optimal":
        return LPSolution(status=result.status, values={}, objective=None)
    values: Dict = {}
    for key in lp.variable_keys:
        values[key] = result.x[lp.index_of(key)]
    return LPSolution(status="optimal", values=values, objective=result.objective)


def is_feasible(lp: LinearProgram, backend: str = "exact") -> bool:
    """Feasibility check: solve with a zero objective."""
    solution = solve_lp(lp, backend=backend)
    return solution.is_optimal
