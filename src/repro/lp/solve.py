"""Unified LP solving entry point with backend and kernel dispatch.

Backends
--------
``"exact"``
    Exact rational simplex.  Guaranteed exact optimal *basic* solutions;
    the reference everything else is certified against.
``"scipy"``
    HiGHS floats, rationalized on the way out.  Fast but **uncertified**:
    values may violate constraints by rounding hairs and need not be
    vertices.  Callers must re-check (see
    :meth:`~repro.lp.model.LinearProgram.check_values`) before feeding the
    result to anything that needs exactness.
``"hybrid"``
    HiGHS candidate + exact verification/repair (see :mod:`repro.lp.hybrid`).
    Same guarantees as ``"exact"``, close to ``"scipy"`` speed on anything
    large enough for the float probe to pay off.  Degrades to ``"exact"``
    when scipy is unavailable.
``"auto"``
    ``"exact"`` for small programs, ``"hybrid"`` beyond
    :data:`_AUTO_SIZE_LIMIT`.

Kernels
-------
Orthogonal to the backend, the *exact* pivoting engine is selectable:
``"revised"`` (default — lazy pricing over a fraction-free factorized
basis, :mod:`repro.lp.revised`) or ``"tableau"`` (dense fraction-free
tableau, :mod:`repro.lp.simplex`).  Both are exact; the revised kernel does
``O(rows²)`` work per pivot instead of ``O(rows·cols)``.
``repro … --kernel`` sets the process-wide default.

Warm starts: pass ``warm_values`` (a previously feasible point keyed like
the program's variables) and the exact/hybrid backends factorize its
support into the starting basis, typically skipping phase 1 entirely.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .._fraction import to_fraction
from ..exceptions import SolverError
from .hybrid import HAVE_SCIPY, solve_standard_hybrid
from .model import LinearProgram, LPSolution, VarKey
from .simplex import solve_standard

if HAVE_SCIPY:
    from .scipy_backend import solve_standard_float
else:  # pragma: no cover - scipy is present in CI images
    solve_standard_float = None  # type: ignore[assignment]

BACKENDS = ("exact", "scipy", "hybrid")

#: Problem size (variables × rows) above which "auto" prefers hybrid.
_AUTO_SIZE_LIMIT = 20000


def _resolve_backend(backend: str, lp: LinearProgram) -> str:
    if backend == "auto":
        size = lp.num_variables * max(lp.num_constraints, 1)
        backend = "exact" if size <= _AUTO_SIZE_LIMIT else "hybrid"
    if backend not in BACKENDS:
        raise SolverError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    if backend in ("scipy", "hybrid") and not HAVE_SCIPY:
        if backend == "scipy":
            raise SolverError("backend 'scipy' requested but scipy is not installed")
        backend = "exact"  # hybrid degrades gracefully, guarantees intact
    return backend


def _warm_point(
    lp: LinearProgram, warm_values: Optional[Mapping[VarKey, Fraction]]
) -> Optional[List[Fraction]]:
    """A prior point as a dense structural vector (missing keys read as 0)."""
    if not warm_values:
        return None
    point = [Fraction(0)] * lp.num_variables
    found = False
    for key, value in warm_values.items():
        if lp.has_variable(key):
            value = to_fraction(value)
            if value != 0:
                point[lp.index_of(key)] = value
                found = True
    return point if found else None


def solve_lp(
    lp: LinearProgram,
    backend: str = "exact",
    warm_values: Optional[Mapping[VarKey, Fraction]] = None,
    kernel: Optional[str] = None,
) -> LPSolution:
    """Solve *lp* (minimization) and map values back to variable keys.

    See the module docstring for the per-backend guarantees.  *warm_values*
    is an optional previously-feasible point used to warm-start the
    exact/hybrid backends; it never changes the result, only the pivot
    path.  *kernel* selects the exact pivoting engine (``None`` = the
    process default, normally ``"revised"``).
    """
    backend = _resolve_backend(backend, lp)
    coeff_rows, senses, rhs, objective = lp.to_standard_rows()
    if backend == "exact":
        result = solve_standard(
            coeff_rows, senses, rhs, objective,
            warm_point=_warm_point(lp, warm_values), kernel=kernel,
        )
    elif backend == "hybrid":
        result = solve_standard_hybrid(
            coeff_rows, senses, rhs, objective,
            warm_point=_warm_point(lp, warm_values), kernel=kernel,
        )
    else:
        result = solve_standard_float(coeff_rows, senses, rhs, objective)
    if result.status != "optimal":
        return LPSolution(
            status=result.status, values={}, objective=None, stats=result.stats
        )
    values: Dict = {}
    for key in lp.variable_keys:
        values[key] = result.x[lp.index_of(key)]
    return LPSolution(
        status="optimal", values=values, objective=result.objective,
        stats=result.stats,
    )


def check_standard_rows(
    coeff_rows: Sequence[Dict[int, Fraction]],
    senses: Sequence[str],
    rhs: Sequence[Fraction],
    x: Sequence[Fraction],
) -> bool:
    """Exactly verify ``x ≥ 0`` against the rows (no tolerances).

    The raw-row counterpart of
    :meth:`~repro.lp.model.LinearProgram.check_values`; this is the gate
    that certifies float candidates — and re-certifies cached points in the
    incremental probe pipeline — without an exact solve.
    """
    if any(v < 0 for v in x):
        return False
    for row, sense, b in zip(coeff_rows, senses, rhs):
        lhs = sum((v * x[j] for j, v in row.items() if x[j]), Fraction(0))
        b = to_fraction(b)
        ok = (
            lhs <= b if sense == "<="
            else lhs >= b if sense == ">="
            else lhs == b
        )
        if not ok:
            return False
    return True


def feasible_point_rows(
    coeff_rows: Sequence[Dict[int, Fraction]],
    senses: Sequence[str],
    rhs: Sequence[Fraction],
    num_vars: int,
    backend: str = "hybrid",
    warm_point: Optional[Sequence[Fraction]] = None,
    kernel: Optional[str] = None,
) -> Tuple[Optional[List[Fraction]], Optional[List[Fraction]]]:
    """Certified feasibility probe on raw standard rows.

    Returns ``(point, farkas)``: exactly one of the two is non-``None``
    unless the program is infeasible without an available certificate
    (``(None, None)``).  The point is **exactly** feasible; the certificate
    is **exactly** verified (see :mod:`repro.lp.certificates`).  This is
    the primitive behind the incremental binary-search pipeline of
    :class:`repro.core.programs.IP3Builder`, which calls it with masked row
    views instead of materialized :class:`~repro.lp.model.LinearProgram`
    objects.
    """
    from .hybrid import _FLOAT_SIZE_CUTOFF, certify_infeasible, float_candidate

    if backend not in BACKENDS and backend != "auto":
        raise SolverError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    use_float = (
        backend in ("hybrid", "scipy", "auto")
        and HAVE_SCIPY
        and num_vars * max(len(coeff_rows), 1) >= _FLOAT_SIZE_CUTOFF
    )
    objective = [Fraction(0)] * num_vars
    if use_float:
        candidate = float_candidate(coeff_rows, senses, rhs, objective)
        if candidate is not None and candidate.status == "optimal":
            if check_standard_rows(coeff_rows, senses, rhs, candidate.x):
                return list(candidate.x), None  # certified by the re-check
            warm_point = candidate.x  # uncertified: warm-start the repair
        elif candidate is not None and candidate.status == "infeasible":
            farkas = certify_infeasible(
                coeff_rows, senses, rhs, num_vars=num_vars
            )
            if farkas is not None:
                return None, farkas
    result = solve_standard(
        coeff_rows, senses, rhs, objective,
        warm_point=warm_point, kernel=kernel,
    )
    if result.status != "optimal":
        return None, result.farkas
    return result.x, None


def feasible_point(
    lp: LinearProgram,
    backend: str = "exact",
    warm_values: Optional[Mapping[VarKey, Fraction]] = None,
    kernel: Optional[str] = None,
) -> Optional[Dict[VarKey, Fraction]]:
    """An **exactly certified** feasible point of *lp*, or ``None``.

    This is the cheap primitive behind feasibility probes (the binary search
    of ``minimal_fractional_T`` fires hundreds of them).  With the hybrid
    backend, a rationalized HiGHS point that passes the exact re-check is
    returned directly — no exact pivoting at all; the point is feasible but
    not necessarily basic, which is all a feasibility verdict needs.  Every
    other path (check fails, float says infeasible, non-hybrid backend)
    falls through to a certified solve, warm-started from *warm_values*
    (e.g. the bracketing probe's point) when given.

    With ``backend="scipy"`` the point is re-checked exactly as well, and
    rejected (exact re-solve) instead of propagated when uncertified.
    """
    from .hybrid import _FLOAT_SIZE_CUTOFF

    backend = _resolve_backend(backend, lp)
    size = lp.num_variables * max(lp.num_constraints, 1)
    if backend == "hybrid" and size < _FLOAT_SIZE_CUTOFF:
        backend = "exact"  # linprog overhead exceeds a cold exact solve
    coeff_rows, senses, rhs, objective = lp.to_standard_rows()
    if backend in ("hybrid", "scipy"):
        point, _farkas = feasible_point_rows(
            coeff_rows, senses, rhs, lp.num_variables,
            backend=backend, warm_point=_warm_point(lp, warm_values),
            kernel=kernel,
        )
    else:
        result = solve_standard(
            coeff_rows, senses, rhs, objective,
            warm_point=_warm_point(lp, warm_values), kernel=kernel,
        )
        point = result.x if result.status == "optimal" else None
    if point is None:
        return None
    return {key: point[lp.index_of(key)] for key in lp.variable_keys}


def is_feasible(
    lp: LinearProgram, backend: str = "exact", kernel: Optional[str] = None
) -> bool:
    """Certified feasibility check (see :func:`feasible_point`)."""
    return feasible_point(lp, backend=backend, kernel=kernel) is not None
