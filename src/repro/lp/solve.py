"""Unified LP solving entry point with backend and kernel dispatch.

Backends
--------
``"exact"``
    Exact rational simplex.  Guaranteed exact optimal *basic* solutions;
    the reference everything else is certified against.
``"scipy"``
    HiGHS floats, rationalized on the way out.  Fast but **uncertified**:
    values may violate constraints by rounding hairs and need not be
    vertices.  Callers must re-check (see
    :meth:`~repro.lp.model.LinearProgram.check_values`) before feeding the
    result to anything that needs exactness.
``"hybrid"``
    HiGHS candidate + exact verification/repair (see :mod:`repro.lp.hybrid`).
    Same guarantees as ``"exact"``, close to ``"scipy"`` speed on anything
    large enough for the float probe to pay off.  Degrades to ``"exact"``
    when scipy is unavailable.
``"auto"``
    ``"exact"`` for small programs, ``"hybrid"`` beyond
    :data:`_AUTO_SIZE_LIMIT`.

Kernels
-------
Orthogonal to the backend, the *exact* pivoting engine is selectable:
``"revised"`` (default — lazy pricing over a fraction-free factorized
basis, :mod:`repro.lp.revised`) or ``"tableau"`` (dense fraction-free
tableau, :mod:`repro.lp.simplex`).  Both are exact; the revised kernel does
``O(rows²)`` work per pivot instead of ``O(rows·cols)``.
``repro … --kernel`` sets the process-wide default.

Warm starts: pass ``warm_values`` (a previously feasible point keyed like
the program's variables) and the exact/hybrid backends factorize its
support into the starting basis, typically skipping phase 1 entirely.
"""

from __future__ import annotations

import logging
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .._fraction import to_fraction
from ..exceptions import SolverError
from .hybrid import HAVE_SCIPY, solve_standard_hybrid
from .model import LinearProgram, LPSolution, VarKey
from .simplex import solve_standard
from .stats import SolverStats, record
from .warm import WarmState

logger = logging.getLogger(__name__)

if HAVE_SCIPY:
    from .scipy_backend import solve_standard_float
else:  # pragma: no cover - scipy is present in CI images
    solve_standard_float = None  # type: ignore[assignment]

BACKENDS = ("exact", "scipy", "hybrid")

#: Problem size (variables × rows) above which "auto" prefers hybrid.
_AUTO_SIZE_LIMIT = 20000


def _resolve_backend(backend: str, lp: LinearProgram) -> str:
    if backend == "auto":
        size = lp.num_variables * max(lp.num_constraints, 1)
        backend = "exact" if size <= _AUTO_SIZE_LIMIT else "hybrid"
    if backend not in BACKENDS:
        raise SolverError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    if backend in ("scipy", "hybrid") and not HAVE_SCIPY:
        if backend == "scipy":
            raise SolverError("backend 'scipy' requested but scipy is not installed")
        backend = "exact"  # hybrid degrades gracefully, guarantees intact
    return backend


def _warm_point(
    lp: LinearProgram, warm_values: Optional[Mapping[VarKey, Fraction]]
) -> Tuple[Optional[List[Fraction]], int]:
    """A prior point as a dense structural vector (missing keys read as 0).

    Returns ``(point, dropped)`` where *dropped* counts warm keys absent
    from the target LP.  Drops are expected across structurally different
    re-solves (masked probes, min-T), but a persistently high count means a
    caller is warm-starting from the wrong space — so they are surfaced in
    ``SolverStats.warm_key_drops`` and a debug log rather than silently
    swallowed as before.
    """
    if not warm_values:
        return None, 0
    point = [Fraction(0)] * lp.num_variables
    found = False
    dropped = 0
    for key, value in warm_values.items():
        if lp.has_variable(key):
            value = to_fraction(value)
            if value != 0:
                point[lp.index_of(key)] = value
                found = True
        else:
            dropped += 1
    if dropped and logger.isEnabledFor(logging.DEBUG):
        logger.debug(
            "warm start dropped %d key(s) absent from the target LP "
            "(%d variables)", dropped, lp.num_variables,
        )
    return (point if found else None), dropped


def _count_warm_drops(drops: int, stats) -> None:
    """Fold *drops* into the per-solve stats and the active scopes/sinks.

    ``record`` was already called inside the solve, so the per-solve object
    must be patched *and* a delta recorded for scope aggregates and span
    sinks to see the count.
    """
    if not drops:
        return
    if stats is not None:
        stats.warm_key_drops += drops
    record(SolverStats(warm_key_drops=drops))


def _local_warm_state(
    lp: LinearProgram, state: Optional[WarmState]
) -> Optional[WarmState]:
    """Relabel a keyed :class:`WarmState` into *lp*'s column space."""
    if state is None:
        return None
    return state.relabel(
        lambda key: lp.index_of(key) if lp.has_variable(key) else None,
        new_n=lp.num_variables,
    )


def _keyed_warm_state(lp: LinearProgram, state) -> Optional[WarmState]:
    """Relabel a solver-produced :class:`WarmState` onto variable keys."""
    if state is None:
        return None
    keys = lp.variable_keys
    return state.relabel(
        lambda j: keys[j] if isinstance(j, int) and 0 <= j < len(keys) else None
    )


def solve_lp(
    lp: LinearProgram,
    backend: str = "exact",
    warm_values: Optional[Mapping[VarKey, Fraction]] = None,
    kernel: Optional[str] = None,
    warm_state: Optional[WarmState] = None,
    structure_token: object = None,
    canonical: "bool | str" = True,
) -> LPSolution:
    """Solve *lp* (minimization) and map values back to variable keys.

    See the module docstring for the per-backend guarantees.  *warm_values*
    is an optional previously-feasible point used to warm-start the
    exact/hybrid backends; it never changes the result, only the pivot
    path.  *kernel* selects the exact pivoting engine (``None`` = the
    process default, normally ``"revised"``).

    *warm_state* is a carried :class:`~repro.lp.warm.WarmState` whose
    structural labels are **variable keys** (as returned on
    ``LPSolution.warm_state``); it is relabelled into *lp*'s column space
    and, when its basis still resolves, the exact solver skips phase 1 and
    the warm-point push outright.  A stale state degrades to its carried
    vertex.  *structure_token* authorizes verbatim basis reuse (raw-row
    callers only — relabelling drops the witness, so keyed carrying always
    refactorizes).  *canonical* picks the vertex-identity contract (see
    :func:`repro.lp.simplex.solve_standard`): ``True`` (default) returns
    the deterministic kernel-invariant vertex, ``"lex"`` the warm-start-
    independent lex-min vertex, ``False`` whatever vertex the solve lands
    on (probe-style callers that only consume values).
    """
    backend = _resolve_backend(backend, lp)
    coeff_rows, senses, rhs, objective = lp.to_standard_rows()
    local_state = None
    if warm_state is not None and backend in ("exact", "hybrid"):
        local_state = _local_warm_state(lp, warm_state)
        if local_state is None and not warm_values:
            warm_values = warm_state.point  # stale basis: keep the vertex
    warm_pt, drops = _warm_point(lp, warm_values)
    if backend == "exact":
        result = solve_standard(
            coeff_rows, senses, rhs, objective,
            warm_point=warm_pt, kernel=kernel,
            warm_state=local_state, structure_token=structure_token,
            canonical=canonical,
        )
    elif backend == "hybrid":
        result = solve_standard_hybrid(
            coeff_rows, senses, rhs, objective,
            warm_point=warm_pt, kernel=kernel,
            warm_state=local_state, structure_token=structure_token,
            canonical=canonical,
        )
    else:
        result = solve_standard_float(coeff_rows, senses, rhs, objective)
    _count_warm_drops(drops, result.stats)
    if result.status != "optimal":
        return LPSolution(
            status=result.status, values={}, objective=None, stats=result.stats
        )
    values: Dict = {}
    for key in lp.variable_keys:
        values[key] = result.x[lp.index_of(key)]
    return LPSolution(
        status="optimal", values=values, objective=result.objective,
        stats=result.stats,
        warm_state=_keyed_warm_state(lp, getattr(result, "warm_state", None)),
    )


def check_standard_rows(
    coeff_rows: Sequence[Dict[int, Fraction]],
    senses: Sequence[str],
    rhs: Sequence[Fraction],
    x: Sequence[Fraction],
) -> bool:
    """Exactly verify ``x ≥ 0`` against the rows (no tolerances).

    The raw-row counterpart of
    :meth:`~repro.lp.model.LinearProgram.check_values`; this is the gate
    that certifies float candidates — and re-certifies cached points in the
    incremental probe pipeline — without an exact solve.
    """
    if any(v < 0 for v in x):
        return False
    for row, sense, b in zip(coeff_rows, senses, rhs):
        lhs = sum((v * x[j] for j, v in row.items() if x[j]), Fraction(0))
        b = to_fraction(b)
        ok = (
            lhs <= b if sense == "<="
            else lhs >= b if sense == ">="
            else lhs == b
        )
        if not ok:
            return False
    return True


def feasible_point_rows(
    coeff_rows: Sequence[Dict[int, Fraction]],
    senses: Sequence[str],
    rhs: Sequence[Fraction],
    num_vars: int,
    backend: str = "hybrid",
    warm_point: Optional[Sequence[Fraction]] = None,
    kernel: Optional[str] = None,
    warm_state: Optional[WarmState] = None,
    structure_token: object = None,
    want_state: bool = False,
):
    """Certified feasibility probe on raw standard rows.

    Returns ``(point, farkas)``: exactly one of the two is non-``None``
    unless the program is infeasible without an available certificate
    (``(None, None)``).  The point is **exactly** feasible; the certificate
    is **exactly** verified (see :mod:`repro.lp.certificates`).  This is
    the primitive behind the incremental binary-search pipeline of
    :class:`repro.core.programs.IP3Builder`, which calls it with masked row
    views instead of materialized :class:`~repro.lp.model.LinearProgram`
    objects.

    *warm_state* carries the basis of a neighbouring probe's solve (labels
    in **this** row/column space); *structure_token* authorizes verbatim
    basis reuse when the caller guarantees identical columns (see
    :mod:`repro.lp.warm`).  With ``want_state=True`` the return becomes the
    3-tuple ``(point, farkas, state)`` where *state* is the exact solve's
    final :class:`~repro.lp.warm.WarmState` — ``None`` on the float-certified
    shortcut (no exact basis existed) and on infeasibility.  Probe vertices
    are **not** canonicalized (feasibility verdicts are vertex-agnostic).
    """
    from .hybrid import _FLOAT_SIZE_CUTOFF, certify_infeasible, float_candidate

    if backend not in BACKENDS and backend != "auto":
        raise SolverError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    use_float = (
        backend in ("hybrid", "scipy", "auto")
        and HAVE_SCIPY
        and num_vars * max(len(coeff_rows), 1) >= _FLOAT_SIZE_CUTOFF
    )
    objective = [Fraction(0)] * num_vars
    if use_float:
        candidate = float_candidate(coeff_rows, senses, rhs, objective)
        if candidate is not None and candidate.status == "optimal":
            if check_standard_rows(coeff_rows, senses, rhs, candidate.x):
                # Certified by the re-check; no exact basis to carry.
                point = list(candidate.x)
                return (point, None, None) if want_state else (point, None)
            warm_point = candidate.x  # uncertified: warm-start the repair
        elif candidate is not None and candidate.status == "infeasible":
            farkas = certify_infeasible(
                coeff_rows, senses, rhs, num_vars=num_vars
            )
            if farkas is not None:
                return (None, farkas, None) if want_state else (None, farkas)
    result = solve_standard(
        coeff_rows, senses, rhs, objective,
        warm_point=warm_point, kernel=kernel,
        warm_state=warm_state, structure_token=structure_token,
        canonical=False,
    )
    if result.status != "optimal":
        farkas = result.farkas
        return (None, farkas, None) if want_state else (None, farkas)
    state = getattr(result, "warm_state", None)
    return (result.x, None, state) if want_state else (result.x, None)


def feasible_point(
    lp: LinearProgram,
    backend: str = "exact",
    warm_values: Optional[Mapping[VarKey, Fraction]] = None,
    kernel: Optional[str] = None,
    warm_state: Optional[WarmState] = None,
    want_state: bool = False,
):
    """An **exactly certified** feasible point of *lp*, or ``None``.

    This is the cheap primitive behind feasibility probes (the binary search
    of ``minimal_fractional_T`` fires hundreds of them).  With the hybrid
    backend, a rationalized HiGHS point that passes the exact re-check is
    returned directly — no exact pivoting at all; the point is feasible but
    not necessarily basic, which is all a feasibility verdict needs.  Every
    other path (check fails, float says infeasible, non-hybrid backend)
    falls through to a certified solve, warm-started from *warm_values*
    (e.g. the bracketing probe's point) when given.

    With ``backend="scipy"`` the point is re-checked exactly as well, and
    rejected (exact re-solve) instead of propagated when uncertified.

    *warm_state* is a keyed :class:`~repro.lp.warm.WarmState` (as returned
    with ``want_state=True``); when its basis resolves the solver skips the
    push/phase-1 machinery entirely.  With ``want_state=True`` the return
    becomes ``(point_dict_or_None, state_or_None)``.
    """
    from .hybrid import _FLOAT_SIZE_CUTOFF

    backend = _resolve_backend(backend, lp)
    size = lp.num_variables * max(lp.num_constraints, 1)
    if backend == "hybrid" and size < _FLOAT_SIZE_CUTOFF:
        backend = "exact"  # linprog overhead exceeds a cold exact solve
    local_state = _local_warm_state(lp, warm_state)
    if warm_state is not None and local_state is None and not warm_values:
        warm_values = warm_state.point  # stale basis: keep the vertex
    warm_pt, drops = _warm_point(lp, warm_values)
    coeff_rows, senses, rhs, objective = lp.to_standard_rows()
    state = None
    if backend in ("hybrid", "scipy"):
        point, _farkas, state = feasible_point_rows(
            coeff_rows, senses, rhs, lp.num_variables,
            backend=backend, warm_point=warm_pt,
            kernel=kernel, warm_state=local_state, want_state=True,
        )
        _count_warm_drops(drops, None)
    else:
        result = solve_standard(
            coeff_rows, senses, rhs, objective,
            warm_point=warm_pt, kernel=kernel,
            warm_state=local_state, canonical=False,
        )
        _count_warm_drops(drops, result.stats)
        if result.status == "optimal":
            point = result.x
            state = getattr(result, "warm_state", None)
        else:
            point = None
    if point is None:
        return (None, None) if want_state else None
    values = {key: point[lp.index_of(key)] for key in lp.variable_keys}
    if not want_state:
        return values
    return values, _keyed_warm_state(lp, state)


def is_feasible(
    lp: LinearProgram, backend: str = "exact", kernel: Optional[str] = None
) -> bool:
    """Certified feasibility check (see :func:`feasible_point`)."""
    return feasible_point(lp, backend=backend, kernel=kernel) is not None
