"""Unified LP solving entry point with backend dispatch.

Backends
--------
``"exact"``
    Fraction-free rational simplex.  Guaranteed exact optimal *basic*
    solutions; the reference everything else is certified against.
``"scipy"``
    HiGHS floats, rationalized on the way out.  Fast but **uncertified**:
    values may violate constraints by rounding hairs and need not be
    vertices.  Callers must re-check (see
    :meth:`~repro.lp.model.LinearProgram.check_values`) before feeding the
    result to anything that needs exactness.
``"hybrid"``
    HiGHS candidate + exact verification/repair (see :mod:`repro.lp.hybrid`).
    Same guarantees as ``"exact"``, close to ``"scipy"`` speed on anything
    large enough for the float probe to pay off.  Degrades to ``"exact"``
    when scipy is unavailable.
``"auto"``
    ``"exact"`` for small programs, ``"hybrid"`` beyond
    :data:`_AUTO_SIZE_LIMIT`.

Warm starts: pass ``warm_values`` (a previously feasible point keyed like
the program's variables) and the exact/hybrid backends push its support into
the starting basis, typically skipping phase 1 entirely.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Optional

from .._fraction import to_fraction
from ..exceptions import SolverError
from .hybrid import HAVE_SCIPY, solve_standard_hybrid
from .model import LinearProgram, LPSolution, VarKey
from .simplex import solve_standard

if HAVE_SCIPY:
    from .scipy_backend import solve_standard_float
else:  # pragma: no cover - scipy is present in CI images
    solve_standard_float = None  # type: ignore[assignment]

BACKENDS = ("exact", "scipy", "hybrid")

#: Problem size (variables × rows) above which "auto" prefers hybrid.
_AUTO_SIZE_LIMIT = 20000


def _resolve_backend(backend: str, lp: LinearProgram) -> str:
    if backend == "auto":
        size = lp.num_variables * max(lp.num_constraints, 1)
        backend = "exact" if size <= _AUTO_SIZE_LIMIT else "hybrid"
    if backend not in BACKENDS:
        raise SolverError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    if backend in ("scipy", "hybrid") and not HAVE_SCIPY:
        if backend == "scipy":
            raise SolverError("backend 'scipy' requested but scipy is not installed")
        backend = "exact"  # hybrid degrades gracefully, guarantees intact
    return backend


def _warm_point(
    lp: LinearProgram, warm_values: Optional[Mapping[VarKey, Fraction]]
) -> Optional[List[Fraction]]:
    """A prior point as a dense structural vector (missing keys read as 0)."""
    if not warm_values:
        return None
    point = [Fraction(0)] * lp.num_variables
    found = False
    for key, value in warm_values.items():
        if lp.has_variable(key):
            value = to_fraction(value)
            if value != 0:
                point[lp.index_of(key)] = value
                found = True
    return point if found else None


def solve_lp(
    lp: LinearProgram,
    backend: str = "exact",
    warm_values: Optional[Mapping[VarKey, Fraction]] = None,
) -> LPSolution:
    """Solve *lp* (minimization) and map values back to variable keys.

    See the module docstring for the per-backend guarantees.  *warm_values*
    is an optional previously-feasible point used to warm-start the
    exact/hybrid backends; it never changes the result, only the pivot path.
    """
    backend = _resolve_backend(backend, lp)
    coeff_rows, senses, rhs, objective = lp.to_standard_rows()
    if backend == "exact":
        result = solve_standard(
            coeff_rows, senses, rhs, objective, warm_point=_warm_point(lp, warm_values)
        )
    elif backend == "hybrid":
        result = solve_standard_hybrid(
            coeff_rows, senses, rhs, objective, warm_point=_warm_point(lp, warm_values)
        )
    else:
        result = solve_standard_float(coeff_rows, senses, rhs, objective)
    if result.status != "optimal":
        return LPSolution(status=result.status, values={}, objective=None)
    values: Dict = {}
    for key in lp.variable_keys:
        values[key] = result.x[lp.index_of(key)]
    return LPSolution(status="optimal", values=values, objective=result.objective)


def feasible_point(
    lp: LinearProgram,
    backend: str = "exact",
) -> Optional[Dict[VarKey, Fraction]]:
    """An **exactly certified** feasible point of *lp*, or ``None``.

    This is the cheap primitive behind feasibility probes (the binary search
    of ``minimal_fractional_T`` fires hundreds of them).  With the hybrid
    backend, a rationalized HiGHS point that passes the exact
    :meth:`~repro.lp.model.LinearProgram.check_values` re-check is returned
    directly — no exact pivoting at all; the point is feasible but not
    necessarily basic, which is all a feasibility verdict needs.  Every
    other path (check fails, float says infeasible, non-hybrid backend)
    falls through to a certified solve.

    With ``backend="scipy"`` the point is re-checked exactly as well, and
    rejected (exact re-solve) instead of propagated when uncertified.
    """
    from .hybrid import _FLOAT_SIZE_CUTOFF

    backend = _resolve_backend(backend, lp)
    size = lp.num_variables * max(lp.num_constraints, 1)
    if backend == "hybrid" and size < _FLOAT_SIZE_CUTOFF:
        backend = "exact"  # linprog overhead exceeds a cold exact solve
    coeff_rows, senses, rhs, objective = lp.to_standard_rows()
    warm_point: Optional[List[Fraction]] = None
    if backend in ("hybrid", "scipy"):
        from .hybrid import certify_infeasible, float_candidate

        # float_candidate absorbs HiGHS hard failures (iteration limits,
        # numerical breakdown) — a None candidate simply means no shortcut.
        candidate = float_candidate(coeff_rows, senses, rhs, objective)
        if candidate is not None and candidate.status == "optimal":
            values = {
                key: candidate.x[lp.index_of(key)] for key in lp.variable_keys
            }
            if not lp.check_values(values):
                return values  # certified by the exact re-check
            warm_point = candidate.x  # uncertified: warm-start the repair
        elif candidate is not None and candidate.status == "infeasible" and certify_infeasible(
            coeff_rows, senses, rhs, num_vars=lp.num_variables
        ):
            return None  # certified by the exact Farkas re-check
        # Claimed unbounded or failed certification: the exact solver
        # re-derives the verdict (reusing the standard rows built above).
    result = solve_standard(coeff_rows, senses, rhs, objective, warm_point=warm_point)
    if result.status != "optimal":
        return None
    return {key: result.x[lp.index_of(key)] for key in lp.variable_keys}


def is_feasible(lp: LinearProgram, backend: str = "exact") -> bool:
    """Certified feasibility check (see :func:`feasible_point`)."""
    return feasible_point(lp, backend=backend) is not None
