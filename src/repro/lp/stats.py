"""Solver performance counters and an opt-in aggregation scope.

Perf work on the LP substrate needs numbers that survive machine noise:
wall-clock alone cannot tell "the kernel pivots less" from "the laptop was
idle".  Every solve therefore fills a :class:`SolverStats` record (pivot
counts, phase-1 share, basis refactorizations, warm-start outcomes) that is
attached to the :class:`~repro.lp.simplex.SimplexResult` /
:class:`~repro.lp.model.LPSolution` it produced.

Higher-level pipelines (the ``minimal_fractional_T`` binary search, the
2-approximation, whole experiments) run many solves whose results are not
individually surfaced.  :func:`collect_stats` opens an aggregation scope:
while it is active, every solve (and every probe shortcut that *avoided* a
solve) adds its counters to the scope's aggregate.  ``repro … --profile``
wraps a CLI run in such a scope and prints the totals, so future perf PRs
can cite counters, not just seconds.

Scopes are per-process (module state, not shared across a sweep's worker
pool) and nestable — an inner scope does not steal counts from an outer one.
The sweep runner closes the per-process gap by running every task inside a
scope and handing the aggregate back to the driver (see
:mod:`repro.runner.executor`), where it is persisted in the store index.

Besides scopes, :func:`record` notifies registered **sinks** — callbacks the
tracing layer (:mod:`repro.obs`) uses to attach counter deltas to the open
spans.  Sinks observe the same stream the scopes aggregate; they must never
influence it, so a sink that itself calls :func:`record` re-entrantly only
updates scopes (the sink fan-out is suppressed while a sink is running —
otherwise one badly-written sink could recurse forever), and both scopes and
sinks are iterated over snapshots so a callback that opens or closes scopes
mid-record cannot corrupt the dispatch.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List


@dataclass
class SolverStats:
    """Counters for one LP solve (or an aggregate of many).

    ``warm_start_attempts``/``warm_start_hits`` count crash-basis
    factorizations tried/succeeded (a hit means phase 1 was skipped
    outright).  ``point_reuses``/``farkas_reuses`` count binary-search
    probes answered by re-checking a cached feasible point / Farkas
    certificate instead of solving — the incremental-pipeline shortcuts.
    """

    solves: int = 0
    pivots: int = 0
    phase1_pivots: int = 0
    refactorizations: int = 0
    warm_start_attempts: int = 0
    warm_start_hits: int = 0
    point_reuses: int = 0
    farkas_reuses: int = 0
    #: WarmState outcomes: ``basis_reuses`` counts solves whose starting
    #: basis came from a carried :class:`~repro.lp.warm.WarmState` (phase 1
    #: skipped); ``crash_skips`` is the subset where the factorized ``W``
    #: itself was installed verbatim — no ``O(m³)`` refactorization, no
    #: ratio-test push.  ``sparse_btrans`` counts btran calls answered
    #: entirely from sparse ``W`` rows; ``warm_key_drops`` counts warm-point
    #: keys dropped because the target LP lacks the variable (cross-probe
    #: shape mismatches — see ``lp/solve.py:_warm_point``).
    basis_reuses: int = 0
    crash_skips: int = 0
    sparse_btrans: int = 0
    warm_key_drops: int = 0
    #: Session-layer solve cache outcomes: a hit means a whole solve (or a
    #: whole pipeline of solves) was answered from the content-addressed
    #: store with zero pivots; a miss means the cold path ran and its
    #: payload was recorded for next time.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Sweep fault-tolerance outcomes, recorded by the driver so the obs
    #: layer (scopes, spans, the store index) sees the recovery machinery
    #: working: ``task_retries`` counts re-submitted task attempts,
    #: ``tasks_quarantined`` counts tasks skipped because their failure-
    #: ledger attempt count exhausted the retry budget, ``budget_kills``
    #: counts workers killed by the driver's wall-clock deadline.
    task_retries: int = 0
    tasks_quarantined: int = 0
    budget_kills: int = 0
    #: Solve count per kernel name ("revised", "tableau", "float").
    kernels: Dict[str, int] = field(default_factory=dict)

    def count_kernel(self, kernel: str) -> None:
        self.kernels[kernel] = self.kernels.get(kernel, 0) + 1

    def add(self, other: "SolverStats") -> None:
        self.solves += other.solves
        self.pivots += other.pivots
        self.phase1_pivots += other.phase1_pivots
        self.refactorizations += other.refactorizations
        self.warm_start_attempts += other.warm_start_attempts
        self.warm_start_hits += other.warm_start_hits
        self.point_reuses += other.point_reuses
        self.farkas_reuses += other.farkas_reuses
        self.basis_reuses += other.basis_reuses
        self.crash_skips += other.crash_skips
        self.sparse_btrans += other.sparse_btrans
        self.warm_key_drops += other.warm_key_drops
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.task_retries += other.task_retries
        self.tasks_quarantined += other.tasks_quarantined
        self.budget_kills += other.budget_kills
        for kernel, count in other.kernels.items():
            self.kernels[kernel] = self.kernels.get(kernel, 0) + count

    def to_json(self) -> Dict[str, Any]:
        """Exact JSON-ready form (plain ints; ``kernels`` copied).

        The wire format of the sweep hand-back: workers serialize their
        per-task aggregate, the driver and ``repro report --profile``
        rebuild it with :meth:`from_json`.  Round-trip is exact — every
        counter is an int and the ``kernels`` dict is copied, not shared.
        """
        return {
            "solves": self.solves,
            "pivots": self.pivots,
            "phase1_pivots": self.phase1_pivots,
            "refactorizations": self.refactorizations,
            "warm_start_attempts": self.warm_start_attempts,
            "warm_start_hits": self.warm_start_hits,
            "point_reuses": self.point_reuses,
            "farkas_reuses": self.farkas_reuses,
            "basis_reuses": self.basis_reuses,
            "crash_skips": self.crash_skips,
            "sparse_btrans": self.sparse_btrans,
            "warm_key_drops": self.warm_key_drops,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "task_retries": self.task_retries,
            "tasks_quarantined": self.tasks_quarantined,
            "budget_kills": self.budget_kills,
            "kernels": dict(self.kernels),
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "SolverStats":
        """Inverse of :meth:`to_json`; unknown keys are ignored, missing
        ones default to 0 (an older artifact stays readable)."""
        stats = cls(
            **{
                name: int(payload.get(name, 0))
                for name in (
                    "solves", "pivots", "phase1_pivots", "refactorizations",
                    "warm_start_attempts", "warm_start_hits",
                    "point_reuses", "farkas_reuses",
                    "basis_reuses", "crash_skips",
                    "sparse_btrans", "warm_key_drops",
                    "cache_hits", "cache_misses",
                    "task_retries", "tasks_quarantined", "budget_kills",
                )
            }
        )
        stats.kernels = {
            str(k): int(v) for k, v in dict(payload.get("kernels", {})).items()
        }
        return stats

    def render(self) -> str:
        """One human-readable block (the ``--profile`` output)."""
        kernels = ", ".join(
            f"{name}×{count}" for name, count in sorted(self.kernels.items())
        ) or "none"
        return "\n".join(
            [
                "solver profile:",
                f"  solves            {self.solves}  ({kernels})",
                f"  pivots            {self.pivots}  (phase 1: {self.phase1_pivots})",
                f"  refactorizations  {self.refactorizations}",
                f"  warm starts       {self.warm_start_hits}/{self.warm_start_attempts} hits",
                f"  probe shortcuts   {self.point_reuses} point reuses, "
                f"{self.farkas_reuses} Farkas reuses",
                f"  basis carrying    {self.basis_reuses} reuses "
                f"({self.crash_skips} verbatim), "
                f"{self.warm_key_drops} warm keys dropped",
                f"  sparse btrans     {self.sparse_btrans}",
                f"  solve cache       {self.cache_hits} hits, "
                f"{self.cache_misses} misses",
                f"  fault tolerance   {self.task_retries} task retries, "
                f"{self.tasks_quarantined} quarantined, "
                f"{self.budget_kills} budget kills",
            ]
        )


#: Active aggregation scopes (innermost last).  Module state: cheap, and the
#: solver hot path must not pay for collection when nothing listens.
_scopes: List[SolverStats] = []

#: Registered observer callbacks (the tracing layer's span attachment).
_sinks: List[Callable[[SolverStats], None]] = []

#: True while sink callbacks are running: a sink that re-enters record()
#: must not fan out to sinks again (scopes still aggregate normally).
_in_sinks = False


def add_sink(sink: Callable[[SolverStats], None]) -> None:
    """Register *sink* to observe every :func:`record` call.

    Sinks are observers, not aggregators: they receive the same
    :class:`SolverStats` deltas the scopes sum, and must not mutate them.
    """
    _sinks.append(sink)


def remove_sink(sink: Callable[[SolverStats], None]) -> None:
    """Unregister *sink* (by identity; a no-op if it is not registered)."""
    for i in range(len(_sinks) - 1, -1, -1):
        if _sinks[i] is sink:
            del _sinks[i]
            break


def record(stats: SolverStats) -> None:
    """Add *stats* to every active scope and notify sinks (no-op when none).

    Both fan-outs iterate over snapshots: a sink (or a re-entrant caller)
    that opens or closes scopes mid-dispatch cannot corrupt the iteration,
    and a scope torn down concurrently simply stops receiving.  Re-entrant
    ``record`` calls made *from* a sink update scopes but skip the sink
    fan-out — tracing a span must never recurse into tracing.
    """
    global _in_sinks
    for scope in tuple(_scopes):
        scope.add(stats)
    if _sinks and not _in_sinks:
        _in_sinks = True
        try:
            for sink in tuple(_sinks):
                sink(stats)
        finally:
            _in_sinks = False


@contextmanager
def collect_stats() -> Iterator[SolverStats]:
    """Aggregate the stats of every solve performed inside the scope.

    Teardown is exception-safe and order-independent: the scope is removed
    by identity wherever it sits in the stack, so scopes unwound out of
    order (e.g. generators closed late, or exceptions propagating through
    several nested scopes at once) each remove exactly themselves and never
    leak — re-entrant :func:`record` calls from sink callbacks included.
    """
    scope = SolverStats()
    _scopes.append(scope)
    try:
        yield scope
    finally:
        # Remove by identity, not ==: SolverStats is a value-comparing
        # dataclass, and a nested scope can hold exactly the outer scope's
        # counters (record() feeds both), so list.remove would pop the
        # wrong — outermost equal — scope.
        for i in range(len(_scopes) - 1, -1, -1):
            if _scopes[i] is scope:
                del _scopes[i]
                break
