"""WarmState: the cross-solve basis artifact of the exact LP stack.

PR 4 made consecutive solves share *points* and Farkas certificates; the
expensive artifact — the factorized basis — still died inside each solve.
:class:`WarmState` is that artifact made first-class: the final
:class:`~repro.lp.basis.LUBasis`, the basic set (as stable *labels*, not
raw column indices), the optimal vertex and optionally a Farkas
certificate, packaged so it can travel between binary-search probes, the
min-T re-solve, memory-model probes and iterative-rounding iterations.

Labels
------
Basis membership is recorded per basis position as ``(kind, payload)``:

``("x", i)``
    structural variable — *payload* is the column index in the producing
    LP's variable space (or an arbitrary hashable key after
    :meth:`relabel`, e.g. an ``LinearProgram`` variable key),
``("s", r)``
    the slack of row *r*,
``("a", r)``
    the artificial of row *r* (only basic at level zero in an optimal
    basis — redundant rows).

A consumer resolves labels against *its* standard form; any label that
does not resolve marks the state **stale** and the solver falls back to
the point-based warm start (and from there to a cold start).  Slack and
artificial labels are positional — after row masking/reordering they may
point at different rows — but that is harmless: the resolved basis is
either singular/infeasible (rejected exactly) or a *legal* feasible basis,
and phase-2 correctness never depends on which feasible basis starts it.

Verbatim ``W`` reuse
--------------------
Reinstalling the carried ``W`` without refactorizing is only sound when
the consumer's basis columns are **identical** (same coefficients, same
row scaling) to the producer's — feasibility checks alone cannot validate
``W`` as the inverse of the new columns.  The ``token`` field carries an
opaque structure witness chosen by the producer's caller (e.g. the
``_ProbeSession`` instance whose masked templates guarantee identical
columns); :mod:`repro.lp.revised` installs ``W`` verbatim only when the
consumer presents an equal token *and* the row scales match, and otherwise
refactorizes the labelled columns directly (``O(m³)``, self-validating).

Process locality
----------------
A ``WarmState`` is ephemera: it aliases live kernel state and must never
be serialized into session-cache payloads or sweep stores (cached results
stay byte-compatible with stores written before this class existed).
Pickling therefore raises ``TypeError``, and
:mod:`repro.session.canon` rejects it explicitly.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, Optional, Sequence, Tuple

from .basis import LUBasis

#: Basis-position label: ("x", payload) | ("s", row) | ("a", row).
Label = Tuple[str, object]


class WarmState:
    """Carried solver state (see module docstring).

    ``labels``
        one label per basis position (length ``m``).
    ``m`` / ``n``
        row / structural-variable counts of the producing standard form.
    ``scales``
        the per-row integer scaling the producer applied (lcm of row and
        rhs denominators); verbatim ``W`` reuse requires equality.
    ``lub``
        the factorized basis, or ``None`` when only labels/point are
        carried (e.g. states produced by the tableau kernel).
    ``token``
        opaque structure witness for verbatim reuse (compared with ``==``).
    ``point``
        sparse optimal vertex ``{structural payload: Fraction}`` (nonzeros
        only) — doubles as the point-based warm start when the basis is
        stale.
    ``farkas``
        optional infeasibility certificate in original-row space.
    """

    __slots__ = ("labels", "m", "n", "scales", "lub", "token", "point", "farkas")

    def __init__(
        self,
        labels: Sequence[Label],
        m: int,
        n: int,
        scales: Tuple[int, ...],
        lub: Optional[LUBasis] = None,
        token: object = None,
        point: Optional[Dict[object, Fraction]] = None,
        farkas: Optional[Tuple[Fraction, ...]] = None,
    ):
        self.labels = tuple(labels)
        self.m = m
        self.n = n
        self.scales = tuple(scales)
        self.lub = lub
        self.token = token
        self.point = dict(point) if point else {}
        self.farkas = farkas

    # -- process locality ------------------------------------------------

    def __reduce__(self):
        raise TypeError(
            "WarmState is process-local solver ephemera and must never be "
            "pickled or serialized into cache payloads"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WarmState(m={self.m}, n={self.n}, "
            f"basic={[l for l in self.labels]!r}, "
            f"lub={'yes' if self.lub is not None else 'no'})"
        )

    # -- relabeling ------------------------------------------------------

    def relabel(
        self, mapper: Callable[[object], object], new_n: Optional[int] = None
    ) -> Optional["WarmState"]:
        """Map every structural payload through *mapper*; ``None`` = stale.

        *mapper* returns the new payload for an old structural payload, or
        ``None`` when the variable does not exist in the target space.  A
        **basic** structural that does not map makes the whole state stale
        (the basis cannot be resolved), so ``None`` is returned; unmapped
        *point* entries are merely dropped (they are warm-start hints, and
        the caller's ``_warm_point`` accounting covers diagnostics).

        Slack/artificial labels pass through unchanged — their row indices
        are positional and re-resolved by the consumer.  ``token`` is
        dropped: a relabelled state no longer witnesses column identity.
        """
        labels: list = []
        for kind, payload in self.labels:
            if kind != "x":
                labels.append((kind, payload))
                continue
            mapped = mapper(payload)
            if mapped is None:
                return None
            labels.append(("x", mapped))
        point: Dict[object, Fraction] = {}
        for payload, value in self.point.items():
            mapped = mapper(payload)
            if mapped is not None:
                point[mapped] = value
        return WarmState(
            labels,
            self.m,
            self.n if new_n is None else new_n,
            self.scales,
            lub=self.lub,
            token=None,
            point=point,
            farkas=None,
        )

    def relabel_dict(
        self, mapping: Dict[object, object], new_n: Optional[int] = None
    ) -> Optional["WarmState"]:
        """:meth:`relabel` through a plain dict (missing keys = stale)."""
        return self.relabel(mapping.get, new_n=new_n)
