"""Observability substrate: spans, counter attachment, trace export.

The layer every perf claim and the future service daemon report through:

* :mod:`repro.obs.trace` — :class:`Span` / :class:`Tracer` and the
  module-level :func:`span` context manager the solver stack is
  instrumented with (LP kernels, binary-search probes, session cache
  lookups, admission windows, sweep tasks).  Near-zero overhead when no
  tracer is installed; never perturbs results.
* :mod:`repro.obs.export` — the streaming JSONL span sink and the Chrome
  ``trace_event`` exporter (``chrome://tracing`` / Perfetto), plus the
  structural validator CI runs on emitted traces.

``repro … --trace FILE`` on the CLI installs a tracer around the whole
command and exports on exit (``.jsonl`` suffix selects the JSONL sink,
anything else the Chrome format); the sweep runner ships worker-side span
trees back to the driver so ``--jobs N`` produces one merged trace.
"""

from .export import (
    JsonlSpanSink,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)
from .trace import (
    Span,
    Tracer,
    adopt_spans,
    current_span,
    install,
    span,
    suspended,
    tracing,
    tracing_enabled,
    uninstall,
)

__all__ = [
    "JsonlSpanSink",
    "Span",
    "Tracer",
    "adopt_spans",
    "chrome_trace",
    "current_span",
    "install",
    "span",
    "suspended",
    "tracing",
    "tracing_enabled",
    "uninstall",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_spans_jsonl",
]
