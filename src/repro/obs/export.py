"""Span serialization: streaming JSONL sink and Chrome-trace export.

Two output formats, one span model:

* **JSONL** (:class:`JsonlSpanSink`, :func:`write_spans_jsonl`) — one
  canonical-JSON span per line, the format the store tooling and ad-hoc
  ``jq`` analysis consume.  The sink streams: each span is written (and
  flushed) the moment it finishes, so a crashed run still leaves every
  completed span on disk.
* **Chrome ``trace_event``** (:func:`chrome_trace`,
  :func:`write_chrome_trace`) — the ``chrome://tracing`` / Perfetto format:
  one ``"X"`` (complete) event per span with microsecond ``ts``/``dur``,
  plus ``"M"`` metadata events naming each process track.  Span nesting is
  reconstructed by the viewer from containment on the same ``(pid, tid)``
  track, which our single-stack-per-process model guarantees.

:func:`validate_chrome_trace` checks the structural contract of the
exported payload (the CI sweep-smoke leg runs it on a freshly emitted
trace); it returns a list of human-readable problems, empty when the file
is well-formed.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Optional, Sequence, Union

from .trace import Span

#: Synthetic thread id used for every span of a process: the span stack is
#: per-process, so one track per pid is the faithful rendering.
_TID = 1


def span_line(span: Span) -> str:
    """One span as its canonical JSONL line (no trailing newline)."""
    from ..session.canon import canonical_json

    return canonical_json(span.to_json())


class JsonlSpanSink:
    """Streaming JSONL span writer — plug into :class:`~repro.obs.trace.
    Tracer` as its ``sink`` (or call directly with finished spans)."""

    def __init__(self, target: Union[str, IO[str]]):
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False

    def __call__(self, span: Span) -> None:
        self._fh.write(span_line(span) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "JsonlSpanSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_spans_jsonl(path: str, spans: Sequence[Span]) -> None:
    """Write *spans* to *path*, one canonical JSON object per line."""
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(span_line(span) + "\n")


def _span_args(span: Span) -> Dict[str, Any]:
    """Chrome-event ``args``: attributes plus any non-zero counters."""
    args: Dict[str, Any] = {
        k: v if isinstance(v, (bool, int, float, str)) or v is None else str(v)
        for k, v in span.attrs.items()
    }
    for name, value in span.stats.to_json().items():
        if name == "kernels":
            if value:
                args["kernels"] = ", ".join(
                    f"{k}×{n}" for k, n in sorted(value.items())
                )
        elif value:
            args[name] = value
    return args


def chrome_trace(
    spans: Sequence[Span], label: Optional[str] = None
) -> Dict[str, Any]:
    """The spans as a Chrome ``trace_event`` payload (JSON-ready dict).

    Timestamps are rebased to the earliest span start so ``ts`` stays small
    enough for the viewer's float microseconds to remain exact in practice.
    """
    events: List[Dict[str, Any]] = []
    pids = sorted({span.pid for span in spans})
    for pid in pids:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": _TID,
                "args": {"name": f"repro pid {pid}"},
            }
        )
    t0 = min((span.start_ns for span in spans), default=0)
    for span in spans:
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": (span.start_ns - t0) / 1000.0,
                "dur": span.duration_ns / 1000.0,
                "pid": span.pid,
                "tid": _TID,
                "args": _span_args(span),
            }
        )
    payload: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if label:
        payload["otherData"] = {"label": label}
    return payload


def write_chrome_trace(
    path: str, spans: Sequence[Span], label: Optional[str] = None
) -> None:
    """Export *spans* to *path* in Chrome ``trace_event`` format."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(spans, label=label), fh, indent=1)
        fh.write("\n")


def validate_chrome_trace(payload: Any) -> List[str]:
    """Structural problems of a ``trace_event`` payload (empty = valid).

    Checks the subset of the spec our exporter promises: the JSON-object
    container with a ``traceEvents`` list; every event a dict with string
    ``name``, known ``ph``, integer ``pid``/``tid``; ``"X"`` events with
    non-negative numeric ``ts``/``dur``.  The CI trace-smoke leg fails on
    any returned problem.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be a JSON object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload lacks a 'traceEvents' list"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing/empty 'name'")
        ph = event.get("ph")
        if ph not in ("X", "B", "E", "i", "M", "C"):
            problems.append(f"{where}: unknown phase {ph!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: '{key}' must be an integer")
        if ph == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(
                        f"{where}: '{key}' must be a non-negative number"
                    )
            if not isinstance(event.get("args", {}), dict):
                problems.append(f"{where}: 'args' must be an object")
    return problems
