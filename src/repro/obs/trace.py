"""Structured spans over the solver stack.

A :class:`Span` is one named, timed region of work — an LP solve, one
binary-search probe, a cache lookup, an admission pass — with attributes,
exact integer-nanosecond start/end timestamps, and the
:class:`~repro.lp.stats.SolverStats` delta recorded while it was open.
Spans nest: the instrumentation sites (``lp/``, ``core/programs.py``,
``session/``, ``simulation/admission.py``, the sweep executor) all call the
one module-level :func:`span` context manager, which maintains a
per-process stack, so a solve performed inside a probe inside a session
call comes out as a properly parented tree regardless of which layers are
involved.

Cost discipline: when no :class:`Tracer` is installed, :func:`span` checks
one module-level list and yields ``None`` — no :class:`Span` is allocated,
no clock is read, no stats sink is registered.  The hot paths stay
instrumented permanently and pay for it only when someone is listening.
Observability must never perturb results, and cannot: spans carry
timestamps and counter copies *out* of the computation and feed nothing
back in (the byte-identity property tests in ``tests/test_obs.py`` pin
this).

Clock: timestamps are ``perf_counter_ns`` rebased once per process onto the
epoch (``time_ns``), so they are monotonic within a process and comparable
across a sweep's worker pool to within wall-clock sync — good enough for
one merged Chrome trace, while in-process durations keep the monotonic
clock's quality.

Counter attachment: while at least one tracer is installed, a
:mod:`repro.lp.stats` sink routes every :func:`~repro.lp.stats.record` call
into all currently-open spans.  A parent span therefore aggregates its
children's counters, mirroring the nesting semantics of
:func:`~repro.lp.stats.collect_stats` scopes.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from ..lp import stats as lp_stats
from ..lp.stats import SolverStats

#: Rebases the monotonic clock onto the epoch; computed once per process so
#: spans from different sweep workers line up in one merged trace.
_CLOCK_ORIGIN_NS = time.time_ns() - time.perf_counter_ns()


def _now_ns() -> int:
    return _CLOCK_ORIGIN_NS + time.perf_counter_ns()


@dataclass
class Span:
    """One finished (or still-open) region of traced work."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start_ns: int
    end_ns: int = 0
    #: Free-form attributes; values should be JSON-canonicalizable
    #: (strings/ints preferred — Fractions are stringified on export).
    attrs: Dict[str, Any] = field(default_factory=dict)
    #: Solver-counter delta recorded while the span was open (children
    #: included, like nested ``collect_stats`` scopes).
    stats: SolverStats = field(default_factory=SolverStats)
    #: Process that produced the span (tracks in the Chrome trace).
    pid: int = field(default_factory=os.getpid)

    @property
    def duration_ns(self) -> int:
        return max(0, self.end_ns - self.start_ns)

    def to_json(self) -> Dict[str, Any]:
        """Exact JSON-ready form — the JSONL sink line and the sweep
        worker→driver wire format (:meth:`from_json` inverts it)."""
        payload: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "pid": self.pid,
        }
        if self.attrs:
            payload["attrs"] = {k: _jsonable(v) for k, v in self.attrs.items()}
        counters = self.stats.to_json()
        if any(v for v in counters.values()):
            payload["stats"] = counters
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "Span":
        return cls(
            name=str(payload["name"]),
            span_id=int(payload["span_id"]),
            parent_id=(
                None if payload.get("parent_id") is None
                else int(payload["parent_id"])
            ),
            start_ns=int(payload["start_ns"]),
            end_ns=int(payload.get("end_ns", 0)),
            attrs=dict(payload.get("attrs", {})),
            stats=SolverStats.from_json(payload.get("stats", {})),
            pid=int(payload.get("pid", 0)),
        )


def _jsonable(value: Any) -> Any:
    """Span attributes as plain JSON scalars (exactness via str, not float)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


class Tracer:
    """Collects finished spans (and optionally streams them to a sink).

    One tracer is usually installed per process for the lifetime of a CLI
    command (:func:`tracing`); the sweep executor installs one per task in
    each worker and ships ``spans`` back to the driver, which grafts them
    under its own task span with :meth:`adopt`.

    *sink*, when given, is called with each :class:`Span` as it finishes —
    the streaming JSONL sink of :mod:`repro.obs.export` plugs in here.
    Sink exceptions propagate (a broken trace file should fail loudly, not
    silently drop spans); the span stack itself unwinds safely either way.
    """

    def __init__(self, sink: Optional[Callable[[Span], None]] = None):
        self.spans: List[Span] = []
        self.sink = sink
        self._next_id = 1

    def _allocate_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def collect(self, span: Span) -> None:
        self.spans.append(span)
        if self.sink is not None:
            self.sink(span)

    def adopt(
        self,
        payloads: Sequence[Dict[str, Any]],
        parent: Optional[Span] = None,
    ) -> List[Span]:
        """Graft foreign (worker) spans into this tracer's id space.

        Span ids are remapped to fresh local ids (parent links rewritten
        consistently); roots of the foreign forest are re-parented under
        *parent* when given.  Timestamps are kept as shipped — the shared
        epoch rebase makes them comparable across processes.
        """
        id_map: Dict[int, int] = {}
        adopted: List[Span] = []
        for payload in payloads:
            span = Span.from_json(payload)
            id_map[span.span_id] = span.span_id = self._allocate_id()
            if span.parent_id is not None and span.parent_id in id_map:
                span.parent_id = id_map[span.parent_id]
            else:
                span.parent_id = parent.span_id if parent is not None else None
            adopted.append(span)
            self.collect(span)
        return adopted


#: Installed tracers (usually 0 or 1) and the stack of open spans.  Spans
#: are global, tracers are collectors: every installed tracer receives
#: every finished span, so the stack is shared.
_tracers: List[Tracer] = []
_stack: List[Span] = []


def tracing_enabled() -> bool:
    """Whether any tracer is installed (the :func:`span` fast-path check)."""
    return bool(_tracers)


def current_span() -> Optional[Span]:
    """The innermost open span, or ``None``."""
    return _stack[-1] if _stack else None


def _on_record(stats: SolverStats) -> None:
    """lp.stats sink: attach counter deltas to every open span."""
    for span in _stack:
        span.stats.add(stats)


def install(tracer: Tracer) -> None:
    """Install *tracer*; the first installation registers the stats sink."""
    if not _tracers:
        lp_stats.add_sink(_on_record)
    _tracers.append(tracer)


def uninstall(tracer: Tracer) -> None:
    """Remove *tracer* (by identity); the last removal drops the sink."""
    for i in range(len(_tracers) - 1, -1, -1):
        if _tracers[i] is tracer:
            del _tracers[i]
            break
    if not _tracers:
        lp_stats.remove_sink(_on_record)
        _stack.clear()


def reset() -> None:
    """Drop every installed tracer, open span, and the stats sink.

    For process-pool worker entry points: a fork-started worker inherits
    the driver's installed tracer, so without a reset the worker's spans
    would be delivered to that orphaned copy and vanish instead of being
    collected by a worker-local tracer and shipped home.
    """
    del _tracers[:]
    _stack.clear()
    lp_stats.remove_sink(_on_record)


def adopt_spans(
    payloads: Sequence[Dict[str, Any]],
    parent: Optional[Span] = None,
) -> List[Span]:
    """Graft foreign span payloads into the installed tracer.

    The driver-side half of the sweep handoff: workers ship
    ``Span.to_json()`` lists home, and the driver grafts them under its
    current open span (or *parent* when given).  No-op when tracing is off
    or *payloads* is empty.
    """
    if not _tracers or not payloads:
        return []
    if parent is None:
        parent = current_span()
    return _tracers[0].adopt(payloads, parent=parent)


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install a tracer for the duration of the scope (exception-safe)."""
    tracer = tracer or Tracer()
    install(tracer)
    try:
        yield tracer
    finally:
        uninstall(tracer)


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Optional[Span]]:
    """Open one traced span; yields the :class:`Span` (``None`` when
    tracing is off, so call sites guard attribute writes with ``if sp:``).

    Teardown mirrors :func:`~repro.lp.stats.collect_stats`: the span is
    removed from the open stack by identity, so stacks unwound out of
    order under exceptions still close every span exactly once.
    """
    if not _tracers:
        yield None
        return
    tracer = _tracers[0]
    parent = _stack[-1] if _stack else None
    sp = Span(
        name=name,
        span_id=tracer._allocate_id(),
        parent_id=parent.span_id if parent is not None else None,
        start_ns=_now_ns(),
        attrs=attrs,
    )
    _stack.append(sp)
    try:
        yield sp
    finally:
        sp.end_ns = _now_ns()
        for i in range(len(_stack) - 1, -1, -1):
            if _stack[i] is sp:
                del _stack[i]
                break
        for tracer in tuple(_tracers):
            tracer.collect(sp)


@contextmanager
def suspended() -> Iterator[None]:
    """Temporarily disable tracing (and its stats sink) inside the scope.

    The escape hatch for timing experiments: E14 measures cold-solve
    wall-clock, and even cheap span bookkeeping inside the timed region
    would show up in its ``seconds`` column — so it wraps the timed calls
    in ``suspended()`` and stays trace-off by design (documented in
    EXPERIMENTS.md).  Open spans are left open; they simply receive no
    children and no counter deltas while suspended.
    """
    if not _tracers:
        yield
        return
    saved_tracers = _tracers[:]
    saved_stack = _stack[:]
    del _tracers[:]
    _stack.clear()
    lp_stats.remove_sink(_on_record)
    try:
        yield
    finally:
        _tracers.extend(saved_tracers)
        _stack.extend(saved_stack)
        if _tracers:
            lp_stats.add_sink(_on_record)
