"""Rounding substrate: bipartite matching, pseudo-forests, LST, iterative."""

from .lst import assignment_loads, build_unrelated_lp, lst_round, round_fractional_solution
from .matching import is_perfect_on_left, maximum_bipartite_matching
from .pseudoforest import Component, connected_components, is_pseudoforest

__all__ = [
    "Component",
    "assignment_loads",
    "build_unrelated_lp",
    "connected_components",
    "is_perfect_on_left",
    "is_pseudoforest",
    "lst_round",
    "maximum_bipartite_matching",
    "round_fractional_solution",
]
