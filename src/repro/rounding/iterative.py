"""Lemma VI.2 — iterative relaxation rounding for assignment + packing LPs.

The lemma considers programs of the form

    min Σ c_q z_q
    s.t. Σ_{i:(i,j)∈R} z_ij = 1      ∀ j ∈ J      (assignment rows)
         Σ_q a_lq z_q ≤ b_l          l = 1..θ     (packing rows, a ≥ 0)
         0 ≤ z ≤ 1

and states: if the LP is feasible and every column satisfies
``Σ_l a_lq / b_l ≤ ρ``, an integral solution exists with no worse cost,
assignment rows satisfied *exactly*, and every packing row ≤ ``(1 + ρ)·b_l``.

We implement the natural iterative-relaxation realization:

1. solve the LP to a vertex (exact simplex — fractionality must be exact);
2. fix every integral variable (0 drops it, 1 assigns the job);
3. if fractional variables remain, *drop* a packing row whose **remaining
   fractional weight** ``F_l = Σ_{q fractional} a_lq`` satisfies
   ``F_l ≤ ρ·b_l + (b_l − W_l)`` with ``W_l`` the weight already fixed to 1
   (final usage ≤ ``W_l + F_l ≤ (1 + ρ)·b_l``; the textbook rule
   ``F_l ≤ ρ·b_l`` is the conservative special case ``W_l = b_l``), or —
   for Theorem VI.1's variant — a row with at most ``max_drop_vars``
   fractional variables (overshoot ≤ that many × the row's max coefficient);
4. repeat on the reduced LP.

The paper defers the existence argument for step 3 to the unavailable full
version; when neither rule fires we drop the row with the smallest
fractional-weight ratio and record it (``fallback_drops``).

**Completeness of the residual rule.**  When ``ρ`` is at least the true
column-sum bound :func:`column_rho`, the residual rule in fact *always*
fires, so the fallback is unreachable: at a vertex with fractional set
``Q``, open groups ``g`` and (independent) tight packing rows ``t`` one has
``|Q| ≤ g + t`` and ``Σ_{q∈Q} z_q = g``, hence

    Σ_l [F_l − (b_l − W_l)]/b_l = Σ_q (1 − z_q)·(Σ_l a_lq/b_l) ≤ ρ·t,

so not every row can have ``F_l > ρ·b_l + (b_l − W_l)``.  The fallback
therefore only triggers when the caller *declares* a ρ below the column
bound — e.g. applying a theorem's ρ formula to an instance outside its
hypotheses — and in that regime the (1+ρ) guarantee can genuinely break.

For that reason the result is **self-certifying**: after rounding, every
row's achieved usage is checked against the limit its drop certified
(``(1+ρ)·b`` for weight-rule and fallback drops, ``W + F`` at drop time for
the Theorem VI.1 variable-count rule, ``b`` for rows never dropped) and a
structured :class:`~repro.exceptions.RoundingCertificationError` carrying
the per-row violations is raised when any limit is exceeded — instead of
only reporting violations post-hoc.  Experiment E16 maps the resulting
phase diagram on adversarial odd-cycle families.

**Zero-bound packing rows** (``b_l = 0``) are legal, with the convention
that the row must be satisfied exactly: the LP forces every variable with a
positive coefficient on it to 0, fractional weight on it is infeasible, it
contributes nothing to :func:`column_rho`, and it is never dropped by the
fallback (its certified limit is 0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple, Union

from .._fraction import to_fraction
from ..exceptions import InfeasibleError, RoundingCertificationError, RoundingError
from ..lp.model import LinearProgram
from ..lp.solve import solve_lp

VarKey = Hashable


@dataclass(frozen=True)
class PackingRow:
    """One packing constraint ``Σ a_q z_q ≤ bound``.

    Coefficients must be non-negative and the bound ≥ 0.  A zero bound is
    the "satisfied exactly by fixed variables" convention documented in the
    module docstring; a negative bound has no feasible packing reading.
    """

    name: str
    coeffs: Dict[VarKey, Fraction]
    bound: Fraction

    def __post_init__(self):
        coeffs = {q: to_fraction(a) for q, a in self.coeffs.items()}
        bound = to_fraction(self.bound)
        negative = [q for q, a in coeffs.items() if a < 0]
        if negative:
            raise RoundingError(
                f"packing row {self.name} has negative coefficients on "
                f"{negative!r}"
            )
        if bound < 0:
            raise RoundingError(
                f"packing row {self.name} has negative bound {bound}"
            )
        object.__setattr__(self, "coeffs", coeffs)
        object.__setattr__(self, "bound", bound)

    def usage(self, values: Mapping[VarKey, Union[int, Fraction]]) -> Fraction:
        return sum(
            (a * to_fraction(values.get(q, 0)) for q, a in self.coeffs.items()),
            Fraction(0),
        )


@dataclass
class IterativeRoundingResult:
    values: Dict[VarKey, int]
    """Integral 0/1 values; exactly one 1 per assignment group."""

    row_usage: Dict[str, Fraction]
    """Final ``Σ a_q z̄_q`` per packing row."""

    row_bounds: Dict[str, Fraction]

    dropped_rows: List[str]
    fallback_drops: int
    iterations: int
    objective: Fraction

    certified_limits: Dict[str, Fraction] = field(default_factory=dict)
    """Per-row usage limit the drop rules certified (see module docstring)."""

    def violation_ratio(self, name: str) -> Fraction:
        bound = self.row_bounds[name]
        if bound == 0:
            return Fraction(0) if self.row_usage[name] == 0 else Fraction(10**9)
        return self.row_usage[name] / bound

    @property
    def max_violation_ratio(self) -> Fraction:
        ratios = [self.violation_ratio(name) for name in self.row_bounds]
        return max(ratios) if ratios else Fraction(0)

    def certification_violations(self) -> Dict[str, Tuple[Fraction, Fraction, Fraction]]:
        """Rows whose achieved usage exceeds their certified limit."""
        return {
            name: (self.row_usage[name], limit, self.row_bounds[name])
            for name, limit in self.certified_limits.items()
            if self.row_usage[name] > limit
        }

    def certify(self) -> "IterativeRoundingResult":
        """Raise :class:`RoundingCertificationError` on any violated limit."""
        violations = self.certification_violations()
        if violations:
            raise RoundingCertificationError(violations, result=self)
        return self


def column_rho(
    groups: Mapping[Hashable, Sequence[VarKey]],
    packing: Sequence[PackingRow],
) -> Fraction:
    """``max_q Σ_l a_lq / b_l`` — the lemma's column-sum parameter.

    Zero-bound rows are excluded from the sum: by convention they must be
    satisfied exactly (any variable with a positive coefficient on one is
    forced to 0 by the LP), so they carry no rounding slack to parameterize.
    """
    totals: Dict[VarKey, Fraction] = {}
    for row in packing:
        if row.bound < 0:
            raise RoundingError(f"packing row {row.name} has negative bound")
        if row.bound == 0:
            continue
        for q, a in row.coeffs.items():
            totals[q] = totals.get(q, Fraction(0)) + a / row.bound
    return max(totals.values(), default=Fraction(0))


def _residual(row: PackingRow, fixed: Mapping[VarKey, int]) -> Fraction:
    """``b − W``: the row bound minus the weight already fixed to 1.

    Evaluated twice per iteration *on purpose* — once before the LP solve
    (the constraint rhs) and once after this iteration's fixes (the drop
    rule's ``W``); conflating the two would overestimate the residual and
    make the drop rule unsound.
    """
    return row.bound - sum(
        (a for q, a in row.coeffs.items() if fixed.get(q) == 1), Fraction(0)
    )


def iterative_round(
    groups: Mapping[Hashable, Sequence[VarKey]],
    packing: Sequence[PackingRow],
    costs: Optional[Mapping[VarKey, Union[int, Fraction]]] = None,
    rho: Optional[Fraction] = None,
    max_drop_vars: Optional[int] = None,
    backend: str = "exact",
    certify: bool = True,
    kernel: Optional[str] = None,
) -> IterativeRoundingResult:
    """Round an assignment+packing LP per Lemma VI.2.

    Parameters
    ----------
    groups:
        ``job -> candidate variable keys``; each group becomes one equality
        row ``Σ z = 1``.  Keys must be globally unique across groups.
    packing:
        The packing rows (non-negative coefficients, non-negative bounds).
    rho:
        Drop threshold for the fractional-weight rule; defaults to the
        column-sum bound :func:`column_rho` (the lemma's ρ).  Declaring a
        smaller ρ is allowed (it is how the fallback path is reached at
        all), but the (1+ρ) certification then really can fail.
    max_drop_vars:
        When set, additionally drop rows with at most this many remaining
        fractional variables (Theorem VI.1 uses 2, giving its 3×(bound)).
    certify:
        Verify the achieved usage of every row against its certified limit
        and raise :class:`RoundingCertificationError` on any excess
        (default).  Pass ``False`` to obtain the uncertified result.
    kernel:
        Exact pivoting kernel for the re-solves (``None`` = process
        default).  Each iteration's LP is warm-started from the previous
        iteration's point restricted to the still-free variables — that
        restriction stays feasible for the residual system (1-fixed
        contributions are subtracted from the bounds), so the crash basis
        typically skips phase 1 outright.
    """
    all_keys: List[VarKey] = []
    owner: Dict[VarKey, Hashable] = {}
    for job, keys in groups.items():
        if not keys:
            raise InfeasibleError(f"assignment group {job!r} has no candidates")
        for q in keys:
            if q in owner:
                raise RoundingError(f"variable {q!r} appears in two groups")
            owner[q] = job
            all_keys.append(q)
    cost_map: Dict[VarKey, Fraction] = {
        q: to_fraction(costs[q]) for q in costs
    } if costs else {}
    if rho is None:
        rho = column_rho(groups, packing)

    fixed: Dict[VarKey, int] = {}
    assigned_jobs: Dict[Hashable, VarKey] = {}
    active_rows: List[PackingRow] = list(packing)
    dropped: List[str] = []
    drop_limits: Dict[str, Fraction] = {}
    fallback_drops = 0
    iterations = 0
    warm: Optional[Dict[VarKey, Fraction]] = None
    carried = None  # last iteration's WarmState (keys survive shrinking)

    while True:
        iterations += 1
        free_keys = [q for q in all_keys if q not in fixed]
        open_jobs = [job for job in groups if job not in assigned_jobs]
        if not open_jobs:
            break

        lp = LinearProgram()
        for q in free_keys:
            # The explicit ub matters here even though the group rows imply
            # it: Lemma VI.2's drop rules are calibrated against vertices of
            # the box-constrained formulation.
            lp.add_variable(q, lb=0, ub=1)
        for job in open_jobs:
            candidates = [q for q in groups[job] if q not in fixed]
            if not candidates:
                raise RoundingError(
                    f"assignment group {job!r} lost all candidates"
                )  # pragma: no cover - impossible: zeros only set by the LP
            lp.add_constraint({q: 1 for q in candidates}, "==", 1)
        for row in active_rows:
            coeffs = {q: a for q, a in row.coeffs.items() if q not in fixed and lp.has_variable(q)}
            lp.add_constraint(coeffs, "<=", _residual(row, fixed), name=row.name)
        if cost_map:
            lp.set_objective({q: cost_map.get(q, Fraction(0)) for q in free_keys})
        solution = solve_lp(
            lp, backend=backend, warm_values=warm, kernel=kernel,
            warm_state=carried,
        )
        if not solution.is_optimal:
            raise InfeasibleError(
                "iterative rounding LP became infeasible (input LP was "
                "infeasible to begin with)"
            )
        # Carry the basis into the next iteration's solve.  The residual
        # system shrinks (fixed columns vanish, rows close/drop), so the
        # state is often stale by dimension — the solver then degrades to
        # the *warm* point below; when only columns were fixed it
        # refactorizes the surviving basis and skips phase 1.
        carried = solution.warm_state

        progress = False
        fractional: List[VarKey] = []
        for q in free_keys:
            value = solution.value(q)
            if value == 0:
                fixed[q] = 0
                progress = True
            elif value == 1:
                fixed[q] = 1
                job = owner[q]
                if job in assigned_jobs:
                    raise RoundingError(f"group {job!r} received two assignments")
                assigned_jobs[job] = q
                progress = True
            else:
                fractional.append(q)
        # Setting siblings of a 1-fixed variable to 0 keeps groups exact.
        for job, q_one in list(assigned_jobs.items()):
            for q in groups[job]:
                if q != q_one and q not in fixed:
                    fixed[q] = 0
                    if q in fractional:
                        fractional.remove(q)
                    progress = True

        # Next iteration's warm start: this vertex restricted to the keys
        # that are still free stays feasible for the residual system.
        warm = {q: v for q, v in solution.values.items() if v and q not in fixed}

        if not fractional:
            continue  # all remaining either fixed now or done next loop

        # Try to drop a packing row.  Sound rule: with F the remaining
        # fractional weight and W the weight already fixed to 1, the final
        # usage is at most W + F, so requiring F ≤ ρ·b + (b − W) keeps the
        # row within (1 + ρ)·b.  (The textbook rule F ≤ ρ·b is the special
        # case W = b; using the residual covers strictly more rows.)
        frac_set = set(fractional)
        best_row: Optional[PackingRow] = None
        best_limit: Optional[Fraction] = None
        for row in active_rows:
            frac_weight = sum(
                (a for q, a in row.coeffs.items() if q in frac_set), Fraction(0)
            )
            frac_count = sum(1 for q in row.coeffs if q in frac_set)
            if frac_count == 0:
                continue
            residual = _residual(row, fixed)
            if frac_weight <= rho * row.bound + residual:
                best_row = row
                best_limit = (1 + rho) * row.bound
                break
            if max_drop_vars is not None and frac_count <= max_drop_vars:
                # Theorem VI.1's rule certifies final usage ≤ W + F at drop
                # time (≤ b + max_drop_vars·max coefficient).
                best_row = row
                best_limit = max(
                    (1 + rho) * row.bound,
                    row.bound - residual + frac_weight,
                )
                break
        if best_row is not None:
            active_rows.remove(best_row)
            dropped.append(best_row.name)
            drop_limits[best_row.name] = best_limit
            progress = True
        elif not progress:
            # Fallback: the paper's full version guarantees a droppable row;
            # if our rules miss, drop the least-loaded row and record it.
            # Unreachable when rho ≥ column_rho (see module docstring), so
            # reaching it means rho was declared below the column bound; the
            # (1+ρ) limit recorded here is verified by the certification.
            def ratio(row: PackingRow) -> Fraction:
                w = sum((a for q, a in row.coeffs.items() if q in frac_set), Fraction(0))
                return w / row.bound

            candidates = [
                row
                for row in active_rows
                if row.bound > 0 and any(q in frac_set for q in row.coeffs)
            ]
            if not candidates:
                raise RoundingError(
                    "no droppable packing row constrains the fractional "
                    "variables, yet the LP vertex is fractional — degenerate "
                    "input (zero-bound rows are never dropped)"
                )
            best_row = min(candidates, key=ratio)
            active_rows.remove(best_row)
            dropped.append(best_row.name)
            drop_limits[best_row.name] = (1 + rho) * best_row.bound
            fallback_drops += 1

    values = {q: fixed.get(q, 0) for q in all_keys}
    row_usage = {row.name: row.usage(values) for row in packing}
    row_bounds = {row.name: row.bound for row in packing}
    # Rows never dropped were enforced by every LP, so their limit is b_l
    # itself; dropped rows carry the limit their drop rule certified.
    certified_limits = {
        row.name: drop_limits.get(row.name, row.bound) for row in packing
    }
    objective = sum(
        (cost_map.get(q, Fraction(0)) * v for q, v in values.items()), Fraction(0)
    )
    result = IterativeRoundingResult(
        values=values,
        row_usage=row_usage,
        row_bounds=row_bounds,
        dropped_rows=dropped,
        fallback_drops=fallback_drops,
        iterations=iterations,
        objective=objective,
        certified_limits=certified_limits,
    )
    return result.certify() if certify else result
