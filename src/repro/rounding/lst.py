"""Lenstra–Shmoys–Tardos rounding for unrelated machine scheduling.

Given a horizon ``T`` at which the R||Cmax assignment LP

    Σ_i x_{ij} = 1            (j ∈ J, over machines i with p_{ij} ≤ T)
    Σ_j p_{ij} x_{ij} ≤ T     (i ∈ M)
    x ≥ 0

is feasible, the classic rounding [Lenstra, Shmoys, Tardos 1990] produces an
*integral* assignment with makespan at most ``2T``: integral variables of a
basic solution are kept, and the fractional jobs — whose support graph is a
pseudo-forest in which every fractional job has degree ≥ 2 — are matched to
machines so each machine receives at most one extra job of size ≤ T.

This is the engine behind Theorem V.2: after Lemma V.1's push-down, the
hierarchical LP solution lives on singletons and *is* such an LP solution.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Tuple, Union

from .._fraction import INF, is_inf, to_fraction, to_fraction_finite
from ..exceptions import InfeasibleError, RoundingError
from ..lp.model import LinearProgram
from ..lp.solve import solve_lp
from .matching import maximum_bipartite_matching
from .pseudoforest import connected_components

Time = Union[int, Fraction]
PMatrix = Mapping[int, Mapping[int, Union[int, Fraction, float]]]


def build_unrelated_lp(p: PMatrix, T: Time) -> LinearProgram:
    """The R||Cmax assignment LP at horizon *T* (variables ``("x", i, j)``).

    *p* maps ``job -> {machine: time}``; pairs with ``p_{ij} > T`` (or INF)
    get no variable, which encodes the pruning.
    """
    T = to_fraction(T)
    lp = LinearProgram()
    machines: Dict[int, List[int]] = {}
    for j in sorted(p):
        allowed = []
        for i in sorted(p[j]):
            value = p[j][i]
            if not is_inf(value) and to_fraction(value) <= T:
                # ub implied by the assignment row; a bound row would only
                # bloat the tableau.
                lp.add_variable(("x", i, j), lb=0)
                allowed.append(i)
                machines.setdefault(i, []).append(j)
        if not allowed:
            lp.add_constraint({}, "==", 1, name=f"assign[{j}]")  # infeasible row
        else:
            lp.add_constraint(
                {("x", i, j): 1 for i in allowed}, "==", 1, name=f"assign[{j}]"
            )
    for i in sorted(machines):
        lp.add_constraint(
            {("x", i, j): to_fraction(p[j][i]) for j in machines[i]},
            "<=",
            T,
            name=f"load[{i}]",
        )
    return lp


def _fractional_graph(
    values: Mapping[Tuple[str, int, int], Fraction],
) -> Tuple[Dict[int, int], List[Tuple[Tuple[str, int], Tuple[str, int]]]]:
    """Split a basic LP solution into integral assignments + fractional edges.

    Returns ``(integral: job -> machine, edges)`` where edges connect
    ``("job", j)`` and ``("machine", i)`` nodes for fractional variables.
    """
    integral: Dict[int, int] = {}
    edges: List[Tuple[Tuple[str, int], Tuple[str, int]]] = []
    for (tag, i, j), value in sorted(values.items(), key=lambda kv: (kv[0][2], kv[0][1])):
        if tag != "x" or value == 0:
            continue
        if value == 1:
            if j in integral:
                raise RoundingError(f"job {j} integrally assigned twice")
            integral[j] = i
        else:
            edges.append((("job", j), ("machine", i)))
    return integral, edges


def round_fractional_solution(
    values: Mapping[Tuple[str, int, int], Fraction],
) -> Dict[int, int]:
    """Round a basic solution of the assignment LP to an integral assignment.

    Every fractional job is matched to one of its fractional machines; the
    matching exists because each pseudo-tree component with all job degrees
    ≥ 2 satisfies Hall's condition.  Raises :class:`RoundingError` when the
    input is not vertex-shaped (e.g. produced by a non-basic solver).
    """
    integral, edges = _fractional_graph(values)
    if not edges:
        return integral
    for component in connected_components(edges):
        if not component.is_pseudotree:
            raise RoundingError(
                "fractional support has a component with more edges than "
                "nodes; the LP solution is not basic"
            )
    adjacency: Dict[int, List[int]] = {}
    for (tag_u, j), (tag_v, i) in edges:
        adjacency.setdefault(j, []).append(i)
    matching = maximum_bipartite_matching(adjacency)
    unmatched = [j for j in adjacency if j not in matching]
    if unmatched:
        raise RoundingError(
            f"fractional jobs {unmatched} could not be matched; "
            f"the LP solution is not basic"
        )
    result = dict(integral)
    for j, i in matching.items():
        if j in result:
            raise RoundingError(f"job {j} both integral and fractional")
        result[j] = i
    return result


def lst_round(
    p: PMatrix,
    T: Time,
    backend: str = "hybrid",
    kernel: Optional[str] = None,
) -> Dict[int, int]:
    """Full LST step: solve the assignment LP at *T*, then round.

    Returns ``job -> machine``.  The resulting per-machine load is at most
    ``2T`` (LP load ≤ T plus at most one extra job of size ≤ T).  Raises
    :class:`InfeasibleError` when the LP itself is infeasible at *T*.

    The rounding needs a *basic* solution; the exact and hybrid backends
    guarantee one (with either exact *kernel* — ``None`` means the process
    default, normally the revised simplex).  With ``backend="scipy"`` the
    rationalized point is re-checked exactly first, and any uncertified or
    non-vertex point is repaired by an exact re-solve (warm-started from
    the candidate) instead of being propagated into the pseudo-forest
    argument.
    """
    lp = build_unrelated_lp(p, T)
    solution = solve_lp(lp, backend=backend, kernel=kernel)
    if not solution.is_optimal and backend == "scipy":
        # Callers sit exactly on the feasibility knife-edge (T = certified
        # T*); never let a float solver's "infeasible" be the last word.
        solution = solve_lp(lp, backend="exact", kernel=kernel)
    if not solution.is_optimal:
        raise InfeasibleError(f"assignment LP infeasible at T={T}")
    if backend == "scipy":
        if lp.check_values(solution.values):
            solution = solve_lp(
                lp, backend="exact", warm_values=solution.values, kernel=kernel
            )
            if not solution.is_optimal:  # pragma: no cover - float false positive
                raise InfeasibleError(f"assignment LP infeasible at T={T}")
        else:
            try:
                return round_fractional_solution(solution.values)
            except RoundingError:
                # Feasible but not vertex-shaped (HiGHS interior/crossover
                # artifact): repair with an exact basic re-solve.
                solution = solve_lp(
                    lp, backend="exact", warm_values=solution.values, kernel=kernel
                )
    return round_fractional_solution(solution.values)


def assignment_loads(p: PMatrix, assignment: Mapping[int, int]) -> Dict[int, Fraction]:
    """Per-machine load of an integral assignment.

    Assigning a job to a machine with ``p = INF`` is a domain error
    (:class:`~repro.exceptions.InvalidInstanceError`), not a coercion crash.
    """
    loads: Dict[int, Fraction] = {}
    for j, i in assignment.items():
        loads[i] = loads.get(i, Fraction(0)) + to_fraction_finite(
            p[j][i], f"processing time of job {j} on machine {i}"
        )
    return loads
