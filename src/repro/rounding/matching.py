"""Bipartite maximum matching via augmenting paths.

Small, dependency-free substrate used by the Lenstra–Shmoys–Tardos rounding:
the fractional-support graph of a basic LP solution is a pseudo-forest in
which every fractional job has degree ≥ 2, so a matching saturating all jobs
exists; this module finds it.  (Kuhn's algorithm, O(V·E) — the graphs here
have at most ``n + m`` edges, so asymptotics are irrelevant.)
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set

Left = Hashable
Right = Hashable


def maximum_bipartite_matching(
    adjacency: Mapping[Left, Iterable[Right]],
) -> Dict[Left, Right]:
    """Maximum matching of left vertices to right vertices.

    Parameters
    ----------
    adjacency:
        For each left vertex, the iterable of right vertices it may match.

    Returns
    -------
    dict
        ``left -> right`` for every matched left vertex.  Unmatched left
        vertices are absent from the result.
    """
    adj: Dict[Left, List[Right]] = {
        u: sorted(vs, key=repr) for u, vs in adjacency.items()
    }
    match_right: Dict[Right, Left] = {}

    def try_augment(u: Left, visited: Set[Right]) -> bool:
        for v in adj[u]:
            if v in visited:
                continue
            visited.add(v)
            if v not in match_right or try_augment(match_right[v], visited):
                match_right[v] = u
                return True
        return False

    for u in sorted(adj, key=repr):
        try_augment(u, set())

    return {u: v for v, u in match_right.items()}


def is_perfect_on_left(
    adjacency: Mapping[Left, Iterable[Right]],
    matching: Mapping[Left, Right],
) -> bool:
    """Whether every left vertex with at least one edge is matched."""
    return all(u in matching for u, vs in adjacency.items() if list(vs))
