"""Support-graph analysis for basic LP solutions (Section V rounding).

A basic feasible solution of the unrelated-machines LP has at most
``n + m`` non-zero variables; restricted to the *fractional* ones, every
connected component of the bipartite job/machine graph contains at most one
cycle (a *pseudo-forest*).  The Lenstra–Shmoys–Tardos argument hinges on
this structure; the functions here expose it so both the rounding code and
the property tests can check it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Set, Tuple

Node = Hashable
Edge = Tuple[Node, Node]


@dataclass(frozen=True)
class Component:
    nodes: FrozenSet[Node]
    edges: Tuple[Edge, ...]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def has_cycle(self) -> bool:
        # A connected graph has a cycle iff #edges ≥ #nodes.
        return self.num_edges >= self.num_nodes

    @property
    def is_pseudotree(self) -> bool:
        """Connected with at most one cycle: #edges ≤ #nodes."""
        return self.num_edges <= self.num_nodes


def connected_components(edges: Iterable[Edge]) -> List[Component]:
    """Split an undirected edge list into connected components."""
    edge_list = list(edges)
    adjacency: Dict[Node, Set[Node]] = {}
    for u, v in edge_list:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    seen: Set[Node] = set()
    components: List[Component] = []
    for start in adjacency:
        if start in seen:
            continue
        stack = [start]
        nodes: Set[Node] = set()
        while stack:
            node = stack.pop()
            if node in nodes:
                continue
            nodes.add(node)
            stack.extend(adjacency[node] - nodes)
        seen |= nodes
        comp_edges = tuple(
            (u, v) for u, v in edge_list if u in nodes
        )
        components.append(Component(frozenset(nodes), comp_edges))
    return components


def is_pseudoforest(edges: Iterable[Edge]) -> bool:
    """Whether every connected component has at most one cycle."""
    return all(c.is_pseudotree for c in connected_components(edges))
