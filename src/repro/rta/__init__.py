"""Response-time analysis: analytic schedulability without simulation.

The subsystem answers "does an assignment with makespan ≤ T exist within
this scheduler class?" in polynomial time with exact Fractions and zero LP
solves, grounded in the Theorem IV.3 characterization: necessary
demand-bound refutations (:mod:`repro.rta.demand`), constructive
capacity-verified witnesses (:mod:`repro.rta.packing`), busy-window
response bounds in the pycpa ``b_plus`` idiom
(:mod:`repro.rta.busy_window`), and the :func:`analytic_schedulable`
façade returning a :class:`Verdict` with a full certificate
(:mod:`repro.rta.engine`).
"""

from .busy_window import busy_windows, makespan_bound, response_bounds
from .demand import DemandProfile, demand_profile, infeasibility_witness
from .engine import (
    SCHEDULABLE,
    UNKNOWN,
    UNSCHEDULABLE,
    Verdict,
    analytic_schedulable,
)
from .packing import (
    STRATEGIES,
    first_fit_decreasing,
    semi_federated,
    worst_fit_decreasing,
)

__all__ = [
    "DemandProfile",
    "SCHEDULABLE",
    "STRATEGIES",
    "UNKNOWN",
    "UNSCHEDULABLE",
    "Verdict",
    "analytic_schedulable",
    "busy_windows",
    "demand_profile",
    "first_fit_decreasing",
    "infeasibility_witness",
    "makespan_bound",
    "response_bounds",
    "semi_federated",
    "worst_fit_decreasing",
]
