"""Busy-window response-time bounds for a fixed assignment.

The pycpa idiom computes a task's worst-case response as the fixpoint of a
busy-window recursion ``w ← b_plus(w)`` — the window grows until it absorbs
all competing demand.  In this offline template setting demand is
load-independent (one instance of every job per window), so the recursion
converges in a single step and the busy window of a family set α is the
closed form

    W(α) = max( nested_volume(α) / |α| ,
                max_{child β of α} W(β) ,
                max_{j : mask(j) = α} p_{αj} )

computed bottom-up over the laminar forest — the per-level demand
aggregation of the hierarchical analysis.  ``W(α)`` is the smallest horizon
for which the subtree rooted at α passes all its (IP-2) capacity and (2c)
constraints, so by Theorem IV.3 the subtree's jobs are realizable within
``W(α)``: the per-job *response bound* reported here is the busy window of
the root above the job's mask, and the overall makespan bound equals
:func:`repro.core.assignment.min_T_for_assignment` exactly (pinned by the
test suite).

These are witness bounds for the assignment, not for one particular
realized schedule: a schedule *exists* completing every job of the subtree
by W(root), while a template built for a larger global horizon ``T`` may
legitimately spread pieces across all of ``[0, T)`` (McNaughton wrap).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict

from .._fraction import to_fraction
from ..core.assignment import Assignment, set_volumes
from ..core.instance import Instance
from ..core.laminar import MachineSet


def busy_windows(
    instance: Instance, assignment: Assignment
) -> Dict[MachineSet, Fraction]:
    """``W(α)`` for every family set, bottom-up in one pass."""
    family = instance.family
    volumes = set_volumes(instance, assignment)
    local_peak: Dict[MachineSet, Fraction] = {a: Fraction(0) for a in family.sets}
    for j, alpha in assignment.items():
        p = to_fraction(instance.p(j, alpha))
        if p > local_peak[alpha]:
            local_peak[alpha] = p
    nested: Dict[MachineSet, Fraction] = {}
    W: Dict[MachineSet, Fraction] = {}
    for alpha in family.bottom_up():
        kids = family.children(alpha)
        nested[alpha] = volumes[alpha] + sum(
            (nested[beta] for beta in kids), Fraction(0)
        )
        W[alpha] = max(
            Fraction(nested[alpha], len(alpha)),
            local_peak[alpha],
            max((W[beta] for beta in kids), default=Fraction(0)),
        )
    return W


def response_bounds(
    instance: Instance, assignment: Assignment
) -> Dict[int, Fraction]:
    """Per-job worst-case response bound: the busy window of the root of
    the tree containing the job's mask."""
    family = instance.family
    W = busy_windows(instance, assignment)
    root_of: Dict[MachineSet, MachineSet] = {}
    for alpha in family.sets:
        ancestors = family.ancestors(alpha)
        root_of[alpha] = ancestors[-1] if ancestors else alpha
    return {j: W[root_of[assignment[j]]] for j in assignment}


def makespan_bound(instance: Instance, assignment: Assignment) -> Fraction:
    """``max_roots W(root)`` — equals ``min_T_for_assignment`` exactly."""
    W = busy_windows(instance, assignment)
    return max(W[root] for root in instance.family.roots)
