"""Demand-bound profiles: the *necessary* side of the analytic test.

By Theorem IV.3 the (IP-2) constraints are necessary and sufficient, so any
quantity that lower-bounds the left-hand side of a (2b)/(2c) constraint in
**every** assignment with makespan ≤ ``T`` yields a sound refutation: if the
bound already exceeds the capacity, no assignment exists and the exact
search (:func:`repro.core.exact.find_assignment_within`) is guaranteed to
return ``None``.  This module computes four such bounds, all polynomial and
all exact Fractions:

* **no feasible mask** — a job whose every admissible set has ``P = ∞`` or
  ``P > T`` violates (2c) outright;
* **trapped-job demand** — every feasible mask of job *j* lies inside the
  minimal family set containing their union (``lca(j)``), so *j* contributes
  at least its cheapest feasible time to the nested volume of every
  ``α ⊇ lca(j)``; summing over jobs gives a demand-bound function ``D(α)``
  that must satisfy ``D(α) ≤ |α|·T`` (the per-level aggregation the busy
  window of the pycpa idiom iterates — here demand is load-independent, so
  the fixpoint is the sum itself);
* **total volume** — every mask lies inside some root, so the cheapest
  total volume must fit in ``T · Σ_roots |root|``;
* **heavy-singleton pigeonhole** — two jobs that can *only* run pinned and
  each need more than ``T/2`` cannot share a machine, so the heavy pinned
  jobs need at least as many distinct machines as there are such jobs.

The profile is also the shared preprocessing for the constructive side
(:mod:`repro.rta.packing`): per-job feasible options, cheapest times, and
the demand accumulated per family set.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple, Union

from .._fraction import is_inf, to_fraction
from ..core.instance import Instance
from ..core.laminar import MachineSet

#: One feasible choice for a job: ``(processing time, mask)`` with the time
#: finite and ≤ T.  Options are kept sorted cheapest-first with larger masks
#: breaking ties (deterministic across runs).
Option = Tuple[Fraction, MachineSet]


def _option_key(option: Option):
    p, alpha = option
    return (p, -len(alpha), sorted(alpha))


@dataclass
class DemandProfile:
    """Everything the analytic tests need to know about ``(instance, T)``."""

    T: Fraction
    options: Tuple[Tuple[Option, ...], ...]
    """Per job: feasible ``(p, mask)`` choices, cheapest-first."""

    min_feasible: Tuple[Fraction, ...]
    """Cheapest feasible time per job (0 for jobs with no option)."""

    trap: Tuple[Optional[MachineSet], ...]
    """Per job: the minimal family set containing every feasible mask
    (``None`` when no single family set does, e.g. options across two
    disjoint roots, or when the job has no option)."""

    demand: Dict[MachineSet, Fraction]
    """``D(α) = Σ_{j : trap(j) ⊆ α} min_feasible(j)`` for every family set."""

    no_option: Tuple[int, ...]
    """Jobs with no feasible ``(p ≤ T)`` mask at all."""

    def capacity(self, alpha: MachineSet) -> Fraction:
        """The (2b) right-hand side ``|α|·T``."""
        return len(alpha) * self.T

    def demand_margin(self) -> Fraction:
        """``max_α D(α) / (|α|·T)`` — how full the tightest level is."""
        if self.T <= 0:
            return Fraction(0)
        worst = Fraction(0)
        for alpha, d in self.demand.items():
            worst = max(worst, Fraction(d, len(alpha) * self.T))
        return worst


def demand_profile(instance: Instance, T: Union[int, Fraction]) -> DemandProfile:
    """Precompute the per-job option lists and the demand-bound function."""
    T = to_fraction(T)
    family = instance.family
    options: List[Tuple[Option, ...]] = []
    min_feasible: List[Fraction] = []
    trap: List[Optional[MachineSet]] = []
    no_option: List[int] = []
    for j in range(instance.n):
        opts: List[Option] = []
        for alpha in family.sets:
            p = instance.p(j, alpha)
            if not is_inf(p) and to_fraction(p) <= T:
                opts.append((to_fraction(p), alpha))
        opts.sort(key=_option_key)
        options.append(tuple(opts))
        if not opts:
            no_option.append(j)
            min_feasible.append(Fraction(0))
            trap.append(None)
            continue
        min_feasible.append(opts[0][0])
        union = frozenset().union(*(alpha for _p, alpha in opts))
        trap.append(family.minimal_containing(union))

    demand: Dict[MachineSet, Fraction] = {a: Fraction(0) for a in family.sets}
    for j, lca in enumerate(trap):
        if lca is not None:
            demand[lca] += min_feasible[j]
    # Bottom-up aggregation: D(α) sums the whole subtree below α, exactly
    # the per-level demand-bound accumulation over the laminar forest.
    for alpha in family.bottom_up():
        parent = family.parent(alpha)
        if parent is not None:
            demand[parent] += demand[alpha]

    return DemandProfile(
        T=T,
        options=tuple(options),
        min_feasible=tuple(min_feasible),
        trap=tuple(trap),
        demand=demand,
        no_option=tuple(no_option),
    )


def infeasibility_witness(
    instance: Instance, profile: DemandProfile
) -> Optional[Dict[str, object]]:
    """The first violated necessary condition, or ``None`` if all hold.

    The returned dict is the UNSCHEDULABLE certificate: a named test plus
    the exact Fractions of the violated inequality, so a verdict can be
    audited without re-running the analysis.
    """
    T = profile.T
    family = instance.family

    if profile.no_option:
        j = profile.no_option[0]
        return {
            "test": "no-feasible-mask",
            "detail": f"job {j} has no admissible set with P ≤ {T}",
            "job": j,
            "lhs": None,
            "rhs": T,
        }

    # Per-set demand bound, checked top-down so the widest violated level
    # (the most informative one) is reported.
    for alpha in family.top_down():
        d = profile.demand[alpha]
        cap = profile.capacity(alpha)
        if d > cap:
            return {
                "test": "demand-bound",
                "detail": f"trapped demand of α={sorted(alpha)} exceeds |α|·T",
                "set": alpha,
                "lhs": d,
                "rhs": cap,
            }

    # Cheapest total volume vs the capacity of the whole forest (catches
    # jobs whose options straddle several roots and so have no trap set).
    total = sum(profile.min_feasible, Fraction(0))
    forest_cap = sum((len(r) * T for r in family.roots), Fraction(0))
    if total > forest_cap:
        return {
            "test": "total-volume",
            "detail": "cheapest total volume exceeds the forest capacity",
            "lhs": total,
            "rhs": forest_cap,
        }

    # Pigeonhole over heavy pinned jobs: each needs > T/2 on a singleton and
    # has no non-singleton escape, so no two of them can share a machine.
    heavy = [
        j
        for j in range(instance.n)
        if profile.options[j]
        and all(len(alpha) == 1 for _p, alpha in profile.options[j])
        and 2 * profile.min_feasible[j] > T
    ]
    if heavy:
        machines = frozenset().union(
            *(alpha for j in heavy for _p, alpha in profile.options[j])
        )
        if len(heavy) > len(machines):
            return {
                "test": "heavy-singleton-pigeonhole",
                "detail": (
                    f"{len(heavy)} pinned jobs heavier than T/2 share only "
                    f"{len(machines)} machines"
                ),
                "jobs": tuple(heavy),
                "lhs": Fraction(len(heavy)),
                "rhs": Fraction(len(machines)),
            }

    return None
