"""The analytic schedulability façade: verdicts with certificates.

``analytic_schedulable(instance, scheduler_class, T_ref)`` answers "does a
schedule with makespan ≤ T_ref exist within this scheduler class?" without
simulating, searching, or solving an LP:

* **UNSCHEDULABLE** — some necessary demand bound is violated
  (:func:`repro.rta.demand.infeasibility_witness`), or the scheduler class
  is structurally inapplicable to the family (same convention as the E15
  acceptance study: a class that cannot express the instance loses it);
* **SCHEDULABLE** — a greedy construction produced a capacity-verified
  assignment (:mod:`repro.rta.packing`), re-checked against (IP-2) and
  annotated with busy-window response bounds
  (:mod:`repro.rta.busy_window`) — the full certificate;
* **UNKNOWN** — neither side could decide; the certificate carries the
  demand margins so callers can see how close the bounds came.

Soundness is the contract (CI-enforced on the E15/E19 grids): a decided
verdict always agrees with the exact branch-and-bound
(:func:`repro.core.exact.find_assignment_within`), because both sides are
grounded in the same Theorem IV.3 characterization.  The whole path is
polynomial and performs **zero** LP solves — the perf-gate artifact proves
it by counter.

Spans: ``rta.analyze`` wraps the query, with ``rta.necessary`` and
``rta.sufficient`` children, so ``--trace`` shows exactly which side
decided and ``--profile`` shows the (empty) solver counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Optional, Union

from ..baselines.restrictions import restrict_instance, restricted_family_for
from ..core.assignment import Assignment, verify_ip2
from ..core.instance import Instance
from ..exceptions import AnalyticSoundnessError, InvalidFamilyError
from ..obs.trace import span as trace_span
from .busy_window import makespan_bound, response_bounds
from .demand import demand_profile, infeasibility_witness
from .packing import STRATEGIES

SCHEDULABLE = "SCHEDULABLE"
UNSCHEDULABLE = "UNSCHEDULABLE"
UNKNOWN = "UNKNOWN"


@dataclass
class Verdict:
    """Outcome of one analytic schedulability query."""

    status: str
    scheduler_class: str
    T: Fraction
    reason: str
    certificate: Dict[str, object] = field(default_factory=dict)
    assignment: Optional[Assignment] = None
    """The constructed witness (SCHEDULABLE only) — valid for the
    class-restricted instance and, since restriction only removes sets,
    for the original instance too."""

    response_bounds: Optional[Dict[int, Fraction]] = None
    """Per-job busy-window response bounds (SCHEDULABLE only), exact."""

    @property
    def decided(self) -> bool:
        return self.status != UNKNOWN

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.status} ({self.scheduler_class} within T={self.T}): {self.reason}"


def analytic_schedulable(
    instance: Instance,
    scheduler_class: str = "hierarchical",
    T_ref: Union[int, Fraction, None] = None,
) -> Verdict:
    """Analytic schedulability of *instance* within *scheduler_class*.

    ``T_ref`` defaults to the instance's trivial makespan lower bound.
    Decided verdicts are sound with respect to the exact solve; UNKNOWN is
    the honest gap of the polynomial bounds.
    """
    T = (
        instance.trivial_bounds()[0]
        if T_ref is None
        else Fraction(T_ref)
    )
    with trace_span(
        "rta.analyze",
        scheduler_class=scheduler_class,
        n=instance.n,
        m=instance.m,
        T=str(T),
    ) as sp:
        verdict = _analyze(instance, scheduler_class, T)
        if sp:
            sp.attrs["status"] = verdict.status
            sp.attrs["reason"] = verdict.reason
        return verdict


def _analyze(instance: Instance, scheduler_class: str, T: Fraction) -> Verdict:
    try:
        sets = restricted_family_for(instance, scheduler_class)
    except InvalidFamilyError as exc:
        return Verdict(
            status=UNSCHEDULABLE,
            scheduler_class=scheduler_class,
            T=T,
            reason="class-inapplicable",
            certificate={"test": "class-inapplicable", "detail": str(exc)},
        )
    restricted = restrict_instance(instance, sets)

    with trace_span("rta.necessary", sets=len(sets)) as nsp:
        profile = demand_profile(restricted, T)
        witness = infeasibility_witness(restricted, profile)
        if nsp:
            nsp.attrs["violated"] = witness["test"] if witness else ""
    if witness is not None:
        cert = dict(witness)
        cert["demand_margin"] = profile.demand_margin()
        return Verdict(
            status=UNSCHEDULABLE,
            scheduler_class=scheduler_class,
            T=T,
            reason=str(witness["test"]),
            certificate=cert,
        )

    with trace_span("rta.sufficient") as ssp:
        for name, strategy in STRATEGIES:
            assignment = strategy(restricted, T, profile)
            if assignment is None:
                continue
            report = verify_ip2(restricted, assignment, T)
            if not report.feasible:  # pragma: no cover - construction bug
                raise AnalyticSoundnessError(
                    f"strategy {name!r} produced an infeasible witness: "
                    + "; ".join(str(v) for v in report.violations)
                )
            bounds = response_bounds(restricted, assignment)
            if ssp:
                ssp.attrs["strategy"] = name
            return Verdict(
                status=SCHEDULABLE,
                scheduler_class=scheduler_class,
                T=T,
                reason=f"witness:{name}",
                certificate={
                    "strategy": name,
                    "masks": {
                        j: tuple(sorted(alpha)) for j, alpha in assignment.items()
                    },
                    "makespan_bound": makespan_bound(restricted, assignment),
                    "response_bounds": dict(bounds),
                },
                assignment=assignment,
                response_bounds=bounds,
            )
        if ssp:
            ssp.attrs["strategy"] = ""

    return Verdict(
        status=UNKNOWN,
        scheduler_class=scheduler_class,
        T=T,
        reason="bounds-inconclusive",
        certificate={
            "strategies_tried": tuple(name for name, _ in STRATEGIES),
            "demand_margin": profile.demand_margin(),
        },
    )
