"""Constructive sufficient tests: build a witness assignment greedily.

A SCHEDULABLE verdict must be *sound*: by Theorem IV.3 an assignment whose
nested volumes respect every (2b) capacity and whose chosen times respect
(2c) is realizable with makespan ≤ ``T``, so any capacity-verified
construction is a certificate — no search, no LP.  The strategies here are
the classic bin-packing heuristics lifted to laminar capacities:

* **first-fit decreasing** — jobs hardest-first, each takes its cheapest
  fitting mask (the partitioned-scheduling workhorse);
* **semi-federated** — the Jiang et al. adaptation: jobs heavier than
  ``T/2`` (which fragment machines badly — no two share one) are routed to
  the migrating root mask where they share capacity fractionally, light
  jobs are first-fit onto singletons; needs the two-level structure
  (root + all singletons) to be present;
* **worst-fit decreasing** — each job takes the fitting option that leaves
  the system least peaked (minimal resulting fill fraction along the
  mask's chain), trading volume for balance.

Placements update the nested-volume vector incrementally along the mask's
ancestor chain; in a laminar family every (2b) constraint a placement can
tighten lies on that chain, so the O(depth) check per placement is exactly
the (IP-2) feasibility test.  Each strategy either returns a full
assignment (already capacity-verified) or ``None`` — failure of a greedy
heuristic proves nothing, which is what the UNKNOWN verdict is for.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..core.assignment import Assignment
from ..core.instance import Instance
from ..core.laminar import MachineSet
from .demand import DemandProfile, Option


class LoadTracker:
    """Incremental nested-volume bookkeeping for one packing run.

    ``nested[α]`` mirrors ``Σ_{β ⊆ α} vol(β)`` of the partial assignment;
    a placement on mask α touches exactly α and its ancestors.
    """

    def __init__(self, instance: Instance, T: Fraction):
        family = instance.family
        self.T = T
        self.nested: Dict[MachineSet, Fraction] = {
            a: Fraction(0) for a in family.sets
        }
        self._chain: Dict[MachineSet, Tuple[MachineSet, ...]] = {
            a: (a,) + family.ancestors(a) for a in family.sets
        }
        self._cap: Dict[MachineSet, Fraction] = {
            a: len(a) * T for a in family.sets
        }

    def fits(self, alpha: MachineSet, p: Fraction) -> bool:
        return all(
            self.nested[beta] + p <= self._cap[beta]
            for beta in self._chain[alpha]
        )

    def place(self, alpha: MachineSet, p: Fraction) -> None:
        for beta in self._chain[alpha]:
            self.nested[beta] += p

    def fill_after(self, alpha: MachineSet, p: Fraction) -> Fraction:
        """Peak fill fraction along α's chain if ``p`` were placed there."""
        return max(
            Fraction(self.nested[beta] + p, self._cap[beta])
            for beta in self._chain[alpha]
        )


def _job_order(instance: Instance, profile: DemandProfile) -> List[int]:
    """Hardest-first (largest cheapest time), index-tiebroken."""
    return sorted(range(instance.n), key=lambda j: (-profile.min_feasible[j], j))


def _pack(
    instance: Instance,
    profile: DemandProfile,
    choose: Callable[[LoadTracker, int, Tuple[Option, ...]], Optional[Option]],
) -> Optional[Assignment]:
    """Run one greedy pass; the assignment returned is capacity-verified
    by construction (every placement passed the chain check)."""
    if profile.no_option:
        return None
    loads = LoadTracker(instance, profile.T)
    masks: Dict[int, MachineSet] = {}
    for j in _job_order(instance, profile):
        option = choose(loads, j, profile.options[j])
        if option is None:
            return None
        p, alpha = option
        loads.place(alpha, p)
        masks[j] = alpha
    return Assignment(masks)


def first_fit_decreasing(
    instance: Instance, T: Union[int, Fraction], profile: DemandProfile
) -> Optional[Assignment]:
    """FFD over laminar capacities: cheapest fitting option per job."""

    def choose(loads: LoadTracker, _j: int, options: Tuple[Option, ...]):
        for p, alpha in options:
            if loads.fits(alpha, p):
                return (p, alpha)
        return None

    return _pack(instance, profile, choose)


def worst_fit_decreasing(
    instance: Instance, T: Union[int, Fraction], profile: DemandProfile
) -> Optional[Assignment]:
    """WFD: among fitting options, pick the one leaving the least peaked
    load (ties broken by option order, i.e. cheapest)."""

    def choose(loads: LoadTracker, _j: int, options: Tuple[Option, ...]):
        best: Optional[Option] = None
        best_fill: Optional[Fraction] = None
        for p, alpha in options:
            if not loads.fits(alpha, p):
                continue
            fill = loads.fill_after(alpha, p)
            if best_fill is None or fill < best_fill:
                best, best_fill = (p, alpha), fill
        return best

    return _pack(instance, profile, choose)


def semi_federated(
    instance: Instance, T: Union[int, Fraction], profile: DemandProfile
) -> Optional[Assignment]:
    """The Jiang et al. semi-federated split, adapted to this model.

    Heavy jobs (cheapest feasible time > ``T/2``) cannot pairwise share a
    machine, so they get the migrating root mask and share its capacity
    fractionally — the "federated/migrating" pool — paying the migration
    overhead ``P_j(M) ≥ P_j({i})`` the monotone model charges.  Light jobs
    are first-fit onto singletons (the partitioned pool), falling back to
    any fitting mask.  Requires the two-level structure: root ∪ all
    singletons present in the family.
    """
    family = instance.family
    root = frozenset(instance.machines)
    if root not in family or not family.has_all_singletons:
        return None

    def choose(loads: LoadTracker, j: int, options: Tuple[Option, ...]):
        heavy = 2 * profile.min_feasible[j] > profile.T
        if heavy:
            for p, alpha in options:
                if alpha == root and loads.fits(alpha, p):
                    return (p, alpha)
            # Root is infeasible or full — fall through to any fit.
        singles = [(p, a) for p, a in options if len(a) == 1]
        others = [(p, a) for p, a in options if len(a) != 1]
        for p, alpha in singles + others:
            if loads.fits(alpha, p):
                return (p, alpha)
        return None

    return _pack(instance, profile, choose)


#: Strategy order: FFD is the cheapest and usually suffices; the
#: semi-federated split wins exactly where heavy jobs fragment machines;
#: WFD is the balanced fallback.  First verified construction wins.
STRATEGIES: Tuple[Tuple[str, Callable], ...] = (
    ("first-fit-decreasing", first_fit_decreasing),
    ("semi-federated", semi_federated),
    ("worst-fit-decreasing", worst_fit_decreasing),
)
