"""Parallel sweep runner: experiment registry, executor, persistent store.

The scale-out layer of the harness.  ``repro sweep`` / ``repro report`` on
the CLI are thin wrappers over:

* :mod:`repro.runner.registry` — each experiment module registers an
  :class:`ExperimentSpec` (id, parameter space, ``run``);
* :mod:`repro.runner.executor` — process-pool sharding of (experiment,
  params, seed) tasks with order-independent, bit-reproducible results;
* :mod:`repro.runner.store` — SQLite-indexed JSONL results store keyed by
  content hash, so finished tasks are never recomputed;
* :mod:`repro.runner.sweep` — orchestration plus table reassembly;
* :mod:`repro.runner.budget` / :mod:`repro.runner.chaos` — per-task
  resource budgets with retries, and the deterministic fault injector that
  exercises the recovery paths.
"""

from .budget import TaskBudget
from .chaos import ChaosError, ChaosSpec
from .executor import SweepStats, Task, execute_task, run_tasks
from .registry import ExperimentSpec, all_specs, experiment_ids, get_spec, register
from .store import ResultsStore, canonical_json, code_fingerprint, task_key
from .sweep import assemble_table, build_tasks, run_sweep, shard_tasks

__all__ = [
    "ChaosError",
    "ChaosSpec",
    "ExperimentSpec",
    "ResultsStore",
    "SweepStats",
    "Task",
    "TaskBudget",
    "all_specs",
    "assemble_table",
    "build_tasks",
    "canonical_json",
    "code_fingerprint",
    "execute_task",
    "experiment_ids",
    "get_spec",
    "register",
    "run_sweep",
    "run_tasks",
    "shard_tasks",
    "task_key",
]
