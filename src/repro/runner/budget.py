"""Per-task resource budgets for the sweep runner.

A :class:`TaskBudget` caps what one sweep task may consume before it is
declared failed and (possibly) retried:

* ``wall_seconds`` — wall-clock per attempt, **enforced in the driver**:
  the executor tracks each in-flight future's submission time and kills the
  worker pool when a deadline expires (a hung worker cannot be interrupted
  from inside, so the kill has to come from outside).  Ignored on the
  serial (``jobs=1``) path, where there is no second process to do the
  killing.
* ``max_pivots`` — simplex pivot budget per attempt, enforced **in the
  worker** by installing a process-default pivot cap
  (:func:`repro.lp.simplex.set_default_max_pivots`) around the task; any
  solve that exhausts it raises the existing structured
  :class:`~repro.exceptions.PivotLimitError`, which the worker converts to
  a :class:`~repro.exceptions.TaskBudgetError` of kind ``"pivots"``.
* ``max_memory_mb`` — Python-allocation peak per attempt, enforced **in the
  worker** by a :mod:`tracemalloc` guard.  tracemalloc (rather than
  ``resource.setrlimit``) keeps the check deterministic across machines:
  it measures the task's own allocations, not the interpreter baseline or
  address-space layout, so the same task trips the same budget everywhere.

``retries`` rides along because every budget violation feeds the same
retry machinery: a task gets ``retries + 1`` attempts before its failure is
recorded as final in the store's failure ledger.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from ..exceptions import PivotLimitError, TaskBudgetError

_MIB = 1024 * 1024


@dataclass(frozen=True)
class TaskBudget:
    """Resource limits for one sweep task (``None`` = unlimited).

    Picklable by construction — the driver ships the budget to every pool
    worker inside the task tuple.
    """

    wall_seconds: Optional[float] = None
    max_pivots: Optional[int] = None
    max_memory_mb: Optional[float] = None
    #: Extra attempts after the first failure; ``retries + 1`` total
    #: attempts per task before the failure ledger records it as final.
    retries: int = 0

    def __post_init__(self):
        if self.wall_seconds is not None and self.wall_seconds <= 0:
            raise ValueError("wall_seconds must be positive")
        if self.max_pivots is not None and self.max_pivots < 0:
            raise ValueError("max_pivots must be >= 0")
        if self.max_memory_mb is not None and self.max_memory_mb <= 0:
            raise ValueError("max_memory_mb must be positive")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")

    @property
    def max_attempts(self) -> int:
        return self.retries + 1

    def limits_worker(self) -> bool:
        """Whether any in-worker guard (pivots/memory) is active."""
        return self.max_pivots is not None or self.max_memory_mb is not None


@contextmanager
def pivot_cap(cap: Optional[int]) -> Iterator[None]:
    """Install *cap* as the process-default pivot budget for the scope.

    Restores the previous default on exit, so a pool worker that runs many
    tasks back to back never leaks one task's budget into the next.
    """
    if cap is None:
        yield
        return
    from ..lp.simplex import set_default_max_pivots

    previous = set_default_max_pivots(cap)
    try:
        yield
    finally:
        set_default_max_pivots(previous)


@contextmanager
def memory_guard(max_mb: Optional[float]) -> Iterator[None]:
    """Raise :class:`TaskBudgetError` when the scope's Python-allocation
    peak exceeds *max_mb* MiB.

    The peak is read from :mod:`tracemalloc` after the scope finishes (or
    fails for another reason — the budget check never masks the task's own
    exception).  A guard opened while tracing is already active leaves the
    outer trace running and compares against the delta from its own start.
    """
    if max_mb is None:
        yield
        return
    import tracemalloc

    owns_trace = not tracemalloc.is_tracing()
    if owns_trace:
        tracemalloc.start()
    else:
        tracemalloc.reset_peak()
    baseline, _peak = tracemalloc.get_traced_memory()
    try:
        yield
    finally:
        _current, peak = tracemalloc.get_traced_memory()
        if owns_trace:
            tracemalloc.stop()
    used_mb = (peak - baseline) / _MIB
    if used_mb > max_mb:
        raise TaskBudgetError(
            "memory", max_mb, round(used_mb, 2), detail="tracemalloc peak"
        )


@contextmanager
def worker_guards(budget: Optional[TaskBudget]) -> Iterator[None]:
    """The in-worker half of budget enforcement: pivots + memory.

    Converts a :class:`PivotLimitError` escaping the task into the
    structured :class:`TaskBudgetError` the retry/ledger machinery acts
    on.  Wall-clock is deliberately absent — that half lives in the driver
    (see :mod:`repro.runner.executor`).
    """
    if budget is None or not budget.limits_worker():
        yield
        return
    try:
        with pivot_cap(budget.max_pivots):
            with memory_guard(budget.max_memory_mb):
                yield
    except PivotLimitError as exc:
        raise TaskBudgetError(
            "pivots", exc.budget, exc.pivots,
            detail=f"phase {exc.phase}, {exc.kernel or 'unknown'} kernel",
        ) from exc
