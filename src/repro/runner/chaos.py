"""Deterministic fault injection for the sweep runner.

The recovery paths of :mod:`repro.runner.executor` — retries, pool
rebuilds, deadline kills, the failure ledger — are only trustworthy if
something actually exercises them.  This module injects faults into sweep
workers **deterministically**: whether a given task attempt faults, and
how, is a pure function of ``(chaos spec, task key, attempt)`` via
:func:`repro.workloads.generators.derive_seed` — no wall-clock, no
process-local RNG — so a chaos run is reproducible and the driver can
*predict* which in-flight task was scheduled to crash when the pool breaks
(that is how crash recovery avoids charging innocent co-scheduled tasks an
attempt).

Spec grammar (``--chaos SPEC`` or the ``REPRO_CHAOS`` environment
variable)::

    SPEC    := FAULT ("," FAULT)*
    FAULT   := KIND ["@" ATTEMPT] ":" PROBABILITY
    KIND    := "crash" | "hang" | "pivot" | "fail"

``crash`` SIGKILLs the worker mid-task (driver sees ``BrokenProcessPool``
and must rebuild the pool); ``hang`` blocks forever (the driver's
``--task-timeout`` deadline must kill it); ``pivot`` exhausts the simplex
pivot budget (installs a zero-pivot cap so the task's first LP solve
raises through the real :class:`~repro.exceptions.PivotLimitError`
channel); ``fail`` raises a plain :class:`ChaosError` (a generic retryable
task error).  ``kind@N:p`` restricts the fault to attempt ``N`` only —
``crash@0:1.0`` crashes every task exactly once and lets the retry
succeed, which is what the deterministic recovery tests want.
Probabilities of faults eligible at the same attempt must sum to ≤ 1.

Faults are drawn per *attempt*, so a retried task re-rolls: under
``crash:0.3`` a task that crashed at attempt 0 has an independent 30%
chance at attempt 1.  Serial (``jobs=1``) runs downgrade ``crash`` and
``hang`` to :class:`ChaosError` — killing or hanging the driver itself
would take the sweep (and its store flush) down with no one left to
recover it.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from ..exceptions import ReproError
from ..workloads.generators import derive_seed

#: Environment variable consulted when no explicit spec is passed.
CHAOS_ENV = "REPRO_CHAOS"

KINDS = ("crash", "hang", "pivot", "fail")


class ChaosError(ReproError):
    """An injected (non-crash) task failure, or a downgraded serial fault."""


@dataclass(frozen=True)
class ChaosSpec:
    """A parsed fault-injection spec; ``faults`` keeps grammar order.

    Each entry is ``(kind, only_attempt, probability)`` with
    ``only_attempt is None`` meaning "every attempt".
    """

    faults: Tuple[Tuple[str, Optional[int], float], ...]

    @classmethod
    def parse(cls, text: str) -> "ChaosSpec":
        faults = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            kind, sep, prob_text = part.partition(":")
            if not sep:
                raise ValueError(
                    f"chaos fault {part!r} is not KIND[@ATTEMPT]:PROBABILITY"
                )
            kind = kind.strip()
            only_attempt: Optional[int] = None
            if "@" in kind:
                kind, _, attempt_text = kind.partition("@")
                try:
                    only_attempt = int(attempt_text)
                except ValueError:
                    raise ValueError(
                        f"chaos attempt qualifier {attempt_text!r} is not an int"
                    ) from None
                if only_attempt < 0:
                    raise ValueError("chaos attempt qualifier must be >= 0")
            if kind not in KINDS:
                raise ValueError(
                    f"unknown chaos fault kind {kind!r}; choose from {KINDS}"
                )
            try:
                probability = float(prob_text)
            except ValueError:
                raise ValueError(
                    f"chaos probability {prob_text!r} is not a float"
                ) from None
            if not 0.0 <= probability <= 1.0:
                raise ValueError(
                    f"chaos probability must be in [0, 1], got {probability}"
                )
            faults.append((kind, only_attempt, probability))
        if not faults:
            raise ValueError(f"chaos spec {text!r} names no faults")
        spec = cls(tuple(faults))
        # The draw stacks eligible faults on one [0, 1) roll, so the
        # per-attempt mass must fit; checking a few attempts covers every
        # distinct eligibility set the @-qualifiers can produce.
        attempts = {0, 1} | {
            a for _, a, _ in faults if a is not None
        }
        for attempt in attempts:
            mass = sum(
                p for _kind, only, p in faults
                if only is None or only == attempt
            )
            if mass > 1.0 + 1e-9:
                raise ValueError(
                    f"chaos probabilities for attempt {attempt} sum to "
                    f"{mass} > 1"
                )
        return spec

    @classmethod
    def from_env(cls) -> Optional["ChaosSpec"]:
        text = os.environ.get(CHAOS_ENV, "").strip()
        return cls.parse(text) if text else None

    def to_text(self) -> str:
        """Round-trippable spec string (the worker wire format)."""
        return ",".join(
            f"{kind}@{only}:{p:g}" if only is not None else f"{kind}:{p:g}"
            for kind, only, p in self.faults
        )

    def draw(self, key: str, attempt: int) -> Optional[str]:
        """The fault injected into (task *key*, *attempt*), or ``None``.

        Pure function of its arguments: the driver calls it to predict
        worker behaviour (crash guilt attribution), the worker calls it to
        act — both must and do agree.
        """
        eligible = [
            (kind, p) for kind, only, p in self.faults
            if only is None or only == attempt
        ]
        if not eligible:
            return None
        # 63-bit hash folded to [0, 1); resolution is far below any
        # probability anyone writes in a spec.
        roll = derive_seed(0, "chaos", key, attempt) / float(2 ** 63)
        cumulative = 0.0
        for kind, probability in eligible:
            cumulative += probability
            if roll < cumulative:
                return kind
        return None


def resolve(spec: "ChaosSpec | str | None") -> Optional[ChaosSpec]:
    """Normalize a chaos argument: parse strings, fall back to the env."""
    if spec is None:
        return ChaosSpec.from_env()
    if isinstance(spec, str):
        return ChaosSpec.parse(spec)
    return spec


def inject(fault: Optional[str], allow_kill: bool) -> Optional[str]:
    """Act on a drawn *fault* inside the worker.

    Returns ``"pivot"`` to tell the caller to run the task under a
    zero-pivot cap (the fault fires through the task's own LP solves);
    every other fault acts here.  With ``allow_kill`` unset (serial path:
    the "worker" is the driver) ``crash``/``hang`` degrade to
    :class:`ChaosError` so the sweep survives to record them.
    """
    if fault is None:
        return None
    if fault == "fail":
        raise ChaosError("chaos: injected task failure")
    if fault == "pivot":
        return "pivot"
    if not allow_kill:
        raise ChaosError(f"chaos: injected {fault} (downgraded on serial path)")
    if fault == "crash":
        os.kill(os.getpid(), 9)  # SIGKILL: no handlers, no cleanup
    if fault == "hang":
        while True:  # pragma: no cover - killed from outside
            time.sleep(60)
    return None  # pragma: no cover - crash never returns
