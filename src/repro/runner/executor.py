"""Process-pool task executor with deterministic, resumable output.

A sweep is a list of :class:`Task` objects — ``(experiment id, run()
kwargs, content key)``.  :func:`run_tasks` executes the ones missing from
the store, either inline (``jobs=1``) or across a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Two properties make ``--jobs N`` indistinguishable from a serial run:

* every task is a self-contained ``spec.run(**params)`` call whose seed (if
  any) is already inside ``params`` — nothing about a worker or its
  schedule can leak into the result;
* completed records are flushed to the store in **task order**, buffering
  out-of-order completions, so even the payload files come out
  byte-identical.

Wall-clock is measured per task and stored in the index only; table columns
an :class:`~repro.runner.registry.ExperimentSpec` declares volatile (e.g.
E14's ``seconds``) are masked to ``None`` in the persistent payload so the
payload stays a pure function of (code, params).
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..lp.stats import SolverStats, collect_stats, record as record_stats
from ..obs.trace import (
    Tracer,
    adopt_spans,
    install,
    reset as obs_reset,
    span as trace_span,
    tracing_enabled,
    uninstall,
)
from .registry import get_spec
from .store import ResultsStore, _canonical


@dataclass(frozen=True)
class Task:
    """One unit of sweep work: run ``experiment`` with ``params``."""

    experiment: str
    params: Dict[str, Any]
    key: str

    def label(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"{self.experiment}({inner})"


@dataclass
class SweepStats:
    """What a sweep did; ``executed + skipped + failed == total``."""

    total: int = 0
    executed: int = 0
    skipped: int = 0
    failed: int = 0
    errors: List[str] = field(default_factory=list)


def execute_task(
    experiment: str,
    params: Dict[str, Any],
    key: str,
    fingerprint: str,
    trace: bool = False,
) -> Tuple[Dict[str, Any], float, Dict[str, Any]]:
    """Run one task; return ``(store record, elapsed seconds, profile)``.

    Module-level so it pickles for the process pool; workers re-resolve the
    spec through the registry, which re-imports the experiment module under
    spawn-style start methods.

    The *profile* dict is the measured side of the task: ``"stats"`` holds
    the aggregated :class:`~repro.lp.stats.SolverStats` of the run (always
    collected — it feeds the store index and ``--profile``), and, when
    *trace* is set **in a worker process** (no ambient tracer), ``"spans"``
    holds the task's span tree as ``Span.to_json()`` payloads for the
    driver to :func:`~repro.obs.trace.adopt_spans`.  When the task runs in
    the driver itself, spans flow into the ambient tracer directly and
    ``"spans"`` stays absent.

    Carried solver bases (:class:`~repro.lp.warm.WarmState`) are process-
    local ephemera and never appear in the returned record: params pass
    through the canonicalizer (which rejects them explicitly), the table
    payload holds encoded cells only, and a state smuggled anywhere else
    would fail the worker→driver pickle (``WarmState.__reduce__`` raises).
    Stores written by earlier generations therefore read back byte-
    identically.
    """
    spec = get_spec(experiment)
    local_tracer: Optional[Tracer] = None
    if trace and not tracing_enabled():
        local_tracer = Tracer()
        install(local_tracer)
    try:
        with collect_stats() as scope:
            with trace_span("sweep.task", experiment=experiment, key=key[:12]):
                start = time.perf_counter()
                result = spec.run(**params)
                elapsed = time.perf_counter() - start
    finally:
        if local_tracer is not None:
            uninstall(local_tracer)
    profile: Dict[str, Any] = {"stats": scope.to_json()}
    if local_tracer is not None:
        profile["spans"] = [sp.to_json() for sp in local_tracer.spans]
    payload = result.table.to_json()
    volatile = set(spec.volatile_columns) & set(payload["headers"])
    if volatile:
        masked = [payload["headers"].index(c) for c in volatile]
        for row in payload["rows"]:
            for idx in masked:
                row[idx] = None
    record = {
        "key": key,
        "experiment": experiment,
        "params": _canonical(params),
        "seed": params.get("seed"),
        "fingerprint": fingerprint,
        "table": payload,
    }
    return record, elapsed, profile


def _execute_tuple(args: Tuple[str, Dict[str, Any], str, str, bool]):
    # Pool-worker entry: a fork-started worker inherits the driver's
    # installed tracer; reset so execute_task installs a worker-local one
    # whose span tree ships back in the profile instead of vanishing.
    obs_reset()
    return execute_task(*args)


def run_tasks(
    tasks: List[Task],
    store: ResultsStore,
    fingerprint: str,
    jobs: int = 1,
    echo: Optional[Callable[[str], None]] = None,
    trace: bool = False,
) -> SweepStats:
    """Execute every task not already in *store*; flush in task order.

    Each executed task's solver counters land in the store index
    (``stats_json``) next to its wall-clock.  With *trace* set and a tracer
    installed in the driver, worker span trees are shipped back and grafted
    under the driver's current span, so ``--jobs N`` still yields one
    merged trace.
    """
    say = echo or (lambda _msg: None)
    stats = SweepStats(total=len(tasks))
    pending: List[Tuple[int, Task]] = []
    for idx, task in enumerate(tasks):
        if store.has(task.key):
            stats.skipped += 1
            say(f"skip {task.label()}  [cached {task.key[:12]}]")
        else:
            pending.append((idx, task))
    if not pending:
        return stats

    if jobs <= 1:
        for _idx, task in pending:
            try:
                record, elapsed, profile = execute_task(
                    task.experiment, task.params, task.key, fingerprint,
                    trace=trace,
                )
            except Exception as exc:  # noqa: BLE001 - reported per task
                stats.failed += 1
                stats.errors.append(f"{task.label()}: {exc!r}")
                say(f"FAIL {task.label()}: {exc!r}")
                continue
            store.add(record, elapsed, stats=profile.get("stats"))
            stats.executed += 1
            say(f"done {task.label()}  ({elapsed:.2f}s)")
        return stats

    # Parallel path: submit everything, but commit results to the store in
    # submission order so payload files match the serial run byte-for-byte.
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {}
        order: List[int] = []
        for idx, task in pending:
            fut = pool.submit(
                _execute_tuple,
                (task.experiment, task.params, task.key, fingerprint, trace),
            )
            futures[fut] = idx
            order.append(idx)
        by_index = {idx: task for idx, task in pending}
        ready: Dict[int, Tuple[Dict[str, Any], float, Dict[str, Any]]] = {}
        errors: Dict[int, BaseException] = {}
        cursor = 0  # next position in `order` eligible to flush
        not_done = set(futures)
        while not_done:
            done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
            for fut in done:
                idx = futures[fut]
                try:
                    ready[idx] = fut.result()
                except BaseException as exc:  # noqa: BLE001 - reported per task
                    errors[idx] = exc
            while cursor < len(order) and (
                order[cursor] in ready or order[cursor] in errors
            ):
                idx = order[cursor]
                task = by_index[idx]
                if idx in errors:
                    stats.failed += 1
                    stats.errors.append(f"{task.label()}: {errors[idx]!r}")
                    say(f"FAIL {task.label()}: {errors[idx]!r}")
                else:
                    record, elapsed, profile = ready.pop(idx)
                    store.add(record, elapsed, stats=profile.get("stats"))
                    # The work happened in a worker: replay its counter
                    # aggregate into the driver's ambient scopes/spans and
                    # graft its span tree under the driver's current span.
                    worker_stats = profile.get("stats")
                    if worker_stats:
                        record_stats(SolverStats.from_json(worker_stats))
                    adopt_spans(profile.get("spans", ()))
                    stats.executed += 1
                    say(f"done {task.label()}  ({elapsed:.2f}s)")
                cursor += 1
    return stats
