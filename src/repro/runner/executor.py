"""Process-pool task executor with deterministic, resumable, fault-tolerant
output.

A sweep is a list of :class:`Task` objects — ``(experiment id, run()
kwargs, content key)``.  :func:`run_tasks` executes the ones missing from
the store, either inline (``jobs=1``) or across a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Two properties make ``--jobs N`` indistinguishable from a serial run:

* every task is a self-contained ``spec.run(**params)`` call whose seed (if
  any) is already inside ``params`` — nothing about a worker or its
  schedule can leak into the result;
* completed records are flushed to the store in **task order**, buffering
  out-of-order completions, so even the payload files come out
  byte-identical.

Fault tolerance (see also :mod:`repro.runner.budget` and
:mod:`repro.runner.chaos`):

* **Budgets** — a :class:`~repro.runner.budget.TaskBudget` caps wall-clock
  (driver-enforced: an expired deadline kills the worker pool and rebuilds
  it), pivots and memory (worker-enforced guards); every violation is a
  structured :class:`~repro.exceptions.TaskBudgetError`.
* **Retries** — a failed attempt is retried up to ``budget.retries`` times.
  Retry *ordering* is deterministic and wall-clock-free: the re-submission
  slot is derived from ``derive_seed(0, "backoff", key, attempt)``, so a
  chaos run replays identically.
* **Crash recovery** — a dead worker (``BrokenProcessPool``) no longer
  kills the sweep: buffered ready results are flushed, the pool is rebuilt,
  and only the tasks that were in flight are resubmitted (byte-identical
  payloads are guaranteed because tasks are pure functions of their
  params).  Under chaos the driver *predicts* which in-flight task was
  scheduled to crash (the injector is a pure function both sides evaluate)
  and charges only that task an attempt; co-scheduled victims resubmit for
  free.  A real, unpredicted crash charges every in-flight task — the
  bound that guarantees termination.
* **Failure ledger** — every failed attempt is recorded in the store's
  ``failures`` table (error class, message, traceback, cumulative
  attempts), and cleared on eventual success.  Tasks whose recorded
  attempts already exhaust the retry budget are **quarantined** on resume
  (skipped as poison) unless ``retry_failed`` is set.

Cancellation is not failure: a ``KeyboardInterrupt``/``SystemExit`` —
whether raised in the driver or shipped back from a worker — aborts the
sweep after flushing buffered results, and records nothing in the ledger.

Wall-clock is measured per task and stored in the index only; table columns
an :class:`~repro.runner.registry.ExperimentSpec` declares volatile (e.g.
E14's ``seconds``) are masked to ``None`` in the persistent payload so the
payload stays a pure function of (code, params).
"""

from __future__ import annotations

import time
import traceback as traceback_module
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..exceptions import TaskBudgetError, WorkerCrashError
from ..lp.stats import SolverStats, collect_stats, record as record_stats
from ..obs.trace import (
    Tracer,
    adopt_spans,
    install,
    reset as obs_reset,
    span as trace_span,
    tracing_enabled,
    uninstall,
)
from ..workloads.generators import derive_seed
from .budget import TaskBudget, worker_guards
from .chaos import ChaosSpec, inject as chaos_inject, resolve as resolve_chaos
from .registry import get_spec
from .store import ResultsStore, _canonical

#: ``Task.label()`` truncates each param's repr at this many characters so
#: one enormous parameter (a 10k-entry tuple, a pasted matrix) cannot flood
#: error lines, the failure ledger, or the echo stream.
LABEL_VALUE_LIMIT = 48


def _truncated_repr(value: Any, limit: int = LABEL_VALUE_LIMIT) -> str:
    """Deterministic bounded repr: same value, same (short) text, always."""
    text = repr(value)
    if len(text) <= limit:
        return text
    kept = limit - 8
    return f"{text[:kept]}…(+{len(text) - kept} chars)"


@dataclass(frozen=True)
class Task:
    """One unit of sweep work: run ``experiment`` with ``params``."""

    experiment: str
    params: Dict[str, Any]
    key: str

    def label(self) -> str:
        inner = ", ".join(
            f"{k}={_truncated_repr(v)}" for k, v in sorted(self.params.items())
        )
        return f"{self.experiment}({inner})"


@dataclass
class SweepStats:
    """What a sweep did; ``executed + skipped + failed + quarantined ==
    total``.

    ``retried`` counts re-submitted attempts (not tasks), ``budget_kills``
    counts workers killed by the driver's wall deadline, ``pool_rebuilds``
    counts process pools rebuilt after a crash or a deadline kill; none of
    the three participates in the total.  ``errors`` holds one entry per
    finally-failed task, **including the traceback** of its last attempt.
    """

    total: int = 0
    executed: int = 0
    skipped: int = 0
    failed: int = 0
    quarantined: int = 0
    retried: int = 0
    budget_kills: int = 0
    pool_rebuilds: int = 0
    errors: List[str] = field(default_factory=list)


def execute_task(
    experiment: str,
    params: Dict[str, Any],
    key: str,
    fingerprint: str,
    trace: bool = False,
    budget: Optional[TaskBudget] = None,
    chaos: Optional[ChaosSpec] = None,
    attempt: int = 0,
    allow_kill: bool = False,
) -> Tuple[Dict[str, Any], float, Dict[str, Any]]:
    """Run one task; return ``(store record, elapsed seconds, profile)``.

    Module-level so it pickles for the process pool; workers re-resolve the
    spec through the registry, which re-imports the experiment module under
    spawn-style start methods.

    The *profile* dict is the measured side of the task: ``"stats"`` holds
    the aggregated :class:`~repro.lp.stats.SolverStats` of the run (always
    collected — it feeds the store index and ``--profile``), and, when
    *trace* is set **in a worker process** (no ambient tracer), ``"spans"``
    holds the task's span tree as ``Span.to_json()`` payloads for the
    driver to :func:`~repro.obs.trace.adopt_spans`.  When the task runs in
    the driver itself, spans flow into the ambient tracer directly and
    ``"spans"`` stays absent.

    *budget* applies the in-worker guards (pivot cap, memory peak); wall
    enforcement lives in the driver.  *chaos*, when given, draws this
    (*key*, *attempt*)'s injected fault — ``allow_kill`` tells the injector
    whether it runs in an expendable pool worker (may SIGKILL/hang) or in
    the driver itself (faults degrade to raised errors).

    Carried solver bases (:class:`~repro.lp.warm.WarmState`) are process-
    local ephemera and never appear in the returned record: params pass
    through the canonicalizer (which rejects them explicitly), the table
    payload holds encoded cells only, and a state smuggled anywhere else
    would fail the worker→driver pickle (``WarmState.__reduce__`` raises).
    Stores written by earlier generations therefore read back byte-
    identically.
    """
    spec = get_spec(experiment)
    fault = chaos.draw(key, attempt) if chaos is not None else None
    fault = chaos_inject(fault, allow_kill)
    if fault == "pivot":
        # Exhaust the pivot budget: a zero cap makes the task's first LP
        # pivot raise through the real PivotLimitError channel.
        budget = replace(budget or TaskBudget(), max_pivots=0)
    local_tracer: Optional[Tracer] = None
    if trace and not tracing_enabled():
        local_tracer = Tracer()
        install(local_tracer)
    try:
        with worker_guards(budget):
            with collect_stats() as scope:
                with trace_span(
                    "sweep.task",
                    experiment=experiment, key=key[:12], attempt=attempt,
                ):
                    start = time.perf_counter()
                    result = spec.run(**params)
                    elapsed = time.perf_counter() - start
    finally:
        if local_tracer is not None:
            uninstall(local_tracer)
    profile: Dict[str, Any] = {"stats": scope.to_json()}
    if local_tracer is not None:
        profile["spans"] = [sp.to_json() for sp in local_tracer.spans]
    payload = result.table.to_json()
    volatile = set(spec.volatile_columns) & set(payload["headers"])
    if volatile:
        masked = [payload["headers"].index(c) for c in volatile]
        for row in payload["rows"]:
            for idx in masked:
                row[idx] = None
    record = {
        "key": key,
        "experiment": experiment,
        "params": _canonical(params),
        "seed": params.get("seed"),
        "fingerprint": fingerprint,
        "table": payload,
    }
    return record, elapsed, profile


def _execute_tuple(
    args: Tuple[
        str, Dict[str, Any], str, str, bool,
        Optional[TaskBudget], Optional[ChaosSpec], int,
    ]
):
    # Pool-worker entry: a fork-started worker inherits the driver's
    # installed tracer; reset so execute_task installs a worker-local one
    # whose span tree ships back in the profile instead of vanishing.
    obs_reset()
    experiment, params, key, fingerprint, trace, budget, chaos, attempt = args
    return execute_task(
        experiment, params, key, fingerprint, trace=trace,
        budget=budget, chaos=chaos, attempt=attempt, allow_kill=True,
    )


def _format_traceback(exc: BaseException) -> str:
    """Full traceback text, remote (worker) frames included via the cause
    chain ``concurrent.futures`` attaches."""
    return "".join(
        traceback_module.format_exception(type(exc), exc, exc.__traceback__)
    )


def _kill_pool_workers(pool: ProcessPoolExecutor) -> None:
    """SIGKILL every worker of *pool* (best-effort; the pool is then dead).

    Reaches into ``_processes`` because the executor API has no kill — a
    hung worker cannot be asked nicely.  When the attribute is missing
    (a future CPython rearrangement) the shutdown below still abandons the
    pool; the hung process leaks, which beats hanging the sweep.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except Exception:  # noqa: BLE001 - already-dead workers are fine
            pass


def run_tasks(
    tasks: List[Task],
    store: ResultsStore,
    fingerprint: str,
    jobs: int = 1,
    echo: Optional[Callable[[str], None]] = None,
    trace: bool = False,
    budget: Optional[TaskBudget] = None,
    chaos: "ChaosSpec | str | None" = None,
    retry_failed: bool = False,
) -> SweepStats:
    """Execute every task not already in *store*; flush in task order.

    Each executed task's solver counters land in the store index
    (``stats_json``) next to its wall-clock.  With *trace* set and a tracer
    installed in the driver, worker span trees are shipped back and grafted
    under the driver's current span, so ``--jobs N`` still yields one
    merged trace.

    *budget* caps each attempt (wall enforced on the parallel path only —
    the serial driver cannot kill itself) and carries the retry count;
    *chaos* (spec, spec string, or the ``REPRO_CHAOS`` environment default)
    injects deterministic faults; *retry_failed* re-runs tasks the failure
    ledger has quarantined.
    """
    say = echo or (lambda _msg: None)
    budget = budget or TaskBudget()
    chaos_spec = resolve_chaos(chaos)
    max_attempts = budget.max_attempts
    stats = SweepStats(total=len(tasks))

    pending: List[Tuple[int, Task]] = []
    attempts: Dict[int, int] = {}
    for idx, task in enumerate(tasks):
        if store.has(task.key):
            stats.skipped += 1
            say(f"skip {task.label()}  [cached {task.key[:12]}]")
            continue
        prior = 0 if retry_failed else store.failure_attempts(task.key)
        if prior >= max_attempts:
            stats.quarantined += 1
            record_stats(SolverStats(tasks_quarantined=1))
            say(
                f"quarantine {task.label()}  [{prior} failed attempt"
                f"{'s' if prior != 1 else ''} in the ledger; pass "
                f"--retry-failed to retry]"
            )
            continue
        attempts[idx] = prior
        pending.append((idx, task))
    if not pending:
        return stats

    by_index = {idx: task for idx, task in pending}

    def fail_or_retry(idx: int, exc: BaseException, elapsed: float,
                      tb_text: Optional[str]) -> bool:
        """Ledger one failed attempt; return True when a retry remains."""
        task = by_index[idx]
        attempts[idx] += 1
        attempt_count = attempts[idx]
        store.record_failure(
            task.key, task.experiment,
            type(exc).__name__, str(exc), attempt_count,
            traceback_text=tb_text, params=task.params,
            fingerprint=fingerprint, elapsed_s=elapsed,
        )
        if attempt_count < max_attempts:
            stats.retried += 1
            record_stats(SolverStats(task_retries=1))
            say(
                f"retry {task.label()}  [{type(exc).__name__}; attempt "
                f"{attempt_count + 1}/{max_attempts}]"
            )
            return True
        stats.failed += 1
        detail = f"{task.label()}: {exc!r}"
        if tb_text:
            detail += f"\n{tb_text.rstrip()}"
        stats.errors.append(detail)
        say(f"FAIL {task.label()}: {exc!r}  [{attempt_count} attempts]")
        return False

    if jobs <= 1:
        if budget.wall_seconds is not None:
            say(
                "note: the wall budget (--task-timeout) is enforced by the "
                "parallel driver only; --jobs 1 runs without it"
            )
        for idx, task in pending:
            while True:
                start = time.monotonic()
                try:
                    record, elapsed, profile = execute_task(
                        task.experiment, task.params, task.key, fingerprint,
                        trace=trace, budget=budget, chaos=chaos_spec,
                        attempt=attempts[idx], allow_kill=False,
                    )
                except (KeyboardInterrupt, SystemExit):
                    raise  # cancellation, not failure: nothing to ledger
                except Exception as exc:  # noqa: BLE001 - reported per task
                    if fail_or_retry(
                        idx, exc, time.monotonic() - start,
                        _format_traceback(exc),
                    ):
                        continue
                    break
                store.add(record, elapsed, stats=profile.get("stats"))
                stats.executed += 1
                say(f"done {task.label()}  ({elapsed:.2f}s)")
                break
        return stats

    # Parallel path: submit a window of at most `jobs` tasks (so every
    # in-flight future is actually running and its deadline is honest), and
    # commit results to the store in submission order so payload files
    # match the serial run byte-for-byte.
    order: List[int] = [idx for idx, _task in pending]
    queue: deque = deque(order)
    inflight: Dict[Any, Tuple[int, float]] = {}
    ready: Dict[int, Tuple[Dict[str, Any], float, Dict[str, Any]]] = {}
    resolved_failures: set = set()
    cursor = 0  # next position in `order` eligible to flush
    wall = budget.wall_seconds

    def commit(idx: int) -> None:
        task = by_index[idx]
        record, elapsed, profile = ready.pop(idx)
        store.add(record, elapsed, stats=profile.get("stats"))
        # The work happened in a worker: replay its counter aggregate into
        # the driver's ambient scopes/spans and graft its span tree under
        # the driver's current span.
        worker_stats = profile.get("stats")
        if worker_stats:
            record_stats(SolverStats.from_json(worker_stats))
        adopt_spans(profile.get("spans", ()))
        stats.executed += 1
        say(f"done {task.label()}  ({elapsed:.2f}s)")

    def flush(force: bool = False) -> None:
        """Commit the contiguous ready prefix (task order → byte-identical
        payload files).  *force* additionally commits gap-blocked buffered
        results — only reached on abort/cancellation, where recovering
        finished work beats preserving the file's serial line order (the
        records themselves stay byte-identical; reports sort canonically).
        """
        nonlocal cursor
        while cursor < len(order):
            idx = order[cursor]
            if idx in ready:
                commit(idx)
            elif idx in resolved_failures:
                pass  # ledgered; nothing to write, the cursor moves on
            else:
                break
            cursor += 1
        if force:
            for idx in sorted(ready):
                commit(idx)

    def requeue_retry(idx: int) -> None:
        """Deterministic wall-clock-free backoff: the retry re-enters the
        queue a seed-derived number of slots back instead of sleeping."""
        task = by_index[idx]
        slot = 1 + derive_seed(0, "backoff", task.key, attempts[idx]) % jobs
        queue.insert(min(slot, len(queue)), idx)

    def settle(fut, idx: int, started: float) -> bool:
        """Absorb a finished future (result or its own error); return
        False when the future died with the pool (caller must requeue)."""
        if not fut.done():
            return False
        try:
            ready[idx] = fut.result()
            return True
        except BrokenProcessPool:
            return False
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:  # noqa: BLE001 - reported per task
            if fail_or_retry(
                idx, exc, time.monotonic() - started, _format_traceback(exc)
            ):
                requeue_retry(idx)
            else:
                resolved_failures.add(idx)
            return True

    def rebuild_after_crash(pool, crashed: List[int]):
        """BrokenProcessPool recovery: flush, attribute guilt, rebuild.

        Chaos crashes are predictable (the injector is a pure function the
        driver can evaluate), so only tasks *scheduled* to crash are
        charged an attempt; co-scheduled victims resubmit for free —
        deterministic attempt sequences under chaos.  A real crash is
        unattributable, so every in-flight task is charged (the bound that
        keeps a genuinely crashing task from looping forever).
        """
        stats.pool_rebuilds += 1
        flush()  # buffered ready results survive the rebuild
        guilty = [
            idx for idx in crashed
            if chaos_spec is not None
            and chaos_spec.draw(by_index[idx].key, attempts[idx]) == "crash"
        ]
        if not guilty:
            guilty = list(crashed)
        say(
            f"worker pool broke with {len(crashed)} task(s) in flight; "
            f"rebuilding and resubmitting"
        )
        for idx in guilty:
            exc = WorkerCrashError(
                "worker process died mid-task (crash/OOM/kill); pool rebuilt"
            )
            if fail_or_retry(idx, exc, 0.0, None):
                requeue_retry(idx)
            else:
                resolved_failures.add(idx)
        for idx in sorted(set(crashed) - set(guilty), reverse=True):
            queue.appendleft(idx)  # victims rerun free, original order kept
        pool.shutdown(wait=False, cancel_futures=True)
        return ProcessPoolExecutor(max_workers=jobs)

    pool = ProcessPoolExecutor(max_workers=jobs)
    try:
        while queue or inflight:
            while queue and len(inflight) < jobs:
                idx = queue.popleft()
                task = by_index[idx]
                try:
                    fut = pool.submit(
                        _execute_tuple,
                        (
                            task.experiment, task.params, task.key,
                            fingerprint, trace, budget, chaos_spec,
                            attempts[idx],
                        ),
                    )
                except BrokenProcessPool:
                    crashed = [idx]
                    for stale, (victim, _t0) in list(inflight.items()):
                        inflight.pop(stale)
                        if not settle(stale, victim, _t0):
                            crashed.append(victim)
                    pool = rebuild_after_crash(pool, crashed)
                    continue
                inflight[fut] = (idx, time.monotonic())
            if not inflight:
                continue

            timeout = None
            if wall is not None:
                earliest = min(t0 for _idx, t0 in inflight.values())
                timeout = max(0.05, earliest + wall - time.monotonic())
            done, _not_done = wait(
                set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
            )

            crashed = []
            for fut in done:
                idx, started = inflight.pop(fut)
                if not settle(fut, idx, started):
                    crashed.append(idx)
            if crashed:
                for fut, (idx, started) in list(inflight.items()):
                    inflight.pop(fut)
                    if not settle(fut, idx, started):
                        crashed.append(idx)
                pool = rebuild_after_crash(pool, crashed)
                flush()
                continue

            if wall is not None and inflight:
                now = time.monotonic()
                expired = {
                    fut for fut, (_idx, t0) in inflight.items()
                    if now - t0 >= wall and not fut.done()
                }
                if expired:
                    say(
                        f"deadline: killing {len(expired)} task(s) past the "
                        f"{wall:g}s wall budget"
                    )
                    _kill_pool_workers(pool)
                    stats.pool_rebuilds += 1
                    victims: List[int] = []
                    for fut, (idx, started) in list(inflight.items()):
                        inflight.pop(fut)
                        if settle(fut, idx, started):
                            continue  # finished in the race window
                        if fut in expired:
                            stats.budget_kills += 1
                            record_stats(SolverStats(budget_kills=1))
                            exc = TaskBudgetError(
                                "wall", wall, round(now - started, 2),
                                detail="worker killed by the sweep deadline",
                            )
                            if fail_or_retry(idx, exc, now - started, None):
                                requeue_retry(idx)
                            else:
                                resolved_failures.add(idx)
                        else:
                            victims.append(idx)
                    for idx in sorted(victims, reverse=True):
                        queue.appendleft(idx)  # killed alongside; rerun free
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(max_workers=jobs)

            flush()
    finally:
        # Cancellation/failure must not lose buffered completed work: the
        # forced flush commits everything harvested so far (out-of-order
        # stragglers included), then the pool is released without joining
        # possibly-hung workers.
        flush(force=True)
        pool.shutdown(wait=False, cancel_futures=True)
    return stats
