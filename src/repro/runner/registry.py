"""Declarative experiment registry.

Every ``repro.experiments.e*`` module registers an :class:`ExperimentSpec`
at import time (see the ``SPEC = register(...)`` line at the bottom of each
module).  The spec is the single source of truth the rest of the harness
reads:

* ``cli_params`` — the test-scale kwargs ``repro experiments`` uses
  (formerly a hand-maintained dict inside ``cli.py``);
* ``space`` — the sweep parameter space: a mapping from ``run()`` kwarg to
  the tuple of values it takes, whose cartesian product is the sweep grid.
  Axes with several values are what the process-pool executor shards across
  workers;
* ``volatile_columns`` — table columns whose values are environment
  measurements (wall-clock), masked out of the persistent store so sweep
  payloads stay bit-reproducible (the executor records its own per-task
  timing in the store index instead).

The registry is intentionally import-light: looking up a spec lazily
imports :mod:`repro.experiments`, which triggers every module's
registration, so callers never see a half-populated registry.
"""

from __future__ import annotations

import inspect
import itertools
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment's declarative surface for the CLI and sweep runner."""

    id: str
    run: Callable[..., Any]
    cli_params: Mapping[str, Any] = field(default_factory=dict)
    space: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    volatile_columns: Tuple[str, ...] = ()

    @property
    def summary(self) -> str:
        """First line of the experiment module's docstring."""
        doc = sys.modules[self.run.__module__].__doc__ or ""
        return doc.strip().splitlines()[0] if doc.strip() else self.id

    @property
    def parameters(self) -> Mapping[str, inspect.Parameter]:
        return inspect.signature(self.run).parameters

    def accepts(self, name: str) -> bool:
        return name in self.parameters

    @property
    def seedable(self) -> bool:
        return self.accepts("seed")

    def points(
        self, overrides: Mapping[str, Any] | None = None
    ) -> List[Dict[str, Any]]:
        """The sweep grid: cartesian product of the space's axes.

        *overrides* replace whole axes with a single value (``--params`` on
        the CLI); override keys the experiment's ``run()`` does not accept
        are silently dropped so one ``--params trials=2`` can apply across a
        multi-experiment sweep.
        """
        axes: Dict[str, Sequence[Any]] = {k: tuple(v) for k, v in self.space.items()}
        for key, value in (overrides or {}).items():
            if self.accepts(key):
                axes[key] = (value,)
        if not axes:
            return [{}]
        names = list(axes)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(axes[n] for n in names))
        ]


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Register *spec* (idempotent per id; re-registration must agree)."""
    existing = _REGISTRY.get(spec.id)
    if existing is not None and existing.run is not spec.run:
        raise ValueError(f"experiment id {spec.id!r} registered twice")
    _REGISTRY[spec.id] = spec
    return spec


def _ensure_loaded() -> None:
    # Importing the experiments package runs every module's register() call.
    import repro.experiments  # noqa: F401


def get_spec(exp_id: str) -> ExperimentSpec:
    _ensure_loaded()
    try:
        return _REGISTRY[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_specs() -> List[ExperimentSpec]:
    _ensure_loaded()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def experiment_ids() -> List[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)
