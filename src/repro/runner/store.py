"""Sweep results store — a thin bookkeeping client over the solve cache.

The generic storage machinery (SQLite index + JSONL payloads, canonical
JSON, content keys, the code fingerprint) lives in :mod:`repro.session`:
:class:`~repro.session.cache.SolveCache` is the content-addressed KV layer,
:mod:`repro.session.canon` the one canonicalization module.  What remains
here is the sweep's *bookkeeping convention* on top of it:

* a task is keyed by :func:`task_key` — the content hash of ``(experiment
  id, canonicalized params, code fingerprint)`` — so re-running an
  identical sweep finds every key present and executes nothing ("skip
  completed" is nothing but a cache hit);
* each experiment id is one payload bucket, and
  :meth:`ResultsStore.records` defaults to the **latest completed code
  generation** per experiment (pass ``fingerprint="*"`` to see every
  generation, e.g. results recorded before a code edit — ``repro report``
  documents the same contract);
* session buckets (``solve-*``, written when a :class:`~repro.session.
  Session` shares the store directory) are excluded from
  :meth:`experiments`, so sweep reports never try to tabulate raw solve
  payloads.

Stores written before this split open unchanged: the index schema is
migrated in place (one added index-only column) and payload bytes are never
rewritten — see :class:`~repro.session.cache.SolveCache`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from ..session.cache import SolveCache
from ..session.canon import (  # noqa: F401 - canonical home is repro.session
    canonical as _canonical,
    canonical_json,
    code_fingerprint,
    content_key,
)


def task_key(experiment: str, params: Dict[str, Any], fingerprint: str) -> str:
    """Content hash identifying one (experiment, params, code) task."""
    return content_key(experiment, canonical_json(params), fingerprint)


class ResultsStore:
    """Sweep-facing view of a :class:`~repro.session.cache.SolveCache`.

    One writer (the sweep orchestrator) at a time; accepts an open cache to
    share a store directory with a :class:`~repro.session.Session`, or a
    path to own one.
    """

    #: Torn-tail detection lives on the cache now; kept addressable here
    #: because it is part of the store's documented crash-recovery contract.
    _ends_mid_line = staticmethod(SolveCache._ends_mid_line)

    def __init__(self, root_or_cache):
        if isinstance(root_or_cache, SolveCache):
            self.cache = root_or_cache
            self._owns_cache = False
        else:
            self.cache = SolveCache(root_or_cache)
            self._owns_cache = True

    @property
    def root(self) -> str:
        return self.cache.root

    # -- lookup ----------------------------------------------------------

    def has(self, key: str) -> bool:
        return self.cache.has(key)

    def task_meta(self, key: str) -> Optional[Dict[str, Any]]:
        return self.cache.meta(key)

    def experiments(self) -> List[str]:
        """Experiment buckets with completed tasks (session buckets hidden)."""
        return [
            name for name in self.cache.buckets()
            if not name.startswith("solve-")
        ]

    def latest_fingerprint(self, experiment: str) -> Optional[str]:
        """Fingerprint of the most recently completed task of *experiment*."""
        return self.cache.latest_fingerprint(experiment)

    # -- write -----------------------------------------------------------

    def add(
        self,
        record: Dict[str, Any],
        elapsed_s: float,
        stats: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Persist one finished task: JSONL payload + index row.

        *stats*, when given, is the task's aggregated solver-counter dict
        (``SolverStats.to_json()`` shape); it lands in the index only —
        payload bytes stay a pure function of (experiment, params, code).
        """
        self.cache.put(
            record["key"],
            record["experiment"],
            record,
            params=record["params"],
            seed=record.get("seed"),
            fingerprint=record["fingerprint"],
            elapsed_s=elapsed_s,
            stats=stats,
        )

    # -- failure ledger ---------------------------------------------------
    #
    # Sweep-facing view of the cache's ``failures`` table: one open row per
    # task key that has failed and not yet succeeded.  The executor records
    # every failed attempt (cumulative count), reads the count back on
    # resume to decide quarantine, and a successful ``add`` clears the row.

    def record_failure(
        self,
        key: str,
        experiment: str,
        error_class: str,
        message: str,
        attempts: int,
        traceback_text: Optional[str] = None,
        params: Any = None,
        fingerprint: str = "",
        elapsed_s: float = 0.0,
    ) -> None:
        self.cache.record_failure(
            key, experiment, error_class, message, attempts,
            traceback_text=traceback_text, params=params,
            fingerprint=fingerprint, elapsed_s=elapsed_s,
        )

    def failure(self, key: str) -> Optional[Dict[str, Any]]:
        return self.cache.failure(key)

    def failure_attempts(self, key: str) -> int:
        return self.cache.failure_attempts(key)

    def clear_failure(self, key: str) -> None:
        self.cache.clear_failure(key)

    def failures(self, experiment: Optional[str] = None) -> List[Dict[str, Any]]:
        return self.cache.failures(experiment)

    def failure_count(self, experiment: Optional[str] = None) -> int:
        return self.cache.failure_count(experiment)

    def stats_totals(self, experiment: Optional[str] = None):
        """Aggregated solver counters per experiment bucket (see
        :meth:`SolveCache.stats_totals`); session buckets included only
        when named explicitly."""
        totals = self.cache.stats_totals(experiment)
        if experiment is None:
            totals = {
                name: stats for name, stats in totals.items()
                if not name.startswith("solve-")
            }
        return totals

    # -- read back -------------------------------------------------------

    def records(
        self,
        experiment: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Yield stored payload records, restricted to keys in the index.

        Defaults to every experiment bucket (never session buckets) at its
        latest completed code generation; ``fingerprint="*"`` disables the
        generation filter.  See :meth:`SolveCache.records` for the
        crash-consistency contract (unindexed and torn lines are skipped).
        """
        if experiment is None:
            for exp in self.experiments():
                yield from self.cache.records(exp, fingerprint=fingerprint)
        else:
            yield from self.cache.records(experiment, fingerprint=fingerprint)

    def close(self) -> None:
        if self._owns_cache:
            self.cache.close()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
