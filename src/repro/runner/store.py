"""Persistent, resumable results store: SQLite index + JSONL payloads.

Layout under the store root (default ``results/``)::

    results/
      index.sqlite          # task index: key -> status + run metadata
      payloads/
        <experiment>.jsonl  # one deterministic JSON record per finished task

Each task is keyed by a **content hash** of ``(experiment id, canonicalized
params, code fingerprint)``.  The fingerprint hashes every ``*.py`` file in
the installed ``repro`` package, so editing the code invalidates old results
instead of silently mixing incompatible runs; re-running an identical sweep
finds every key already present and executes nothing.

The split between the two halves is deliberate:

* the JSONL payload holds only *reproducible* content (params, seed, the
  table with volatile columns masked) — two sweeps with the same code and
  params produce byte-identical payload files, whatever ``--jobs`` was;
* the SQLite index holds the *measured* side (wall-clock per task,
  timestamps) plus the fast key lookup that makes resume O(1) per task.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
from functools import lru_cache
from typing import Any, Dict, Iterator, List, Optional

from ..analysis.tables import encode_cell

_SCHEMA = """
CREATE TABLE IF NOT EXISTS tasks (
    key         TEXT PRIMARY KEY,
    experiment  TEXT NOT NULL,
    params_json TEXT NOT NULL,
    seed        INTEGER,
    fingerprint TEXT NOT NULL,
    status      TEXT NOT NULL,
    elapsed_s   REAL,
    created_at  TEXT NOT NULL DEFAULT (datetime('now')),
    payload_path TEXT
);
CREATE INDEX IF NOT EXISTS tasks_by_experiment ON tasks (experiment);
"""


def _canonical(obj: Any) -> Any:
    """Reduce *obj* to a canonical strict-JSON-safe form for hashing/storage.

    Tuples flatten to lists, dicts are emitted sorted; scalars delegate to
    :func:`repro.analysis.tables.encode_cell` — the one place that knows how
    to tag Fractions and non-finite floats exactly and to stringify anything
    else (e.g. a Topology passed programmatically) deterministically.
    """
    if isinstance(obj, dict):
        return {str(k): _canonical(obj[k]) for k in sorted(obj, key=str)}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    return encode_cell(obj)


def canonical_json(obj: Any) -> str:
    """The canonical JSON string of *obj* (stable across processes/runs)."""
    return json.dumps(_canonical(obj), sort_keys=True, separators=(",", ":"))


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over every ``*.py`` source file of the ``repro`` package."""
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    sources: List[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(filenames):
            if name.endswith(".py"):
                sources.append(os.path.join(dirpath, name))
    for path in sorted(sources):
        digest.update(os.path.relpath(path, root).encode("utf-8"))
        digest.update(b"\0")
        with open(path, "rb") as fh:
            digest.update(fh.read())
        digest.update(b"\0")
    return digest.hexdigest()


def task_key(experiment: str, params: Dict[str, Any], fingerprint: str) -> str:
    """Content hash identifying one (experiment, params, code) task."""
    blob = "\n".join([experiment, canonical_json(params), fingerprint])
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultsStore:
    """The on-disk store; one writer (the sweep orchestrator) at a time."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self.payload_dir = os.path.join(self.root, "payloads")
        os.makedirs(self.payload_dir, exist_ok=True)
        self.index_path = os.path.join(self.root, "index.sqlite")
        self._db = sqlite3.connect(self.index_path)
        self._db.executescript(_SCHEMA)
        self._db.commit()
        # Payload files this store object has already appended to cleanly:
        # a torn tail is only possible before our first append, so the
        # newline check runs once per (store, file).
        self._clean_payloads: set = set()

    # -- lookup ----------------------------------------------------------

    def has(self, key: str) -> bool:
        row = self._db.execute(
            "SELECT 1 FROM tasks WHERE key = ? AND status = 'done'", (key,)
        ).fetchone()
        return row is not None

    def task_meta(self, key: str) -> Optional[Dict[str, Any]]:
        row = self._db.execute(
            "SELECT key, experiment, params_json, seed, fingerprint, status,"
            " elapsed_s, created_at, payload_path FROM tasks WHERE key = ?",
            (key,),
        ).fetchone()
        if row is None:
            return None
        names = (
            "key", "experiment", "params_json", "seed", "fingerprint",
            "status", "elapsed_s", "created_at", "payload_path",
        )
        return dict(zip(names, row))

    def experiments(self) -> List[str]:
        rows = self._db.execute(
            "SELECT DISTINCT experiment FROM tasks WHERE status = 'done'"
            " ORDER BY experiment"
        ).fetchall()
        return [r[0] for r in rows]

    def latest_fingerprint(self, experiment: str) -> Optional[str]:
        """Fingerprint of the most recently completed task of *experiment*."""
        row = self._db.execute(
            "SELECT fingerprint FROM tasks WHERE experiment = ? AND"
            " status = 'done' ORDER BY created_at DESC, rowid DESC LIMIT 1",
            (experiment,),
        ).fetchone()
        return row[0] if row else None

    def _done_keys(self, experiment: str) -> Dict[str, str]:
        """Completed keys of *experiment* mapped to their fingerprint."""
        rows = self._db.execute(
            "SELECT key, fingerprint FROM tasks WHERE experiment = ? AND"
            " status = 'done'",
            (experiment,),
        ).fetchall()
        return dict(rows)

    # -- write -----------------------------------------------------------

    @staticmethod
    def _ends_mid_line(path: str) -> bool:
        """Whether *path* exists, is non-empty, and lacks a final newline.

        That is the signature of a writer killed mid-append: the torn last
        line must be sealed off before new records are appended, or the
        next record would concatenate onto the fragment and *two* results
        would become unreadable instead of zero.
        """
        try:
            size = os.path.getsize(path)
        except OSError:
            return False
        if size == 0:
            return False
        with open(path, "rb") as fh:
            fh.seek(-1, os.SEEK_END)
            return fh.read(1) != b"\n"

    def add(self, record: Dict[str, Any], elapsed_s: float) -> None:
        """Persist one finished task: JSONL payload + index row."""
        experiment = record["experiment"]
        payload_rel = os.path.join("payloads", f"{experiment}.jsonl")
        payload_path = os.path.join(self.root, payload_rel)
        line = json.dumps(_canonical(record), sort_keys=True,
                          separators=(",", ":"))
        repair_newline = (
            payload_path not in self._clean_payloads
            and self._ends_mid_line(payload_path)
        )
        with open(payload_path, "a", encoding="utf-8") as fh:
            if repair_newline:
                fh.write("\n")
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._clean_payloads.add(payload_path)
        self._db.execute(
            "INSERT OR REPLACE INTO tasks"
            " (key, experiment, params_json, seed, fingerprint, status,"
            "  elapsed_s, payload_path)"
            " VALUES (?, ?, ?, ?, ?, 'done', ?, ?)",
            (
                record["key"],
                experiment,
                canonical_json(record["params"]),
                record.get("seed"),
                record["fingerprint"],
                float(elapsed_s),
                payload_rel,
            ),
        )
        self._db.commit()

    # -- read back -------------------------------------------------------

    def records(
        self,
        experiment: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Yield stored payload records, restricted to keys in the index.

        A JSONL line whose key is absent from the index (e.g. a crashed run
        that appended the payload but died before committing the index row)
        is skipped — the index is the source of truth for completion.  A
        line that does not even parse (the crash tore the write mid-line)
        is skipped for the same reason: its task was never committed, so
        resuming re-executes it and appends a clean copy.

        *fingerprint* selects one code generation; the default is each
        experiment's **latest** completed generation, so results produced
        before a code edit never mix into the same report as results
        produced after it.  Pass ``fingerprint="*"`` to see everything.
        """
        experiments = [experiment] if experiment else self.experiments()
        for exp in experiments:
            path = os.path.join(self.payload_dir, f"{exp}.jsonl")
            if not os.path.exists(path):
                continue
            done = self._done_keys(exp)
            wanted = (
                self.latest_fingerprint(exp) if fingerprint is None else fingerprint
            )
            seen: set = set()
            with open(path, encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn write of an uncommitted task
                    if not isinstance(record, dict):
                        continue
                    key = record.get("key", "")
                    if key in seen or key not in done:
                        continue
                    if wanted != "*" and done[key] != wanted:
                        continue
                    seen.add(key)
                    yield record

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
