"""Sweep orchestration: expand specs into tasks, execute, reassemble tables.

``run_sweep`` is the programmatic face of ``repro sweep``: it expands each
selected experiment's parameter space into tasks (optionally replicated
over derived seeds), keys every task by content hash, and hands the missing
ones to the executor.  ``assemble_table`` is the face of ``repro report``:
it folds a store's accumulated records for one experiment back into a
single :class:`~repro.analysis.tables.Table`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.tables import Table, decode_cell
from ..workloads.generators import derive_seed
from .budget import TaskBudget
from .executor import SweepStats, Task, run_tasks
from .registry import get_spec
from .store import ResultsStore, canonical_json, code_fingerprint, task_key

#: Root seed used for replicate derivation when ``--seed0`` is not given.
DEFAULT_SEED0 = 2017


def build_tasks(
    experiment_ids: Sequence[str],
    overrides: Optional[Mapping[str, Any]] = None,
    seeds: int = 1,
    seed0: Optional[int] = None,
    fingerprint: Optional[str] = None,
) -> List[Task]:
    """Expand experiments into the deterministic, ordered sweep task list.

    Seed policy: with ``seeds == 1`` and no explicit ``seed0`` each task
    keeps its experiment's built-in default seed, so a sweep point equals a
    direct ``run()`` call.  Asking for replicates (``seeds > 1``) or a base
    seed derives one seed per (experiment, point, replicate) via
    :func:`repro.workloads.generators.derive_seed` — worker- and
    order-independent by construction.  An explicit ``seed`` override in
    *overrides* wins over derivation.
    """
    if seeds < 1:
        raise ValueError("seeds must be >= 1")
    fingerprint = fingerprint or code_fingerprint()
    derive = seeds > 1 or seed0 is not None
    base = DEFAULT_SEED0 if seed0 is None else seed0
    tasks: List[Task] = []
    for exp_id in experiment_ids:
        spec = get_spec(exp_id)
        for point in spec.points(overrides):
            if spec.seedable and derive and "seed" not in point:
                replicates = range(seeds)
                point_sig = canonical_json(point)
                for r in replicates:
                    params = dict(point)
                    params["seed"] = derive_seed(base, spec.id, point_sig, r)
                    tasks.append(
                        Task(spec.id, params, task_key(spec.id, params, fingerprint))
                    )
            else:
                params = dict(point)
                tasks.append(
                    Task(spec.id, params, task_key(spec.id, params, fingerprint))
                )
    return tasks


def shard_tasks(tasks: Sequence[Task], shard: Tuple[int, int]) -> List[Task]:
    """Deterministic round-robin slice ``K/N`` of the ordered task list.

    Shard *K* (1-based) of *N* takes every N-th task starting at position
    ``K−1``: the shards partition the list exactly, are stable across
    machines (the task list itself is deterministic), and interleave heavy
    experiments instead of handing one machine a contiguous block of them.
    Because task keys are content hashes, independent CI machines can run
    disjoint shards into separate stores — or sequentially into one — and
    a final un-sharded resume executes nothing.
    """
    k, n = shard
    if n < 1 or not 1 <= k <= n:
        raise ValueError(f"shard must satisfy 1 ≤ K ≤ N, got {k}/{n}")
    return [task for idx, task in enumerate(tasks) if idx % n == k - 1]


def run_sweep(
    experiment_ids: Sequence[str],
    store: ResultsStore,
    jobs: int = 1,
    overrides: Optional[Mapping[str, Any]] = None,
    seeds: int = 1,
    seed0: Optional[int] = None,
    shard: Optional[Tuple[int, int]] = None,
    echo: Optional[Callable[[str], None]] = None,
    trace: bool = False,
    budget: Optional[TaskBudget] = None,
    chaos: Optional[Any] = None,
    retry_failed: bool = False,
) -> SweepStats:
    """Run (the missing part of) a sweep against *store*; returns stats.

    *shard* restricts execution to slice ``(K, N)`` of the deterministic
    task list (see :func:`shard_tasks`) so independent machines can split
    one sweep.  *trace* ships worker span trees back to the driver's
    tracer (see :func:`~repro.runner.executor.run_tasks`).  *budget*
    (per-task limits + retries), *chaos* (a fault-injection spec, spec
    string, or the ``REPRO_CHAOS`` default) and *retry_failed* (re-run
    ledger-quarantined tasks) pass straight through to the executor.
    """
    fingerprint = code_fingerprint()
    tasks = build_tasks(
        experiment_ids, overrides=overrides, seeds=seeds, seed0=seed0,
        fingerprint=fingerprint,
    )
    if shard is not None:
        tasks = shard_tasks(tasks, shard)
    return run_tasks(
        tasks, store, fingerprint, jobs=jobs, echo=echo, trace=trace,
        budget=budget, chaos=chaos, retry_failed=retry_failed,
    )


def _sortable(obj: Any):
    """A comparison key that orders numeric axes numerically.

    Records of one experiment share their params structure, so recursive
    conversion lines up; scalars are type-tagged so e.g. mixed str/int
    tuples (E10's ``("semi", 6, 2)`` shapes) never raise on comparison.
    """
    if isinstance(obj, dict):
        return tuple((k, _sortable(obj[k])) for k in sorted(obj))
    if isinstance(obj, (list, tuple)):
        return tuple(_sortable(v) for v in obj)
    if isinstance(obj, bool):
        return ("b", obj)
    if isinstance(obj, (int, float)):
        return ("n", obj)
    return ("s", str(obj))


def _record_sort_key(record: Dict[str, Any]):
    seed = record.get("seed")
    return (
        _sortable(record.get("params", {})),
        seed if isinstance(seed, int) else -1,
        record.get("key", ""),
    )


def assemble_table(
    store: ResultsStore,
    experiment: str,
    timings: bool = False,
) -> Optional[Table]:
    """Fold every stored record of *experiment* into one accumulated table.

    Row order is canonical (sorted by params, then seed) so report output
    does not depend on completion or insertion order.  With ``timings=True``
    a per-task ``elapsed s`` column is appended from the store index —
    measured metadata, deliberately kept out of the payloads.
    """
    records = sorted(store.records(experiment), key=_record_sort_key)
    if not records:
        return None
    row_dicts: List[Dict[str, Any]] = []
    multi_seed = len({r.get("seed") for r in records}) > 1
    for record in records:
        payload = record["table"]
        headers = payload["headers"]
        elapsed = None
        if timings:
            meta = store.task_meta(record["key"]) or {}
            elapsed = meta.get("elapsed_s")
        for row in payload["rows"]:
            out: Dict[str, Any] = {}
            if multi_seed:
                out["seed"] = record.get("seed")
            out.update(zip(headers, (decode_cell(c) for c in row)))
            if timings:
                out["elapsed s"] = elapsed
            row_dicts.append(out)
    title = (
        f"{experiment} — accumulated sweep "
        f"({len(records)} task{'s' if len(records) != 1 else ''})"
    )
    return Table.from_records(row_dicts, title=title)
