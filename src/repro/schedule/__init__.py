"""Schedule substrate: segments, containers, validation, metrics."""

from .metrics import (
    JobTransitionCounts,
    ScheduleSummary,
    average_utilization,
    distinct_machine_migrations,
    job_transitions,
    machine_utilization,
    migration_tier_histogram,
    priced_migration_cost,
    summarize,
    total_migrations,
    total_migrations_processing_order,
    total_preemptions_and_migrations,
)
from .periodic import interior_instance_migrations, steady_state_migrations_per_period, unroll
from .schedule import Schedule
from .segments import MachineTimeline, Segment, advance_mod, place_arc
from .serialize import (
    assignment_from_dict,
    assignment_to_dict,
    schedule_from_dict,
    schedule_from_json,
    schedule_to_dict,
    schedule_to_json,
)
from .validator import ScheduleViolation, ValidationReport, validate_schedule

__all__ = [
    "JobTransitionCounts",
    "MachineTimeline",
    "Schedule",
    "ScheduleSummary",
    "ScheduleViolation",
    "Segment",
    "ValidationReport",
    "advance_mod",
    "assignment_from_dict",
    "assignment_to_dict",
    "average_utilization",
    "distinct_machine_migrations",
    "interior_instance_migrations",
    "job_transitions",
    "schedule_from_dict",
    "schedule_from_json",
    "schedule_to_dict",
    "schedule_to_json",
    "steady_state_migrations_per_period",
    "machine_utilization",
    "migration_tier_histogram",
    "place_arc",
    "priced_migration_cost",
    "summarize",
    "total_migrations",
    "total_migrations_processing_order",
    "total_preemptions_and_migrations",
    "unroll",
    "validate_schedule",
]
