"""Online job-arrival models: release times and sporadic tasks.

The paper's Algorithms 1 and 3 produce wrap-around schedules for one fixed
planning window; :mod:`repro.schedule.periodic` gives them a cyclic reading
in which every window executes a fresh instance of every job.  Real-time
practice (the semi-partitioned literature the paper builds on) goes one
step further: job instances *arrive* — periodically with release offsets,
or sporadically with a minimum interarrival time — and the runtime admits
each arriving instance into a planning window.  This module provides the
arrival side of that story; :mod:`repro.simulation.admission` provides the
admission side.

All timestamps are exact :class:`~fractions.Fraction` values.  Randomized
variants (release jitter, sporadic slack) draw *integer* numerators at a
declared resolution from per-job streams seeded through
:func:`repro.workloads.generators.derive_seed`, so a stream is a pure
function of ``(seed, job)`` — never of how many other jobs exist or in
which order streams are materialized.  That is the property that keeps
sweep results byte-identical across ``--jobs N``.

The deliberate degeneracies are load-bearing for the test suite:

* a :class:`PeriodicArrivals` with zero offsets and zero jitter releases
  instance ``q`` of every job at exactly ``q·period`` — the stream whose
  admission must reproduce the cyclic reading of
  :func:`repro.schedule.periodic.unroll` bit-for-bit;
* a :class:`SporadicArrivals` with zero slack *is* that same stream
  (interarrival exactly the period), which pins the two variants together.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Tuple, Union

from .._fraction import to_fraction
from ..exceptions import InvalidInstanceError

Time = Union[int, Fraction]


@dataclass(frozen=True)
class JobArrival:
    """One arriving job instance: template job *job*, instance *index*.

    ``release`` is the absolute time the instance becomes available;
    ``deadline`` its absolute deadline (release + relative deadline).
    """

    job: int
    index: int
    release: Fraction
    deadline: Fraction

    def __post_init__(self):
        object.__setattr__(self, "release", to_fraction(self.release))
        object.__setattr__(self, "deadline", to_fraction(self.deadline))
        if self.release < 0:
            raise InvalidInstanceError(
                f"release time must be non-negative, got {self.release}"
            )
        if self.deadline < self.release:
            raise InvalidInstanceError(
                f"deadline {self.deadline} precedes release {self.release}"
            )


def _arrival_order(arrival: JobArrival) -> Tuple[Fraction, int, int]:
    return (arrival.release, arrival.job, arrival.index)


class ArrivalModel:
    """Base interface: a deterministic stream of job instances per job.

    Subclasses implement :meth:`job_releases`; the shared
    :meth:`arrivals_until` materializes and orders the merged stream.
    """

    n_jobs: int
    relative_deadline: Fraction

    def job_releases(self, job: int, horizon: Fraction) -> List[Fraction]:
        """Release times of *job*'s instances with ``release < horizon``."""
        raise NotImplementedError

    def arrivals_until(self, horizon: Time) -> List[JobArrival]:
        """Every instance released strictly before *horizon*, in
        ``(release, job, index)`` order — the canonical event order the
        admission layer consumes."""
        horizon = to_fraction(horizon)
        stream: List[JobArrival] = []
        for job in range(self.n_jobs):
            for index, release in enumerate(self.job_releases(job, horizon)):
                stream.append(
                    JobArrival(
                        job=job,
                        index=index,
                        release=release,
                        deadline=release + self.relative_deadline,
                    )
                )
        stream.sort(key=_arrival_order)
        return stream


def _per_job_rng(seed: int, label: str, job: int):
    # Imported lazily: workloads.generators imports simulation modules, and
    # keeping schedule/ free of that import at module load avoids a cycle.
    from ..workloads.generators import derive_seed, rng_from_seed

    return rng_from_seed(derive_seed(seed, label, job))


def _draw_fractions(
    rng, count: int, bound: Fraction, resolution: int
) -> List[Fraction]:
    """*count* exact draws from ``{0, 1/resolution, …} ∩ [0, bound]``.

    The grid keeps the stream exact: numerators are integers from the
    seeded generator, denominators the declared resolution — no float ever
    touches a timestamp.
    """
    steps = int(bound * resolution)
    if steps <= 0:
        return [Fraction(0)] * count
    draws = rng.integers(0, steps + 1, size=count)
    return [Fraction(int(k), resolution) for k in draws]


@dataclass(frozen=True)
class PeriodicArrivals(ArrivalModel):
    """Periodic tasks with per-job release offsets and optional jitter.

    Instance ``q`` of job ``j`` is released at
    ``offsets[j] + q·periods[j] + J_{j,q}`` where the jitter ``J_{j,q}`` is
    an exact draw from ``[0, jitter]`` at ``1/resolution`` granularity
    (zero by default).  ``periods`` broadcasts a scalar; harmonic task sets
    pass per-job multiples.  The relative deadline defaults to the (base)
    period — the implicit-deadline convention of the schedulability
    literature.

    Jitter is bounded below the period so releases of one job stay strictly
    increasing (instance order is never scrambled).
    """

    n_jobs: int
    period: Fraction
    offsets: Optional[Tuple[Fraction, ...]] = None
    periods: Optional[Tuple[Fraction, ...]] = None
    relative_deadline: Optional[Fraction] = None
    jitter: Fraction = Fraction(0)
    resolution: int = 16
    seed: int = 0

    def __post_init__(self):
        if self.n_jobs < 1:
            raise InvalidInstanceError(f"need ≥ 1 job, got {self.n_jobs}")
        period = to_fraction(self.period)
        if period <= 0:
            raise InvalidInstanceError(f"period must be positive, got {period}")
        object.__setattr__(self, "period", period)
        if self.offsets is None:
            offsets = (Fraction(0),) * self.n_jobs
        else:
            offsets = tuple(to_fraction(o) for o in self.offsets)
        if len(offsets) != self.n_jobs:
            raise InvalidInstanceError(
                f"{len(offsets)} offsets for {self.n_jobs} jobs"
            )
        if any(o < 0 for o in offsets):
            raise InvalidInstanceError("release offsets must be non-negative")
        object.__setattr__(self, "offsets", offsets)
        if self.periods is None:
            periods = (period,) * self.n_jobs
        else:
            periods = tuple(to_fraction(p) for p in self.periods)
        if len(periods) != self.n_jobs:
            raise InvalidInstanceError(
                f"{len(periods)} periods for {self.n_jobs} jobs"
            )
        if any(p <= 0 for p in periods):
            raise InvalidInstanceError("per-job periods must be positive")
        object.__setattr__(self, "periods", periods)
        deadline = (
            period
            if self.relative_deadline is None
            else to_fraction(self.relative_deadline)
        )
        if deadline <= 0:
            raise InvalidInstanceError(
                f"relative deadline must be positive, got {deadline}"
            )
        object.__setattr__(self, "relative_deadline", deadline)
        jitter = to_fraction(self.jitter)
        if jitter < 0:
            raise InvalidInstanceError("jitter must be non-negative")
        if jitter >= min(periods):
            raise InvalidInstanceError(
                f"jitter {jitter} must stay below the shortest period "
                f"{min(periods)} (release order would scramble)"
            )
        object.__setattr__(self, "jitter", jitter)
        if self.resolution < 1:
            raise InvalidInstanceError("resolution must be ≥ 1")

    def job_releases(self, job: int, horizon: Fraction) -> List[Fraction]:
        offset = self.offsets[job]
        period = self.periods[job]
        if offset >= horizon:
            return []
        # Largest q with offset + q·period < horizon (jitter only delays).
        count = int((horizon - offset) / period)
        if offset + count * period < horizon:
            count += 1
        bases = [offset + q * period for q in range(count)]
        if self.jitter > 0:
            rng = _per_job_rng(self.seed, "periodic-jitter", job)
            jitters = _draw_fractions(rng, count, self.jitter, self.resolution)
            bases = [b + j for b, j in zip(bases, jitters)]
        return [b for b in bases if b < horizon]


@dataclass(frozen=True)
class SporadicArrivals(ArrivalModel):
    """Sporadic tasks: consecutive releases at least ``min_interarrival``
    apart, plus an exact random slack drawn from ``[0, max_slack]``.

    With ``max_slack = 0`` the stream degenerates to a zero-offset periodic
    stream of period ``min_interarrival`` — the bit-for-bit bridge the
    cross-check tests lean on.  The relative deadline defaults to the
    minimum interarrival time (implicit deadlines again).
    """

    n_jobs: int
    min_interarrival: Fraction
    max_slack: Fraction = Fraction(0)
    relative_deadline: Optional[Fraction] = None
    resolution: int = 16
    seed: int = 0

    def __post_init__(self):
        if self.n_jobs < 1:
            raise InvalidInstanceError(f"need ≥ 1 job, got {self.n_jobs}")
        gap = to_fraction(self.min_interarrival)
        if gap <= 0:
            raise InvalidInstanceError(
                f"minimum interarrival must be positive, got {gap}"
            )
        object.__setattr__(self, "min_interarrival", gap)
        slack = to_fraction(self.max_slack)
        if slack < 0:
            raise InvalidInstanceError("max_slack must be non-negative")
        object.__setattr__(self, "max_slack", slack)
        deadline = (
            gap
            if self.relative_deadline is None
            else to_fraction(self.relative_deadline)
        )
        if deadline <= 0:
            raise InvalidInstanceError(
                f"relative deadline must be positive, got {deadline}"
            )
        object.__setattr__(self, "relative_deadline", deadline)
        if self.resolution < 1:
            raise InvalidInstanceError("resolution must be ≥ 1")

    def job_releases(self, job: int, horizon: Fraction) -> List[Fraction]:
        releases: List[Fraction] = []
        rng = (
            _per_job_rng(self.seed, "sporadic-slack", job)
            if self.max_slack > 0
            else None
        )
        t = Fraction(0)
        while t < horizon:
            releases.append(t)
            gap = self.min_interarrival
            if rng is not None:
                gap += _draw_fractions(rng, 1, self.max_slack, self.resolution)[0]
            t = t + gap
        return releases
