"""Schedule metrics: makespan, migrations, preemptions, utilization.

Two migration accountings coexist, and the difference is a real finding of
this reproduction (see EXPERIMENTS.md, E03):

* **wall-clock** (:func:`job_transitions`): sort a job's merged segments by
  start time; a machine change is a migration, a same-machine gap a pure
  preemption.  This is what an execution trace observes — but the
  wrap-around rule may run the *tail* of a job's processing line (the part
  after the mod-T wrap) earlier in wall-clock time than its head, which can
  convert the wrap preemption into an extra observed migration.  On
  ``m = 2`` one global job can show 2 wall-clock migrations.

* **processing-order** (:func:`distinct_machine_migrations`): the paper's
  Proposition III.2 counts along the job's processing line, where crossing a
  chunk boundary is the migration and the mod-T wrap is a preemption.  In
  the wrap-around constructions each job visits every machine's chunk at
  most once, so line-order migrations equal ``#distinct machines − 1`` —
  which is how we count them without tracking line positions.

The *combined* count (preemptions + migrations = number of merged pieces −
1) is order-invariant, so the ``2m − 2`` bound is checked on wall-clock
data directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .._fraction import to_fraction
from .schedule import Schedule

Time = Union[int, Fraction]


@dataclass(frozen=True)
class JobTransitionCounts:
    migrations: int
    pure_preemptions: int

    @property
    def total(self) -> int:
        """Preemptions and migrations combined (Proposition III.2's 2m−2)."""
        return self.migrations + self.pure_preemptions


def merge_piece_runs(
    raw: List[Tuple[int, Fraction, Fraction]]
) -> List[Tuple[int, Fraction, Fraction]]:
    """Sort ``(machine, start, end)`` pieces and merge same-machine
    contiguous runs — the canonical "merged pieces" every transition
    accounting in this module works on.  Exposed so callers that already
    hold a job's pieces (the admission layer, per instance) can account
    without re-scanning a whole schedule."""
    raw = sorted(raw, key=lambda t: (t[1], t[2]))
    merged: List[Tuple[int, Fraction, Fraction]] = []
    for machine, start, end in raw:
        if merged and merged[-1][0] == machine and merged[-1][2] == start:
            merged[-1] = (machine, merged[-1][1], end)
        else:
            merged.append((machine, start, end))
    return merged


def _merged_job_segments(schedule: Schedule, job: int) -> List[Tuple[int, Fraction, Fraction]]:
    return merge_piece_runs(
        [(machine, seg.start, seg.end) for machine, seg in schedule.job_segments(job)]
    )


def transitions_of_merged(
    merged: List[Tuple[int, Fraction, Fraction]]
) -> JobTransitionCounts:
    """Migration/preemption counts of one job's merged pieces."""
    migrations = 0
    pure_preemptions = 0
    for (m1, _s1, e1), (m2, s2, _e2) in zip(merged, merged[1:]):
        if m1 != m2:
            migrations += 1
        elif s2 > e1:
            pure_preemptions += 1
    return JobTransitionCounts(migrations, pure_preemptions)


def job_transitions(schedule: Schedule, job: int) -> JobTransitionCounts:
    """Count migrations and pure preemptions for one job."""
    return transitions_of_merged(_merged_job_segments(schedule, job))


def total_migrations(schedule: Schedule) -> int:
    """Total wall-clock migrations over all jobs (observable accounting)."""
    return sum(job_transitions(schedule, j).migrations for j in schedule.jobs())


def distinct_machine_migrations(schedule: Schedule, job: int) -> int:
    """Processing-order migrations of one job: ``#distinct machines − 1``.

    This is Proposition III.2's accounting (the wrap is a preemption, not a
    migration); it is exact for the paper's wrap-around constructions, where
    a job's line segment meets each machine's chunk at most once.
    """
    machines = {m for m, _seg in schedule.job_segments(job)}
    return max(0, len(machines) - 1)


def total_migrations_processing_order(schedule: Schedule) -> int:
    """Total processing-order migrations (Prop. III.2 bound: ``m − 1``)."""
    return sum(distinct_machine_migrations(schedule, j) for j in schedule.jobs())


def total_preemptions_and_migrations(schedule: Schedule) -> int:
    """Combined transitions over all jobs (Prop. III.2 bound: ``2m − 2``).

    Order-invariant: equals Σ_j (merged pieces of j − 1).
    """
    return sum(job_transitions(schedule, j).total for j in schedule.jobs())


def migration_tier_histogram(schedule, topology) -> Dict[int, int]:
    """Wall-clock migrations bucketed by the topology tier they cross.

    Keys are tier heights (1 = same chip, 2 = same node, …); use
    ``topology.tier_name`` to label them.
    """
    histogram: Dict[int, int] = {}
    for job in schedule.jobs():
        merged = _merged_job_segments(schedule, job)
        for (m1, _s1, _e1), (m2, _s2, _e2) in zip(merged, merged[1:]):
            if m1 != m2:
                tier = topology.migration_tier(m1, m2)
                histogram[tier] = histogram.get(tier, 0) + 1
    return histogram


def priced_cost_of_merged(
    merged: List[Tuple[int, Fraction, Fraction]], topology, cost_model
) -> Fraction:
    """Distance-priced overhead of one job's merged pieces.

    Each wall-clock machine change is charged
    ``cost_model.migration_cost(topology, a, b)`` (tier cost plus the
    distance-proportional term when the model has a ``distance_rate``);
    same-machine gaps are charged the tier-0 resume cost.
    """
    total = Fraction(0)
    for (m1, _s1, e1), (m2, s2, _e2) in zip(merged, merged[1:]):
        if m1 != m2:
            total += cost_model.migration_cost(topology, m1, m2)
        elif s2 > e1:
            total += cost_model.cost_of_tier(0)
    return total


def priced_job_migration_cost(schedule, job, topology, cost_model) -> Fraction:
    """One job's migration overhead priced by tier *and* NUMA distance.

    The admission layer prices each admitted *instance* with the same
    accounting (via :func:`priced_cost_of_merged` on pieces it already
    holds).
    """
    return priced_cost_of_merged(
        _merged_job_segments(schedule, job), topology, cost_model
    )


def priced_migration_cost(schedule, topology, cost_model) -> Fraction:
    """Total distance-priced migration overhead over all jobs.

    This is the scalar E17 compares across topologies — on a topology
    without a distance matrix and a rate-0 model it reduces to counting
    migrations weighted by the tier cost profile.
    """
    return sum(
        (
            priced_job_migration_cost(schedule, job, topology, cost_model)
            for job in schedule.jobs()
        ),
        Fraction(0),
    )


def machine_utilization(schedule: Schedule) -> Dict[int, Fraction]:
    """Busy fraction of each machine over the horizon ``[0, T]``."""
    if schedule.T == 0:
        return {machine: Fraction(0) for machine in schedule.machines}
    return {
        machine: schedule.machine_load(machine) / schedule.T
        for machine in schedule.machines
    }


def average_utilization(schedule: Schedule) -> Fraction:
    """Mean busy fraction across machines over ``[0, T]``."""
    per_machine = machine_utilization(schedule)
    if not per_machine:
        return Fraction(0)
    return sum(per_machine.values(), Fraction(0)) / len(per_machine)


@dataclass(frozen=True)
class ScheduleSummary:
    makespan: Fraction
    migrations: int
    preemptions_and_migrations: int
    segments: int
    avg_utilization: Fraction


def summarize(schedule: Schedule) -> ScheduleSummary:
    """One-call summary used by examples and the benchmark tables."""
    return ScheduleSummary(
        makespan=schedule.makespan(),
        migrations=total_migrations(schedule),
        preemptions_and_migrations=total_preemptions_and_migrations(schedule),
        segments=schedule.total_segments(),
        avg_utilization=average_utilization(schedule),
    )


# ---------------------------------------------------------------------------
# Online metrics: response time, tardiness, deadline misses (E18)
# ---------------------------------------------------------------------------


def tardiness(completion: Time, deadline: Time) -> Fraction:
    """``max(0, completion − deadline)`` — exact, never negative."""
    lateness = to_fraction(completion) - to_fraction(deadline)
    return lateness if lateness > 0 else Fraction(0)


@dataclass(frozen=True)
class ResponseStats:
    """Exact response-time statistics over a set of completed instances.

    All times are :class:`~fractions.Fraction`; ``mean_response`` and
    ``miss_ratio`` are exact rationals (``None`` when no instance
    completed).
    """

    completed: int
    misses: int
    max_response: Optional[Fraction]
    mean_response: Optional[Fraction]
    max_tardiness: Fraction
    total_tardiness: Fraction

    @property
    def miss_ratio(self) -> Optional[Fraction]:
        if self.completed == 0:
            return None
        return Fraction(self.misses, self.completed)


def response_stats(instances: Iterable) -> ResponseStats:
    """Fold completed instances into a :class:`ResponseStats`.

    *instances* is any iterable of objects exposing ``release``,
    ``completion`` and ``deadline`` attributes (duck-typed so the admission
    layer's :class:`~repro.simulation.admission.AdmittedInstance` and plain
    test fixtures both work).  A miss is ``completion > deadline`` —
    strict, because finishing exactly at the deadline meets it.
    """
    count = 0
    misses = 0
    max_response: Optional[Fraction] = None
    total_response = Fraction(0)
    max_tardy = Fraction(0)
    total_tardy = Fraction(0)
    for inst in instances:
        release = to_fraction(inst.release)
        completion = to_fraction(inst.completion)
        deadline = to_fraction(inst.deadline)
        response = completion - release
        count += 1
        total_response += response
        if max_response is None or response > max_response:
            max_response = response
        tardy = tardiness(completion, deadline)
        total_tardy += tardy
        if tardy > max_tardy:
            max_tardy = tardy
        if tardy > 0:
            misses += 1
    return ResponseStats(
        completed=count,
        misses=misses,
        max_response=max_response,
        mean_response=(total_response / count) if count else None,
        max_tardiness=max_tardy,
        total_tardiness=total_tardy,
    )
