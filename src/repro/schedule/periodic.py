"""Cyclic interpretation of wrap-around schedules.

The schedules produced by Algorithms 1 and 3 live on the *circle* of
circumference ``T``; running them repeatedly (as a real-time system runs a
planning window) makes the mod-T wrap seamless: a piece ending at ``T``
continues at ``0`` of the next period on the same machine without
interruption.

In the periodic reading, each period executes a **fresh instance** of every
job: :func:`unroll` with ``relabel=True`` (the default) gives period ``q``'s
copy of job ``j`` the id ``j + q·stride``, and attaches the piece that
wrapped past ``T`` to the instance it belongs to.  Per instance, the
wall-clock transition counts then coincide with Proposition III.2's
processing-order accounting — the wrap is a seamless same-machine
continuation, and only genuine chunk-boundary crossings count as
migrations.  This closes the accounting discrepancy documented in
:mod:`repro.schedule.metrics` (experiment E03).

``relabel=False`` keeps one identity per job across periods, which charges
the inter-instance hand-off (last machine of instance ``q`` → first machine
of instance ``q+1``) as an extra migration — the pessimistic reading.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

from .._fraction import to_fraction
from ..exceptions import InvalidScheduleError
from .metrics import job_transitions
from .schedule import Schedule

Time = Union[int, Fraction]


def wrapped_tail(schedule: Schedule, job: int):
    """The mod-T wrapped piece of *job*, as ``[(machine, segment)]``.

    A tail exists exactly when the job has a piece ending at ``T`` and one
    starting at ``0`` on the same machine (and more than one piece in
    total): that leading run is the seamless continuation of the piece that
    hit the wrap, and in the periodic reading it belongs to the *previous*
    instance.  At most one tail exists (a job's work is ≤ T).

    Shared by :func:`unroll` and the admission layer
    (:mod:`repro.simulation.admission`), so the two readings agree on which
    piece wraps by construction.
    """
    segs = schedule.job_segments(job)
    by_machine_end = {m for m, s in segs if s.end == schedule.T}
    tail = []
    for machine, seg in segs:
        if seg.start == 0 and machine in by_machine_end and len(segs) > 1:
            tail.append((machine, seg))
            break  # at most one wrapped piece per job (length ≤ T)
    return tail


def unroll(
    schedule: Schedule,
    periods: int,
    relabel: bool = True,
) -> Schedule:
    """Concatenate *periods* copies of *schedule* over ``[0, periods·T)``.

    With ``relabel=True``, period ``q``'s copy of job ``j`` gets the id
    ``j + q·stride`` (``stride = max job id + 1``), and a piece that the
    mod-T rule wrapped to the start of the window is assigned to the
    *previous* period's instance (it is that instance's seamless
    continuation).  Boundary bookkeeping of a finite unroll:

    * period 0's wrapped piece has no predecessor — it is labelled
      ``j + periods·stride`` (a distinct "warm-up" id), mirroring how a
      cold-started periodic system fills the slot before steady state;
    * the last instance's tail would fall in period ``periods`` and is
      truncated.

    Consequently instances of periods ``0 … periods−2`` receive exactly the
    one-shot work; steady-state metrics should be read from interior
    instances (:func:`interior_instance_migrations`).
    """
    if periods < 1:
        raise InvalidScheduleError(f"periods must be ≥ 1, got {periods}")
    T = schedule.T
    if T <= 0:
        raise InvalidScheduleError("cannot unroll a schedule with zero period")
    jobs = schedule.jobs()
    stride = (max(jobs) + 1) if jobs else 1
    result = Schedule(schedule.machines, T * periods)

    if not relabel:
        for q in range(periods):
            offset = q * T
            for machine in schedule.machines:
                for seg in schedule.timeline(machine):
                    result.add_segment(
                        machine, seg.job, seg.start + offset, seg.end + offset
                    )
        return result

    # For each job, split its per-period segments into "head" (the pieces
    # from its first processing onward) and "wrapped tail" (pieces that the
    # mod-T rule pushed to the start of the window) — see wrapped_tail.
    tail_segments = {job: wrapped_tail(schedule, job) for job in jobs}

    for q in range(periods):
        offset = q * T
        for machine in schedule.machines:
            for seg in schedule.timeline(machine):
                is_tail = any(
                    seg == t_seg and machine == t_m
                    for t_m, t_seg in tail_segments[seg.job]
                )
                if is_tail and q > 0:
                    # Wrapped tail: belongs to the previous period's instance.
                    instance_id = seg.job + (q - 1) * stride
                elif is_tail:
                    # Period 0's wrapped piece: cold-start warm-up slot.
                    instance_id = seg.job + periods * stride
                else:
                    instance_id = seg.job + q * stride
                result.add_segment(
                    machine, instance_id, seg.start + offset, seg.end + offset
                )
    return result


def steady_state_migrations_per_period(
    schedule: Schedule,
    periods: int = 4,
    relabel: bool = True,
) -> Fraction:
    """Average wall-clock migrations per period in the unrolled schedule.

    With instance relabeling (the periodic reading) the interior periods'
    counts equal the processing-order accounting of Proposition III.2.
    """
    from .metrics import total_migrations

    if periods < 1:
        raise InvalidScheduleError(f"periods must be ≥ 1, got {periods}")
    unrolled = unroll(schedule, periods, relabel=relabel)
    return Fraction(total_migrations(unrolled), periods)


def interior_instance_migrations(
    schedule: Schedule,
    job: int,
    periods: int = 4,
) -> int:
    """Wall-clock migrations of job *job*'s instance in an interior period.

    For the paper's wrap-around schedules this equals the processing-order
    migration count (`distinct machines − 1`) — the property the test suite
    asserts to close the E03 accounting question.
    """
    if periods < 3:
        raise InvalidScheduleError("need ≥ 3 periods for an interior instance")
    jobs = schedule.jobs()
    stride = (max(jobs) + 1) if jobs else 1
    unrolled = unroll(schedule, periods, relabel=True)
    instance_id = job + (periods // 2) * stride
    return job_transitions(unrolled, instance_id).migrations
