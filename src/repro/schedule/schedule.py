"""The schedule container produced by the paper's Algorithms 1 and 3."""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .._fraction import to_fraction
from ..exceptions import InvalidScheduleError
from .segments import MachineTimeline, Segment, Time


class Schedule:
    """A complete schedule: per-machine timelines over the horizon ``[0, T]``.

    The container enforces per-machine exclusivity eagerly (adding an
    overlapping segment raises); all other validity conditions of Section II
    (no job parallel to itself, delivered work, mask containment) are checked
    by :func:`repro.schedule.validator.validate_schedule`.
    """

    def __init__(self, machines: Iterable[int], T: Time):
        self.T: Fraction = to_fraction(T)
        if self.T < 0:
            raise InvalidScheduleError(f"horizon T must be non-negative, got {self.T}")
        self._timelines: Dict[int, MachineTimeline] = {
            int(i): MachineTimeline(int(i)) for i in machines
        }
        if not self._timelines:
            raise InvalidScheduleError("a schedule needs at least one machine")

    @property
    def machines(self) -> Tuple[int, ...]:
        return tuple(sorted(self._timelines))

    def timeline(self, machine: int) -> MachineTimeline:
        return self._timelines[machine]

    def add_segment(self, machine: int, job: int, start: Time, end: Time) -> Segment:
        """Place job *job* on *machine* during ``[start, end)``."""
        start = to_fraction(start)
        end = to_fraction(end)
        if start < 0 or end > self.T:
            raise InvalidScheduleError(
                f"segment [{start}, {end}) of job {job} outside horizon [0, {self.T}]"
            )
        segment = Segment(start, end, job)
        self._timelines[machine].add(segment)
        return segment

    def job_segments(self, job: int) -> List[Tuple[int, Segment]]:
        """All ``(machine, segment)`` pairs of *job*, sorted by start time."""
        found: List[Tuple[int, Segment]] = []
        for machine, timeline in self._timelines.items():
            for seg in timeline:
                if seg.job == job:
                    found.append((machine, seg))
        found.sort(key=lambda pair: (pair[1].start, pair[1].end, pair[0]))
        return found

    def jobs(self) -> Tuple[int, ...]:
        present = set()
        for timeline in self._timelines.values():
            for seg in timeline:
                present.add(seg.job)
        return tuple(sorted(present))

    def work_of(self, job: int) -> Fraction:
        return sum((seg.length for _m, seg in self.job_segments(job)), Fraction(0))

    def completion_time(self, job: int) -> Fraction:
        segments = self.job_segments(job)
        if not segments:
            return Fraction(0)
        return max(seg.end for _m, seg in segments)

    def makespan(self) -> Fraction:
        """``max_j C_j`` — the latest completion over all scheduled jobs."""
        latest = Fraction(0)
        for timeline in self._timelines.values():
            for seg in timeline:
                latest = max(latest, seg.end)
        return latest

    def machine_load(self, machine: int) -> Fraction:
        return self._timelines[machine].load

    def total_segments(self) -> int:
        return sum(len(t) for t in self._timelines.values())

    def as_table(self) -> str:
        """Human-readable rendering, one machine per line."""
        lines = []
        for machine in self.machines:
            parts = [
                f"j{seg.job}[{seg.start},{seg.end})"
                for seg in self._timelines[machine].merged_segments()
            ]
            lines.append(f"machine {machine}: " + (" ".join(parts) if parts else "idle"))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Schedule(machines={len(self._timelines)}, T={self.T}, "
            f"segments={self.total_segments()})"
        )
