"""Time segments and mod-T arc placement.

Both schedulers in the paper place work on the *circle* of circumference
``T``: an interval ``[t, t+δ (mod T))`` either fits before the wrap point or
splits into ``[t, T)`` and ``[0, t+δ−T)``.  :func:`place_arc` implements that
splitting exactly; :class:`MachineTimeline` keeps one machine's segments
sorted and overlap-checked.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, List, Tuple, Union

from .._fraction import to_fraction
from ..exceptions import InvalidScheduleError

Time = Union[int, Fraction]


@dataclass(frozen=True, order=True)
class Segment:
    """A half-open execution interval ``[start, end)`` of one job.

    Half-open semantics make back-to-back segments (``a.end == b.start``)
    non-overlapping, which is exactly how the wrap-around rule hands a job
    from one machine to the next at a single time instant.
    """

    start: Fraction
    end: Fraction
    job: int

    def __post_init__(self):
        object.__setattr__(self, "start", to_fraction(self.start))
        object.__setattr__(self, "end", to_fraction(self.end))
        if self.end <= self.start:
            raise InvalidScheduleError(
                f"segment of job {self.job} has non-positive length "
                f"[{self.start}, {self.end})"
            )

    @property
    def length(self) -> Fraction:
        return self.end - self.start

    def overlaps(self, other: "Segment") -> bool:
        return self.start < other.end and other.start < self.end


def place_arc(t0: Time, length: Time, T: Time) -> List[Tuple[Fraction, Fraction]]:
    """Place ``length`` units starting at ``t0`` on the circle of size ``T``.

    Returns one or two half-open real-time intervals inside ``[0, T)`` whose
    total length equals *length*.  ``length`` must satisfy
    ``0 ≤ length ≤ T`` (an arc longer than the circle would self-overlap);
    ``t0`` must lie in ``[0, T)``.
    """
    t0 = to_fraction(t0)
    length = to_fraction(length)
    T = to_fraction(T)
    if T <= 0:
        raise InvalidScheduleError(f"period T must be positive, got {T}")
    if not 0 <= t0 < T:
        raise InvalidScheduleError(f"arc start {t0} outside [0, {T})")
    if length < 0 or length > T:
        raise InvalidScheduleError(f"arc length {length} outside [0, {T}]")
    if length == 0:
        return []
    end = t0 + length
    if end <= T:
        return [(t0, end)]
    return [(t0, T), (Fraction(0), end - T)]


def advance_mod(t: Time, delta: Time, T: Time) -> Fraction:
    """``(t + delta) mod T`` with exact arithmetic (lines 7/13 of the paper)."""
    t = to_fraction(t)
    delta = to_fraction(delta)
    T = to_fraction(T)
    result = (t + delta) % T
    return result


class MachineTimeline:
    """The segments executed by one machine, kept sorted by start time."""

    def __init__(self, machine: int):
        self.machine = machine
        self._segments: List[Segment] = []

    def add(self, segment: Segment) -> None:
        """Insert a segment, rejecting any overlap with existing ones."""
        for existing in self._segments:
            if existing.overlaps(segment):
                raise InvalidScheduleError(
                    f"machine {self.machine}: segment {segment} overlaps {existing}"
                )
        self._segments.append(segment)
        self._segments.sort()

    @property
    def segments(self) -> Tuple[Segment, ...]:
        return tuple(self._segments)

    @property
    def load(self) -> Fraction:
        return sum((s.length for s in self._segments), Fraction(0))

    def busy_at(self, t: Time) -> bool:
        t = to_fraction(t)
        return any(s.start <= t < s.end for s in self._segments)

    def free_intervals(self, T: Time) -> List[Tuple[Fraction, Fraction]]:
        """Maximal idle intervals inside ``[0, T)``."""
        T = to_fraction(T)
        free: List[Tuple[Fraction, Fraction]] = []
        cursor = Fraction(0)
        for seg in self._segments:
            if seg.start > cursor:
                free.append((cursor, seg.start))
            cursor = max(cursor, seg.end)
        if cursor < T:
            free.append((cursor, T))
        return free

    def merged_segments(self) -> List[Segment]:
        """Segments with seamless same-job continuations coalesced."""
        merged: List[Segment] = []
        for seg in self._segments:
            if merged and merged[-1].job == seg.job and merged[-1].end == seg.start:
                merged[-1] = Segment(merged[-1].start, seg.end, seg.job)
            else:
                merged.append(seg)
        return merged

    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self):
        return iter(self._segments)
