"""Exact JSON serialization of schedules and assignments.

Times are stored as ``"num/den"`` strings so round-trips are lossless —
required for replaying schedules through the simulator or re-validating a
stored experiment artifact.  The rational text encoding is the shared one
from :mod:`repro.session.canon`, so schedule payloads and the solve cache
can never disagree on how a Fraction serializes.
"""

from __future__ import annotations

import json
from typing import Dict

from ..core.assignment import Assignment
from ..exceptions import InvalidScheduleError
from ..session.canon import frac_to_str as _frac_to_str
from ..session.canon import str_to_frac as _str_to_frac
from .schedule import Schedule


def schedule_to_dict(schedule: Schedule) -> Dict:
    """A JSON-ready dict with exact rational times."""
    return {
        "T": _frac_to_str(schedule.T),
        "machines": list(schedule.machines),
        "segments": [
            {
                "machine": machine,
                "job": seg.job,
                "start": _frac_to_str(seg.start),
                "end": _frac_to_str(seg.end),
            }
            for machine in schedule.machines
            for seg in schedule.timeline(machine)
        ],
    }


def schedule_from_dict(data: Dict) -> Schedule:
    """Rebuild a schedule; re-checks machine exclusivity on insert."""
    try:
        schedule = Schedule(data["machines"], _str_to_frac(data["T"]))
        for item in data["segments"]:
            schedule.add_segment(
                item["machine"],
                item["job"],
                _str_to_frac(item["start"]),
                _str_to_frac(item["end"]),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidScheduleError(f"malformed schedule document: {exc}") from exc
    return schedule


def schedule_to_json(schedule: Schedule) -> str:
    """Serialize to a JSON string with exact \"num/den\" times."""
    return json.dumps(schedule_to_dict(schedule), indent=2, sort_keys=True)


def schedule_from_json(text: str) -> Schedule:
    """Inverse of :func:`schedule_to_json`; re-validates exclusivity."""
    return schedule_from_dict(json.loads(text))


def assignment_to_dict(assignment: Assignment) -> Dict:
    """JSON-ready mapping ``job -> sorted machine list``."""
    return {str(j): sorted(alpha) for j, alpha in assignment.items()}


def assignment_from_dict(data: Dict) -> Assignment:
    """Inverse of :func:`assignment_to_dict`."""
    return Assignment({int(j): frozenset(machines) for j, machines in data.items()})
