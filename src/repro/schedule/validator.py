"""Exact schedule validity checking — the conditions of Section II.

A schedule is *valid with respect to an assignment* when

1. each job runs only on machines of its affinity mask,
2. no job is processed in parallel with itself,
3. every job receives exactly ``P_j(mask(j))`` units of work,
4. no machine runs two jobs at once, and
5. everything happens inside the horizon ``[0, T]``.

Condition 4 is enforced eagerly by :class:`~repro.schedule.schedule.Schedule`
but re-checked here so the validator stands on its own (e.g. for schedules
deserialized from traces).  All arithmetic is exact.

With the online-arrivals subsystem a sixth condition joins the list:

6. no piece of a job executes before that job's *release time*.

Release feasibility is opt-in via the ``releases`` mapping (offline
schedules have no releases), and :func:`check_releases` is exposed
standalone because admission-layer schedules label *instances* rather than
the 0…n−1 template jobs an :class:`~repro.core.instance.Instance` knows.

Violations are structured: every :class:`ScheduleViolation` carries the
offending ``job``/``machine``/``start``/``end`` and the ``limit`` it broke
next to its rendered ``detail``, and
:meth:`ValidationReport.raise_if_invalid` raises
:class:`~repro.exceptions.ScheduleValidationError` with the full list
attached — callers inspect payloads instead of parsing messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Mapping, Optional, Union

from .._fraction import is_inf, to_fraction
from ..core.assignment import Assignment
from ..core.instance import Instance
from ..exceptions import ScheduleValidationError
from .schedule import Schedule
from .segments import Time


@dataclass(frozen=True)
class ScheduleViolation:
    """One broken validity condition, with its structured evidence.

    ``kind`` names the condition (``mask`` / ``self-parallel`` / ``work`` /
    ``machine-overlap`` / ``horizon`` / ``integrality`` / ``release``);
    ``detail`` is the human rendering.  The optional fields locate the
    offending piece: ``job`` and ``machine`` where applicable, ``start``/
    ``end`` the piece's endpoints, and ``limit`` the bound it violated (the
    horizon, the required work, or the release time).
    """

    kind: str
    detail: str
    job: Optional[int] = None
    machine: Optional[int] = None
    start: Optional[Fraction] = None
    end: Optional[Fraction] = None
    limit: Optional[Fraction] = None

    def as_payload(self) -> dict:
        """The structured fields as a plain dict (log/JSON friendly)."""
        return {
            "kind": self.kind,
            "detail": self.detail,
            "job": self.job,
            "machine": self.machine,
            "start": self.start,
            "end": self.end,
            "limit": self.limit,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] {self.detail}"


@dataclass
class ValidationReport:
    valid: bool
    violations: List[ScheduleViolation] = field(default_factory=list)
    makespan: Fraction = Fraction(0)

    def raise_if_invalid(self) -> None:
        if not self.valid:
            raise ScheduleValidationError(self.violations)


def check_releases(
    schedule: Schedule,
    releases: Mapping[int, Time],
) -> List[ScheduleViolation]:
    """Condition 6 standalone: no piece before its job's release.

    *releases* maps a job id **as it appears in the schedule** to its
    release time — for admission-layer schedules these are instance ids
    (see :meth:`repro.simulation.admission.AdmissionResult.releases`).
    Jobs absent from the mapping are unconstrained (released at 0).
    """
    violations: List[ScheduleViolation] = []
    for job, release in releases.items():
        release = to_fraction(release)
        for machine, seg in schedule.job_segments(job):
            if seg.start < release:
                violations.append(
                    ScheduleViolation(
                        "release",
                        f"job {job} piece [{seg.start},{seg.end}) on machine "
                        f"{machine} starts before its release {release}",
                        job=job,
                        machine=machine,
                        start=seg.start,
                        end=seg.end,
                        limit=release,
                    )
                )
    return violations


def validate_schedule(
    instance: Instance,
    assignment: Assignment,
    schedule: Schedule,
    T: Optional[Time] = None,
    require_integral_times: bool = False,
    releases: Optional[Mapping[int, Time]] = None,
) -> ValidationReport:
    """Check all Section II validity conditions exactly.

    Parameters
    ----------
    T:
        Horizon to check against; defaults to ``schedule.T``.
    require_integral_times:
        The paper assumes preemptions/migrations at integer points.  The
        constructions preserve integrality when ``(x, T)`` is integral, but
        LP-derived fractional horizons legitimately produce fractional
        endpoints, so the check is opt-in.
    releases:
        Optional release times per job (condition 6); jobs absent from the
        mapping are unconstrained.
    """
    horizon = to_fraction(T) if T is not None else schedule.T
    violations: List[ScheduleViolation] = []

    # --- condition 5: horizon ------------------------------------------------
    for machine in schedule.machines:
        for seg in schedule.timeline(machine):
            if seg.start < 0 or seg.end > horizon:
                violations.append(
                    ScheduleViolation(
                        "horizon",
                        f"job {seg.job} on machine {machine} in [{seg.start},{seg.end}) "
                        f"outside [0,{horizon}]",
                        job=seg.job,
                        machine=machine,
                        start=seg.start,
                        end=seg.end,
                        limit=horizon,
                    )
                )

    # --- condition 4: machine exclusivity ------------------------------------
    for machine in schedule.machines:
        segs = sorted(schedule.timeline(machine).segments)
        for a, b in zip(segs, segs[1:]):
            if b.start < a.end:
                violations.append(
                    ScheduleViolation(
                        "machine-overlap",
                        f"machine {machine}: jobs {a.job} and {b.job} overlap "
                        f"at [{b.start},{min(a.end, b.end)})",
                        job=b.job,
                        machine=machine,
                        start=b.start,
                        end=min(a.end, b.end),
                    )
                )

    # --- per-job conditions ---------------------------------------------------
    scheduled_jobs = set(schedule.jobs())
    for job in range(instance.n):
        mask = assignment[job]
        required = instance.p(job, mask)
        if is_inf(required):
            violations.append(
                ScheduleViolation(
                    "mask",
                    f"job {job} assigned to forbidden set {sorted(mask)}",
                    job=job,
                )
            )
            continue
        required = to_fraction(required)
        segments = schedule.job_segments(job)

        # condition 1: mask containment
        for machine, seg in segments:
            if machine not in mask:
                violations.append(
                    ScheduleViolation(
                        "mask",
                        f"job {job} runs on machine {machine} ∉ mask {sorted(mask)}",
                        job=job,
                        machine=machine,
                        start=seg.start,
                        end=seg.end,
                    )
                )

        # condition 2: no parallel self-execution
        ordered = sorted(segments, key=lambda pair: (pair[1].start, pair[1].end))
        for (m1, s1), (m2, s2) in zip(ordered, ordered[1:]):
            if s2.start < s1.end:
                violations.append(
                    ScheduleViolation(
                        "self-parallel",
                        f"job {job} runs simultaneously on machines {m1} and {m2} "
                        f"during [{s2.start},{min(s1.end, s2.end)})",
                        job=job,
                        machine=m2,
                        start=s2.start,
                        end=min(s1.end, s2.end),
                    )
                )

        # condition 3: delivered work
        delivered = sum((seg.length for _m, seg in segments), Fraction(0))
        if delivered != required:
            violations.append(
                ScheduleViolation(
                    "work",
                    f"job {job} received {delivered} units, requires {required}",
                    job=job,
                    limit=required,
                )
            )

        if required > 0 and job not in scheduled_jobs:
            violations.append(
                ScheduleViolation(
                    "work",
                    f"job {job} never scheduled",
                    job=job,
                    limit=required,
                )
            )

    if require_integral_times:
        for machine in schedule.machines:
            for seg in schedule.timeline(machine):
                if seg.start.denominator != 1 or seg.end.denominator != 1:
                    violations.append(
                        ScheduleViolation(
                            "integrality",
                            f"segment [{seg.start},{seg.end}) of job {seg.job} "
                            f"has non-integer endpoints",
                            job=seg.job,
                            machine=machine,
                            start=seg.start,
                            end=seg.end,
                        )
                    )

    # --- condition 6: release feasibility (opt-in) ---------------------------
    if releases:
        violations.extend(check_releases(schedule, releases))

    return ValidationReport(
        valid=not violations,
        violations=violations,
        makespan=schedule.makespan(),
    )
