"""Solver-session layer: one content-addressed solve cache behind every
entry point.

The package splits into the three pieces the ROADMAP's
scheduling-as-a-service item starts from:

* :mod:`repro.session.canon` — the one canonicalization / exact-Fraction
  serialization module (canonical JSON, ``"num/den"`` rational text,
  content keys, the memoized salted code fingerprint);
* :mod:`repro.session.cache` — :class:`SolveCache`, the generic
  content-addressed KV store (SQLite index + JSONL payloads, exact
  round-trip); the sweep runner's ``ResultsStore`` is now a thin
  bookkeeping client on top of it;
* :mod:`repro.session.request` / :mod:`repro.session.session` —
  :class:`SolveRequest` (canonical description of what is being solved) and
  :class:`Session` (the façade owning backend/kernel defaults, the cache,
  and :class:`~repro.lp.stats.SolverStats` aggregation, through which
  ``two_approximation``, ``minimal_fractional_T``, the memory models,
  ``schedule_hierarchical`` templates and batch admission all route).
"""

from .cache import SolveCache
from .canon import (
    FINGERPRINT_SALT_ENV,
    canonical,
    canonical_json,
    code_fingerprint,
    content_key,
    frac_to_str,
    str_to_frac,
)
from .request import SolveRequest, instance_signature
from .session import Session, default_cache, set_default_cache

__all__ = [
    "FINGERPRINT_SALT_ENV",
    "Session",
    "SolveCache",
    "SolveRequest",
    "canonical",
    "canonical_json",
    "code_fingerprint",
    "content_key",
    "default_cache",
    "frac_to_str",
    "instance_signature",
    "set_default_cache",
    "str_to_frac",
]
