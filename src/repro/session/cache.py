"""Content-addressed solve cache: SQLite index + JSONL payloads.

This is the generic storage half of what used to be ``runner/store.py``'s
``ResultsStore`` — promoted to a first-class layer any entry point can
consult, with the sweep bookkeeping left behind as a thin client
(:class:`repro.runner.store.ResultsStore`).  Layout under the root::

    <root>/
      index.sqlite          # entry index: key -> status + run metadata
      payloads/
        <bucket>.jsonl      # one deterministic JSON record per entry

Every entry is addressed by a **content key** — in practice the sha256 of
``(what was solved, canonical params, code fingerprint)`` — and lives in a
named *bucket* (one JSONL file).  Sweep tasks use their experiment id as the
bucket; :class:`repro.session.Session` uses ``solve-*`` buckets, which the
sweep reporter deliberately ignores (`repro report` only assembles
experiment buckets), so one store directory can serve both.

The index/payload split is deliberate and unchanged from the sweep store:

* the JSONL payload holds only *reproducible* content — two runs with the
  same code and params produce byte-identical payload files;
* the SQLite index holds the *measured* side (wall-clock, timestamps) plus
  the fast key lookup that makes a hit O(1).

On-disk compatibility: the schema is the sweep store's ``tasks`` table.
Opening a store written before this split transparently migrates it by
adding the (index-only) ``payload_offset`` column — payload files are never
rewritten, so old stores stay readable and their bytes stay authoritative.
Entries recorded without an offset fall back to a bucket scan on
:meth:`SolveCache.get`.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Any, Dict, Iterator, List, Optional

from .canon import canonical_bytes, canonical_json

_SCHEMA = """
CREATE TABLE IF NOT EXISTS tasks (
    key         TEXT PRIMARY KEY,
    experiment  TEXT NOT NULL,
    params_json TEXT NOT NULL,
    seed        INTEGER,
    fingerprint TEXT NOT NULL,
    status      TEXT NOT NULL,
    elapsed_s   REAL,
    created_at  TEXT NOT NULL DEFAULT (datetime('now')),
    payload_path TEXT,
    payload_offset INTEGER,
    stats_json  TEXT
);
CREATE INDEX IF NOT EXISTS tasks_by_experiment ON tasks (experiment);
CREATE TABLE IF NOT EXISTS failures (
    key         TEXT PRIMARY KEY,
    experiment  TEXT NOT NULL,
    params_json TEXT NOT NULL,
    error_class TEXT NOT NULL,
    message     TEXT NOT NULL,
    traceback   TEXT,
    attempts    INTEGER NOT NULL,
    fingerprint TEXT NOT NULL DEFAULT '',
    elapsed_s   REAL,
    created_at  TEXT NOT NULL DEFAULT (datetime('now'))
);
CREATE INDEX IF NOT EXISTS failures_by_experiment ON failures (experiment);
"""

_FAILURE_COLUMNS = (
    "key", "experiment", "params_json", "error_class", "message",
    "traceback", "attempts", "fingerprint", "elapsed_s", "created_at",
)

_META_COLUMNS = (
    "key", "experiment", "params_json", "seed", "fingerprint",
    "status", "elapsed_s", "created_at", "payload_path",
)


class SolveCache:
    """The on-disk content-addressed store; one writer at a time."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self.payload_dir = os.path.join(self.root, "payloads")
        os.makedirs(self.payload_dir, exist_ok=True)
        self.index_path = os.path.join(self.root, "index.sqlite")
        self._db = sqlite3.connect(self.index_path)
        self._db.executescript(_SCHEMA)
        self._migrate()
        self._db.commit()
        # Payload files this cache object has already appended to cleanly:
        # a torn tail is only possible before our first append, so the
        # newline check runs once per (cache, file).
        self._clean_payloads: set = set()

    def _migrate(self) -> None:
        """Bring an older store's index up to the current schema.

        Schema deltas are index-only columns (``payload_offset`` from the
        store/cache split, ``stats_json`` from the observability layer) or
        whole index-only tables (``failures``, created by the
        ``IF NOT EXISTS`` schema script on open); migrating never touches
        payload bytes.
        """
        columns = {
            row[1] for row in self._db.execute("PRAGMA table_info(tasks)")
        }
        if "payload_offset" not in columns:
            self._db.execute(
                "ALTER TABLE tasks ADD COLUMN payload_offset INTEGER"
            )
        if "stats_json" not in columns:
            self._db.execute("ALTER TABLE tasks ADD COLUMN stats_json TEXT")

    # -- lookup ----------------------------------------------------------

    def has(self, key: str) -> bool:
        row = self._db.execute(
            "SELECT 1 FROM tasks WHERE key = ? AND status = 'done'", (key,)
        ).fetchone()
        return row is not None

    def meta(self, key: str) -> Optional[Dict[str, Any]]:
        row = self._db.execute(
            f"SELECT {', '.join(_META_COLUMNS)} FROM tasks WHERE key = ?",
            (key,),
        ).fetchone()
        if row is None:
            return None
        return dict(zip(_META_COLUMNS, row))

    def buckets(self) -> List[str]:
        rows = self._db.execute(
            "SELECT DISTINCT experiment FROM tasks WHERE status = 'done'"
            " ORDER BY experiment"
        ).fetchall()
        return [r[0] for r in rows]

    def latest_fingerprint(self, bucket: str) -> Optional[str]:
        """Fingerprint of the most recently completed entry of *bucket*."""
        row = self._db.execute(
            "SELECT fingerprint FROM tasks WHERE experiment = ? AND"
            " status = 'done' ORDER BY created_at DESC, rowid DESC LIMIT 1",
            (bucket,),
        ).fetchone()
        return row[0] if row else None

    def done_keys(self, bucket: str) -> Dict[str, str]:
        """Completed keys of *bucket* mapped to their fingerprint."""
        rows = self._db.execute(
            "SELECT key, fingerprint FROM tasks WHERE experiment = ? AND"
            " status = 'done'",
            (bucket,),
        ).fetchall()
        return dict(rows)

    # -- measured-side aggregation (``--profile`` / ``store stats``) ------

    def stats_totals(self, bucket: Optional[str] = None) -> Dict[str, Any]:
        """Aggregated solver counters per bucket, from the index.

        Sums the ``stats_json`` column (``SolverStats.to_json()`` shape)
        over every completed entry that recorded one — entries written
        before the observability layer, or by code paths that do not
        collect stats, simply contribute nothing.  Returns ``bucket →
        SolverStats``.
        """
        from ..lp.stats import SolverStats

        if bucket is None:
            rows = self._db.execute(
                "SELECT experiment, stats_json FROM tasks"
                " WHERE status = 'done' AND stats_json IS NOT NULL"
            )
        else:
            rows = self._db.execute(
                "SELECT experiment, stats_json FROM tasks"
                " WHERE status = 'done' AND stats_json IS NOT NULL"
                " AND experiment = ?",
                (bucket,),
            )
        totals: Dict[str, Any] = {}
        for name, stats_json in rows:
            try:
                payload = json.loads(stats_json)
            except (TypeError, ValueError):
                continue
            if not isinstance(payload, dict):
                continue
            totals.setdefault(name, SolverStats()).add(
                SolverStats.from_json(payload)
            )
        return totals

    def bucket_summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-bucket bookkeeping: entry count, elapsed total, disk usage.

        ``entries``/``elapsed_s``/``with_stats`` come from the index;
        ``payload_bytes`` is the current on-disk size of the bucket's JSONL
        file (0 when missing).
        """
        rows = self._db.execute(
            "SELECT experiment, COUNT(*), COALESCE(SUM(elapsed_s), 0),"
            " COUNT(stats_json) FROM tasks WHERE status = 'done'"
            " GROUP BY experiment ORDER BY experiment"
        ).fetchall()
        summary: Dict[str, Dict[str, Any]] = {}
        for name, entries, elapsed, with_stats in rows:
            path = os.path.join(self.payload_dir, f"{name}.jsonl")
            try:
                payload_bytes = os.path.getsize(path)
            except OSError:
                payload_bytes = 0
            summary[name] = {
                "entries": entries,
                "elapsed_s": float(elapsed),
                "with_stats": with_stats,
                "payload_bytes": payload_bytes,
            }
        return summary

    # -- write -----------------------------------------------------------

    @staticmethod
    def _ends_mid_line(path: str) -> bool:
        """Whether *path* exists, is non-empty, and lacks a final newline.

        That is the signature of a writer killed mid-append: the torn last
        line must be sealed off before new records are appended, or the
        next record would concatenate onto the fragment and *two* results
        would become unreadable instead of zero.
        """
        try:
            size = os.path.getsize(path)
        except OSError:
            return False
        if size == 0:
            return False
        with open(path, "rb") as fh:
            fh.seek(-1, os.SEEK_END)
            return fh.read(1) != b"\n"

    def put(
        self,
        key: str,
        bucket: str,
        record: Dict[str, Any],
        params: Any = None,
        seed: Optional[int] = None,
        fingerprint: str = "",
        elapsed_s: float = 0.0,
        stats: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Persist one entry: canonical JSONL payload line + index row.

        *record* is written in canonical form (sorted keys, exact Fraction
        tags), so re-running the same computation appends byte-identical
        lines.  The measured side — *elapsed_s* and the optional *stats*
        counter dict (``SolverStats.to_json()`` shape) — goes into the
        index only, never into the payload, so recording it cannot perturb
        byte-identity.

        Failures never enter the payload store: a record that carries an
        ``"error"`` field (or a non-``done`` status) is rejected outright —
        failed work belongs in the :meth:`record_failure` ledger, where it
        can be retried, never in the content-addressed cache, where it
        would be served forever.  Conversely a successful ``put`` clears
        any ledger entry for the key: success supersedes failure.
        """
        if "/" in bucket or "\\" in bucket or bucket in ("", ".", ".."):
            raise ValueError(f"bucket name {bucket!r} is not filename-safe")
        if "error" in record or record.get("status") not in (None, "done"):
            raise ValueError(
                "refusing to cache a failed payload (record carries an "
                "'error' field or a non-done status); record failures via "
                "record_failure() instead"
            )
        payload_rel = os.path.join("payloads", f"{bucket}.jsonl")
        payload_path = os.path.join(self.root, payload_rel)
        line = canonical_bytes(record)
        repair_newline = (
            payload_path not in self._clean_payloads
            and self._ends_mid_line(payload_path)
        )
        with open(payload_path, "ab") as fh:
            if repair_newline:
                fh.write(b"\n")
            # O_APPEND writes always land at EOF, but the *reported* initial
            # position is platform-dependent — resolve it explicitly.
            fh.seek(0, os.SEEK_END)
            offset = fh.tell()
            fh.write(line + b"\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._clean_payloads.add(payload_path)
        self._db.execute(
            "INSERT OR REPLACE INTO tasks"
            " (key, experiment, params_json, seed, fingerprint, status,"
            "  elapsed_s, payload_path, payload_offset, stats_json)"
            " VALUES (?, ?, ?, ?, ?, 'done', ?, ?, ?, ?)",
            (
                key,
                bucket,
                canonical_json(params if params is not None else {}),
                seed,
                fingerprint,
                float(elapsed_s),
                payload_rel,
                offset,
                canonical_json(stats) if stats is not None else None,
            ),
        )
        self._db.execute("DELETE FROM failures WHERE key = ?", (key,))
        self._db.commit()

    # -- failure ledger ---------------------------------------------------

    def record_failure(
        self,
        key: str,
        bucket: str,
        error_class: str,
        message: str,
        attempts: int,
        traceback_text: Optional[str] = None,
        params: Any = None,
        fingerprint: str = "",
        elapsed_s: float = 0.0,
    ) -> None:
        """Persist one failed entry in the ``failures`` ledger (index only).

        Called after **every** failed attempt with the cumulative attempt
        count, so the ledger survives a driver crash mid-retry exactly like
        successes survive in ``tasks``: a resumed sweep reads the count
        back and grants only the attempts that remain.  A later successful
        :meth:`put` of the same key deletes the row — the ledger holds
        *open* failures only.
        """
        self._db.execute(
            "INSERT OR REPLACE INTO failures"
            " (key, experiment, params_json, error_class, message,"
            "  traceback, attempts, fingerprint, elapsed_s)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                key,
                bucket,
                canonical_json(params if params is not None else {}),
                error_class,
                message,
                traceback_text,
                int(attempts),
                fingerprint,
                float(elapsed_s),
            ),
        )
        self._db.commit()

    def failure(self, key: str) -> Optional[Dict[str, Any]]:
        row = self._db.execute(
            f"SELECT {', '.join(_FAILURE_COLUMNS)} FROM failures"
            " WHERE key = ?",
            (key,),
        ).fetchone()
        return dict(zip(_FAILURE_COLUMNS, row)) if row is not None else None

    def failure_attempts(self, key: str) -> int:
        """Recorded attempt count for *key* (0 when the ledger has no row)."""
        row = self._db.execute(
            "SELECT attempts FROM failures WHERE key = ?", (key,)
        ).fetchone()
        return int(row[0]) if row else 0

    def clear_failure(self, key: str) -> None:
        self._db.execute("DELETE FROM failures WHERE key = ?", (key,))
        self._db.commit()

    def failures(self, bucket: Optional[str] = None) -> List[Dict[str, Any]]:
        """Open failure-ledger rows, oldest first (optionally one bucket)."""
        sql = f"SELECT {', '.join(_FAILURE_COLUMNS)} FROM failures"
        args: tuple = ()
        if bucket is not None:
            sql += " WHERE experiment = ?"
            args = (bucket,)
        sql += " ORDER BY created_at, rowid"
        return [
            dict(zip(_FAILURE_COLUMNS, row))
            for row in self._db.execute(sql, args).fetchall()
        ]

    def failure_count(self, bucket: Optional[str] = None) -> int:
        if bucket is None:
            row = self._db.execute("SELECT COUNT(*) FROM failures").fetchone()
        else:
            row = self._db.execute(
                "SELECT COUNT(*) FROM failures WHERE experiment = ?", (bucket,)
            ).fetchone()
        return int(row[0])

    # -- read back -------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload record stored under *key*, or ``None`` on a miss.

        Fast path: seek to the offset the index recorded.  Entries written
        by a pre-split store carry no offset and fall back to scanning
        their bucket file — correctness never depends on the offset.
        """
        row = self._db.execute(
            "SELECT experiment, payload_path, payload_offset FROM tasks"
            " WHERE key = ? AND status = 'done'",
            (key,),
        ).fetchone()
        if row is None:
            return None
        bucket, payload_rel, offset = row
        path = (
            os.path.join(self.root, payload_rel)
            if payload_rel
            else os.path.join(self.payload_dir, f"{bucket}.jsonl")
        )
        if offset is not None:
            try:
                with open(path, "rb") as fh:
                    fh.seek(offset)
                    record = json.loads(fh.readline().decode("utf-8"))
                if isinstance(record, dict) and record.get("key") == key:
                    return record
            except (OSError, ValueError):
                pass  # stale offset: fall through to the scan
        for record in self._scan(path):
            if record.get("key") == key:
                return record
        return None

    @staticmethod
    def _scan(path: str) -> Iterator[Dict[str, Any]]:
        """Parseable dict records of one bucket file, torn lines skipped."""
        if not os.path.exists(path):
            return
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write of an uncommitted entry
                if isinstance(record, dict):
                    yield record

    def records(
        self,
        bucket: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Yield stored payload records, restricted to keys in the index.

        A JSONL line whose key is absent from the index (e.g. a crashed run
        that appended the payload but died before committing the index row)
        is skipped — the index is the source of truth for completion.  A
        line that does not even parse (the crash tore the write mid-line)
        is skipped for the same reason: its entry was never committed, so
        resuming re-executes it and appends a clean copy.

        *fingerprint* selects one code generation; the default is each
        bucket's **latest** completed generation, so results produced
        before a code edit never mix into the same report as results
        produced after it.  Pass ``fingerprint="*"`` to see everything.
        """
        buckets = [bucket] if bucket else self.buckets()
        for name in buckets:
            path = os.path.join(self.payload_dir, f"{name}.jsonl")
            done = self.done_keys(name)
            wanted = (
                self.latest_fingerprint(name) if fingerprint is None else fingerprint
            )
            seen: set = set()
            for record in self._scan(path):
                key = record.get("key", "")
                if key in seen or key not in done:
                    continue
                if wanted != "*" and done[key] != wanted:
                    continue
                seen.add(key)
                yield record

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "SolveCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
