"""Canonical serialization shared by every content-addressed layer.

One module owns the three encodings that used to live as private copies in
``runner/store.py`` and ``schedule/serialize.py``:

* **canonical JSON** — :func:`canonical` / :func:`canonical_json` reduce an
  arbitrary parameter structure to a strict-JSON form that is stable across
  processes and runs (dicts sorted, tuples flattened to lists, scalars
  delegated to :func:`repro.analysis.tables.encode_cell`, which tags
  Fractions and non-finite floats exactly);
* **exact rational text** — :func:`frac_to_str` / :func:`str_to_frac`
  round-trip a ``Fraction`` through ``"num/den"`` losslessly (the schedule
  serializer's wire format);
* **content keys** — :func:`content_key` hashes canonical parts into the
  sha256 hex digest that addresses cache entries and sweep tasks, and
  :func:`code_fingerprint` hashes the installed package's sources so a code
  edit invalidates exactly the results produced before it.

``code_fingerprint`` is memoized **per process and per salt**: the directory
walk and file hashing run once, and every subsequent call is a dict lookup.
Setting ``REPRO_FINGERPRINT_SALT`` mixes the salt into the digest — a
deliberate cache-busting lever for tests and operational invalidation — and
each distinct salt value gets its own memo slot, so flipping the salt back
restores the original fingerprint (and with it, cache-hit behavior against
the original generation).
"""

from __future__ import annotations

import hashlib
import json
import os
from fractions import Fraction
from typing import Any, Dict, List

from ..analysis.tables import encode_cell
from ..lp.warm import WarmState

#: Environment variable mixed into :func:`code_fingerprint` when set.
FINGERPRINT_SALT_ENV = "REPRO_FINGERPRINT_SALT"


def canonical(obj: Any) -> Any:
    """Reduce *obj* to a canonical strict-JSON-safe form for hashing/storage.

    Tuples flatten to lists, dicts are emitted sorted; scalars delegate to
    :func:`repro.analysis.tables.encode_cell` — the one place that knows how
    to tag Fractions and non-finite floats exactly and to stringify anything
    else (e.g. a Topology passed programmatically) deterministically.
    """
    if isinstance(obj, WarmState):
        # Belt-and-braces alongside WarmState.__reduce__: carried solver
        # bases are process-local ephemera and must never leak into a
        # cache payload or a content key (stores written by earlier
        # generations would silently stop being byte-compatible).
        raise TypeError(
            "WarmState is process-local solver ephemera and cannot be "
            "canonicalized into cache payloads or content keys"
        )
    if isinstance(obj, dict):
        return {str(k): canonical(obj[k]) for k in sorted(obj, key=str)}
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    return encode_cell(obj)


def canonical_json(obj: Any) -> str:
    """The canonical JSON string of *obj* (stable across processes/runs)."""
    return json.dumps(canonical(obj), sort_keys=True, separators=(",", ":"))


def canonical_bytes(obj: Any) -> bytes:
    """:func:`canonical_json` as UTF-8 — the exact bytes a payload line holds
    (minus the trailing newline)."""
    return canonical_json(obj).encode("utf-8")


def frac_to_str(value: Fraction) -> str:
    """``Fraction`` → ``"num/den"`` (lossless, arbitrary precision)."""
    return f"{value.numerator}/{value.denominator}"


def str_to_frac(text: str) -> Fraction:
    """Inverse of :func:`frac_to_str`; a bare integer string also parses."""
    num, _, den = text.partition("/")
    return Fraction(int(num), int(den or 1))


def content_key(*parts: str) -> str:
    """sha256 hex digest of the newline-joined *parts* — the one content
    addressing scheme used by sweep tasks and solve-cache entries alike."""
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


#: Per-process fingerprint memo, keyed by the salt in effect at call time.
_fingerprints: Dict[str, str] = {}


def _compute_fingerprint(salt: str) -> str:
    """SHA-256 over every ``*.py`` source file of the ``repro`` package."""
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    sources: List[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(filenames):
            if name.endswith(".py"):
                sources.append(os.path.join(dirpath, name))
    for path in sorted(sources):
        digest.update(os.path.relpath(path, root).encode("utf-8"))
        digest.update(b"\0")
        with open(path, "rb") as fh:
            digest.update(fh.read())
        digest.update(b"\0")
    if salt:
        # Only a non-empty salt perturbs the digest: unsalted fingerprints
        # stay byte-compatible with stores written before the salt existed.
        digest.update(b"\0salt\0")
        digest.update(salt.encode("utf-8"))
    return digest.hexdigest()


def code_fingerprint() -> str:
    """The fingerprint of the installed ``repro`` sources (memoized).

    The expensive source walk runs once per (process, salt); repeated calls
    — one per sweep task, one per session solve — are dictionary lookups.
    """
    salt = os.environ.get(FINGERPRINT_SALT_ENV, "")
    cached = _fingerprints.get(salt)
    if cached is None:
        cached = _fingerprints[salt] = _compute_fingerprint(salt)
    return cached
