"""Canonical solve requests — the addressing half of the session layer.

A :class:`SolveRequest` is a hashable, canonical description of *what is
being solved*: ``(algorithm, instance, params)``.  Its content key (plus the
code fingerprint) addresses one slot in the :class:`~repro.session.cache.
SolveCache`; two requests built from equal instances and equal params — in
any process, any order, any ``--jobs`` — produce the same key, which is the
property batch analysis services in the pycpa tradition build their
memoization on.

The instance signature serializes the full mathematical content of an
:class:`~repro.core.instance.Instance` — machine set, laminar family, and
the exact processing-time table (Fractions tagged, ``INF`` preserved) — via
:mod:`repro.session.canon`, so two structurally equal instances hash equal
even when constructed through different code paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from .._fraction import is_inf
from ..core.instance import Instance
from .canon import canonical_json, code_fingerprint, content_key


def instance_signature(instance: Instance) -> Dict[str, Any]:
    """The canonical JSON-ready description of *instance*.

    Sets are emitted as sorted machine lists in a deterministic (size,
    lexicographic) order; each job's processing row lists one entry per
    family set in that same order, with ``INF`` encoded as ``null`` (a pair
    the job may not use) and finite times as exact cells.
    """
    sets: List[List[int]] = sorted(
        (sorted(alpha) for alpha in instance.family.sets),
        key=lambda s: (len(s), s),
    )
    processing = []
    for j in range(instance.n):
        row = []
        for machines in sets:
            p = instance.p(j, frozenset(machines))
            row.append(None if is_inf(p) else p)
        processing.append(row)
    return {
        "machines": sorted(instance.machines),
        "family": sets,
        "processing": processing,
    }


@dataclass(frozen=True)
class SolveRequest:
    """One canonical, content-addressable unit of solver work.

    ``algorithm`` names the entry point (``"minimal_fractional_T"``,
    ``"two_approximation"``, ``"template"``, …); ``params`` holds every
    input that changes the answer — including the backend and kernel, so
    results solved under different solver configurations occupy distinct
    cache slots and each reproduces its own bytes exactly.
    """

    algorithm: str
    instance: Instance
    params: Mapping[str, Any] = field(default_factory=dict)

    @property
    def bucket(self) -> str:
        """Cache bucket name — namespaced so ``repro report`` never
        mistakes session entries for sweep experiment results."""
        return f"solve-{self.algorithm}"

    def canonical(self) -> Dict[str, Any]:
        """The canonical JSON-ready form (before hashing)."""
        return {
            "algorithm": self.algorithm,
            "instance": instance_signature(self.instance),
            "params": dict(self.params),
        }

    def key(self, fingerprint: Optional[str] = None) -> str:
        """Content key of this request under *fingerprint* (default: the
        current :func:`~repro.session.canon.code_fingerprint`)."""
        return content_key(
            self.bucket,
            canonical_json(self.canonical()),
            fingerprint or code_fingerprint(),
        )
