"""The solver session: one façade owning defaults, cache, and counters.

A :class:`Session` is the object every entry point routes through: it owns
the backend/kernel defaults (instead of threading ``backend=`` strings
through call chains), consults one content-addressed
:class:`~repro.session.cache.SolveCache` before every solve, and aggregates
:class:`~repro.lp.stats.SolverStats` — including cache hits/misses — for the
``--profile`` output.

Cache discipline: every cacheable entry point builds a
:class:`~repro.session.request.SolveRequest`, keys it under the current
:func:`~repro.session.canon.code_fingerprint`, and

* on a **hit** decodes the stored payload — byte-identical to what the cold
  solve wrote, Fractions exact — and performs **zero LP solves**;
* on a **miss** runs the cold path inside a stats scope, then records the
  canonical payload so the next identical request (this process or any
  later one) hits.

A fingerprint change (edited code, or a deliberate
``REPRO_FINGERPRINT_SALT``) changes every key, so exactly the stale
generation stops hitting; its records remain in the store for
``records(fingerprint="*")`` forensics.

The future service daemon is a thin wrapper over this class: accept a
request, look it up, solve on miss, stream the payload.
"""

from __future__ import annotations

import time
from fractions import Fraction
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..core.instance import Instance
from ..lp.stats import SolverStats, collect_stats, record
from ..obs.trace import span as trace_span
from .cache import SolveCache
from .canon import code_fingerprint, frac_to_str, str_to_frac
from .request import SolveRequest

#: Process-wide default cache (``repro … --cache PATH`` sets it); ``None``
#: means sessions run uncached unless given a cache explicitly.
_default_cache: Optional[SolveCache] = None


def set_default_cache(cache: Union[SolveCache, str, None]) -> Optional[SolveCache]:
    """Set (and return) the process-default solve cache.

    Accepts an open :class:`SolveCache`, a store directory path, or ``None``
    to clear.  Mirrors :func:`repro.lp.simplex.set_default_kernel` — the CLI
    sets it once and every Session constructed without an explicit cache
    picks it up.
    """
    global _default_cache
    if isinstance(cache, str):
        cache = SolveCache(cache)
    _default_cache = cache
    return cache


def default_cache() -> Optional[SolveCache]:
    return _default_cache


class Session:
    """A reusable solver session: defaults + cache + stats aggregation.

    Parameters
    ----------
    backend:
        LP backend every routed solve uses (``"hybrid"`` default).
    kernel:
        Exact pivoting kernel (``None`` = process default, normally
        ``"revised"``); threaded explicitly, never via global state.
    cache:
        ``None`` (default) uses the process-default cache — which may be
        absent, in which case the session solves cold every time;
        ``False`` disables caching even when a default is set; a path
        string opens (and owns) a store at that directory; an open
        :class:`SolveCache` is used without taking ownership.
    """

    def __init__(
        self,
        backend: str = "hybrid",
        kernel: Optional[str] = None,
        cache: Union[SolveCache, str, None, bool] = None,
    ):
        self.backend = backend
        # Resolve the kernel now: the cache key must name the kernel that
        # actually pivots, not "whatever the process default happens to be".
        if kernel is None:
            from ..lp.simplex import get_default_kernel

            kernel = get_default_kernel()
        self.kernel = kernel
        self._owns_cache = False
        if cache is False:
            self.cache: Optional[SolveCache] = None
        elif cache is None:
            self.cache = default_cache()
        elif isinstance(cache, str):
            self.cache = SolveCache(cache)
            self._owns_cache = True
        else:
            self.cache = cache
        #: Aggregated counters of every solve and cache outcome routed
        #: through this session (the ``--profile`` scope sees them too).
        self.stats = SolverStats()

    # -- plumbing --------------------------------------------------------

    def _config(self) -> Dict[str, Any]:
        """Solver configuration that participates in every cache key."""
        return {"backend": self.backend, "kernel": self.kernel}

    def _solve(
        self,
        request: SolveRequest,
        compute: Callable[[], Any],
        encode: Callable[[Any], Any],
        decode: Callable[[Any], Any],
    ) -> Any:
        """Cache-through execution of one request."""
        cache = self.cache
        with trace_span(
            f"session.{request.algorithm}",
            backend=self.backend,
            kernel=self.kernel,
        ) as session_sp:
            if cache is not None:
                key = request.key()
                stored = cache.get(key)
                if stored is not None:
                    hit = SolverStats(cache_hits=1)
                    self.stats.add(hit)
                    record(hit)
                    if session_sp:
                        session_sp.attrs["cache"] = "hit"
                    return decode(stored["result"])
            if session_sp:
                session_sp.attrs["cache"] = "miss" if cache is not None else "off"
            with collect_stats() as scope:
                start = time.perf_counter()
                value = compute()
                elapsed = time.perf_counter() - start
            self.stats.add(scope)
            if cache is not None:
                miss = SolverStats(cache_misses=1)
                self.stats.add(miss)
                record(miss)
                fingerprint = code_fingerprint()
                cache.put(
                    key,
                    request.bucket,
                    {
                        "key": key,
                        "request": request.canonical(),
                        "fingerprint": fingerprint,
                        "result": encode(value),
                    },
                    params=dict(request.params),
                    fingerprint=fingerprint,
                    elapsed_s=elapsed,
                    stats=scope.to_json(),
                )
            return value

    # -- cacheable entry points ------------------------------------------

    def minimal_fractional_T(self, instance: Instance) -> Fraction:
        """Cached :func:`repro.core.programs.minimal_fractional_T`."""
        from ..core.programs import minimal_fractional_T

        request = SolveRequest("minimal_fractional_T", instance, self._config())
        return self._solve(
            request,
            lambda: minimal_fractional_T(
                instance, backend=self.backend, kernel=self.kernel
            ),
            lambda T: {"T_star": frac_to_str(T)},
            lambda result: str_to_frac(result["T_star"]),
        )

    def two_approximation(
        self,
        instance: Instance,
        verify: bool = True,
        use_pushdown_certificate: bool = False,
    ):
        """Cached :func:`repro.core.approx.two_approximation`.

        The payload stores ``T*``, the integral assignment, and the exact
        schedule; a hit rebuilds the full
        :class:`~repro.core.approx.TwoApproxResult` (the schedule
        deserializer re-checks machine exclusivity on the way in).
        """
        from ..core.approx import TwoApproxResult, two_approximation
        from ..schedule.serialize import (
            assignment_from_dict,
            assignment_to_dict,
            schedule_from_dict,
            schedule_to_dict,
        )

        params = dict(self._config())
        params["verify"] = verify
        params["use_pushdown_certificate"] = use_pushdown_certificate
        request = SolveRequest("two_approximation", instance, params)
        ext = instance.with_singletons()

        def encode(result) -> Dict[str, Any]:
            return {
                "T_lp": frac_to_str(result.T_lp),
                "makespan": frac_to_str(result.makespan),
                "assignment": assignment_to_dict(result.assignment),
                "schedule": schedule_to_dict(result.schedule),
            }

        def decode(result) -> TwoApproxResult:
            return TwoApproxResult(
                instance=ext,
                original=instance,
                T_lp=str_to_frac(result["T_lp"]),
                assignment=assignment_from_dict(result["assignment"]),
                schedule=schedule_from_dict(result["schedule"]),
                makespan=str_to_frac(result["makespan"]),
            )

        return self._solve(
            request,
            lambda: two_approximation(
                instance,
                backend=self.backend,
                verify=verify,
                use_pushdown_certificate=use_pushdown_certificate,
                kernel=self.kernel,
            ),
            encode,
            decode,
        )

    def solve_exact(self, instance: Instance, upper_bound=None, node_limit: int = 2_000_000):
        """Cached :func:`repro.core.exact.solve_exact` (branch-and-bound).

        *upper_bound* participates in the key: it never changes the optimum,
        but it changes ``nodes_explored``, and a payload must stay a pure
        function of its key.
        """
        from ..core.exact import ExactResult, solve_exact
        from ..schedule.serialize import assignment_from_dict, assignment_to_dict

        from .._fraction import to_fraction

        params: Dict[str, Any] = {}
        if upper_bound is not None:
            params["upper_bound"] = frac_to_str(to_fraction(upper_bound))
        request = SolveRequest("solve_exact", instance, params)
        return self._solve(
            request,
            lambda: solve_exact(
                instance, upper_bound=upper_bound, node_limit=node_limit
            ),
            lambda result: {
                "optimum": frac_to_str(result.optimum),
                "assignment": assignment_to_dict(result.assignment),
                "nodes_explored": result.nodes_explored,
            },
            lambda result: ExactResult(
                assignment=assignment_from_dict(result["assignment"]),
                optimum=str_to_frac(result["optimum"]),
                nodes_explored=result["nodes_explored"],
            ),
        )

    def minimal_model1_T(self, instance: Instance, space, budgets) -> Fraction:
        """Cached :func:`repro.core.memory.minimal_model1_T`."""
        from .._fraction import to_fraction
        from ..core.memory import minimal_model1_T

        params = dict(self._config())
        params["space"] = [
            [to_fraction(v) for v in row] for row in space
        ]
        params["budgets"] = {int(i): to_fraction(budgets[i]) for i in budgets}
        request = SolveRequest("minimal_model1_T", instance, params)
        return self._solve(
            request,
            lambda: minimal_model1_T(
                instance, space, budgets, backend=self.backend, kernel=self.kernel
            ),
            lambda T: {"T_star": frac_to_str(T)},
            lambda result: str_to_frac(result["T_star"]),
        )

    def minimal_model2_T(self, instance: Instance, sizes, mu) -> Fraction:
        """Cached :func:`repro.core.memory.minimal_model2_T`."""
        from .._fraction import to_fraction
        from ..core.memory import minimal_model2_T

        params = dict(self._config())
        params["sizes"] = [to_fraction(s) for s in sizes]
        params["mu"] = to_fraction(mu)
        request = SolveRequest("minimal_model2_T", instance, params)
        return self._solve(
            request,
            lambda: minimal_model2_T(
                instance, sizes, mu, backend=self.backend, kernel=self.kernel
            ),
            lambda T: {"T_star": frac_to_str(T)},
            lambda result: str_to_frac(result["T_star"]),
        )

    def template(self, instance: Instance, assignment, T):
        """Cached :func:`repro.core.hierarchical.schedule_hierarchical`.

        The wrap-around template for one planning window is what batch
        admission amortizes — many arrival streams replay one cached
        template (see :meth:`admit_batch`).
        """
        from .._fraction import to_fraction
        from ..core.hierarchical import schedule_hierarchical
        from ..schedule.serialize import (
            assignment_to_dict,
            schedule_from_dict,
            schedule_to_dict,
        )

        T = to_fraction(T)
        params = {
            "assignment": assignment_to_dict(assignment),
            "T": frac_to_str(T),
        }
        request = SolveRequest("template", instance, params)
        return self._solve(
            request,
            lambda: schedule_hierarchical(instance, assignment, T),
            schedule_to_dict,
            schedule_from_dict,
        )

    # schedule_hierarchical routes through the same cached entry point.
    schedule_hierarchical = template

    # -- batch admission -------------------------------------------------

    def admit_batch(
        self,
        instance: Instance,
        assignment,
        T,
        streams: Sequence[Sequence[Any]],
        windows: int,
        topology=None,
        cost_model=None,
    ) -> List[Any]:
        """Run many arrival *streams* against one cached template schedule.

        The template for ``(instance, assignment, T)`` is built (or fetched)
        once through :meth:`template`; its per-job piece decomposition is
        computed once and shared across every stream — the amortization the
        scheduling-as-a-service layer is built around.  Returns one
        :class:`~repro.simulation.admission.AdmissionResult` per stream, in
        order, identical to calling ``admit`` per stream.
        """
        from ..simulation.admission import admit_batch

        template = self.template(instance, assignment, T)
        return admit_batch(
            template, streams, windows, topology=topology, cost_model=cost_model
        )

    # -- lifecycle -------------------------------------------------------

    def profile(self) -> str:
        """The session's aggregated counters, rendered like ``--profile``."""
        return self.stats.render()

    def close(self) -> None:
        """Close the cache if this session opened it (path constructor)."""
        if self._owns_cache and self.cache is not None:
            self.cache.close()
            self.cache = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
