"""SimSo-style execution substrate: topologies, cost models, simulator,
admission-driven online execution."""

from .admission import AdmissionResult, AdmittedInstance, admit
from .costs import CostModel, mask_overhead_budget
from .engine import BudgetReport, check_overhead_budgets, simulate
from .topology import Topology
from .trace import Event, EventKind, ExecutionTrace, JobStats

__all__ = [
    "AdmissionResult",
    "AdmittedInstance",
    "BudgetReport",
    "CostModel",
    "Event",
    "EventKind",
    "ExecutionTrace",
    "JobStats",
    "Topology",
    "admit",
    "check_overhead_budgets",
    "mask_overhead_budget",
    "simulate",
]
