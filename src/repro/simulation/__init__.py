"""SimSo-style execution substrate: topologies, cost models, simulator."""

from .costs import CostModel, mask_overhead_budget
from .engine import BudgetReport, check_overhead_budgets, simulate
from .topology import Topology
from .trace import Event, EventKind, ExecutionTrace, JobStats

__all__ = [
    "BudgetReport",
    "CostModel",
    "Event",
    "EventKind",
    "ExecutionTrace",
    "JobStats",
    "Topology",
    "check_overhead_budgets",
    "mask_overhead_budget",
    "simulate",
]
