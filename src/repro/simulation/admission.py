"""Admission-driven execution: map arriving job instances onto the
wrap-around template schedule.

The paper's constructions produce one *template* — a wrap-around schedule
for the planning window ``[0, T)``.  A real-time system runs that template
window after window; online arrivals decide *which instance* fills each
window's slot.  The admission rule here is the planning-window discipline
of the semi-partitioned literature:

* each arriving instance of job ``j`` queues FIFO behind earlier pending
  instances of the same job;
* at every window boundary ``w·T`` the head of each non-empty queue whose
  release is ``≤ w·T`` is admitted into window ``w`` and executes exactly
  job ``j``'s template slots, shifted by ``w·T``;
* a template slot whose mod-T wrap pushed a piece to the start of the
  window keeps the periodic reading of :mod:`repro.schedule.periodic`: the
  wrapped tail is the admitted instance's seamless continuation at the
  start of window ``w + 1`` (the instance id carries over, exactly as
  ``unroll(relabel=True)`` labels it).

Admission therefore never executes a piece before its release (the window
boundary is ≥ the release by the rule itself — re-checked independently by
:func:`repro.schedule.validator.check_releases`), never runs an instance
parallel to itself (the template doesn't), and reproduces the cyclic
reading *bit-for-bit* when arrivals are zero-offset periodic with period
``T`` — the cross-check the test suite pins.

Response times, tardiness and deadline misses come from
:func:`repro.schedule.metrics.response_stats`; migration costs are charged
through the same :class:`~repro.simulation.costs.CostModel` / topology-zoo
machinery the offline metrics use, so online and offline numbers are
directly comparable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from fractions import Fraction
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..exceptions import InvalidScheduleError
from ..obs.trace import span as trace_span
from ..schedule.arrivals import JobArrival
from ..schedule.metrics import (
    merge_piece_runs,
    priced_cost_of_merged,
    response_stats,
    transitions_of_merged,
)
from ..schedule.periodic import wrapped_tail
from ..schedule.schedule import Schedule
from .costs import CostModel
from .topology import Topology


@dataclass(frozen=True)
class AdmittedInstance:
    """One arrival after admission: where it ran and how it fared."""

    job: int
    index: int
    release: Fraction
    deadline: Fraction
    window: int
    """Planning window the instance was admitted into."""

    instance_id: int
    """Label of this instance in the materialized schedule
    (``job + window·stride`` — the id :func:`repro.schedule.periodic.unroll`
    would give the same window's copy)."""

    start: Fraction
    """First execution instant (≥ release by the admission rule)."""

    completion: Fraction
    migrations: int
    """Wall-clock migrations of this instance in the materialized schedule."""

    priced_overhead: Fraction
    """Migration/preemption overhead charged by the cost model (0 without
    a topology)."""

    @property
    def response_time(self) -> Fraction:
        return self.completion - self.release

    @property
    def waiting_time(self) -> Fraction:
        """Time between release and the admitting window boundary."""
        return self.start - self.release

    @property
    def missed_deadline(self) -> bool:
        return self.completion > self.deadline


@dataclass
class AdmissionResult:
    """Outcome of :func:`admit`: the materialized timeline plus accounting."""

    schedule: Schedule
    """All admitted instances placed over ``[0, (windows+1)·T]`` (the extra
    window holds the last admitted instances' wrapped tails)."""

    admitted: List[AdmittedInstance]
    pending: List[JobArrival]
    """Arrivals released before the last window boundary but never admitted
    — genuine leftover backlog."""

    unreleased: List[JobArrival]
    """Arrivals released only after the last boundary: they never saw an
    admission opportunity, so they count as horizon truncation, not
    backlog."""

    template_T: Fraction
    windows: int
    max_backlog: int
    """Largest number of simultaneously queued instances observed at any
    window boundary (after admitting) — growth means overload."""

    @property
    def miss_count(self) -> int:
        return sum(1 for a in self.admitted if a.missed_deadline)

    @property
    def miss_ratio(self) -> Optional[Fraction]:
        if not self.admitted:
            return None
        return Fraction(self.miss_count, len(self.admitted))

    @property
    def schedulable(self) -> bool:
        """No deadline miss and no leftover backlog — the phase-diagram
        predicate of experiment E18."""
        return self.miss_count == 0 and not self.pending

    def stats(self):
        """Response/tardiness/miss statistics over the admitted instances."""
        return response_stats(self.admitted)

    def instances_of(self, job: int) -> List[AdmittedInstance]:
        return sorted(
            (a for a in self.admitted if a.job == job), key=lambda a: a.index
        )

    def releases(self) -> Dict[int, Fraction]:
        """``instance_id → release`` for the materialized schedule — the
        mapping :func:`repro.schedule.validator.check_releases` consumes."""
        return {a.instance_id: a.release for a in self.admitted}


def witness_within(
    instance,
    T_ref,
    scheduler_class: str = "hierarchical",
    prefilter: bool = True,
    analytic_witness: bool = False,
    node_limit: int = 2_000_000,
):
    """Find a template witness (assignment with makespan ≤ ``T_ref``),
    with an optional analytic pre-filter in front of the exact search.

    The admission layer needs a witness assignment to build its template;
    under overload most candidate workloads have none, and proving that by
    branch-and-bound is the expensive part.  With *prefilter* on, the RTA
    engine (:func:`repro.rta.analytic_schedulable`) runs first:

    * **UNSCHEDULABLE** → return ``None`` without searching.  Sound: the
      verdict refutes a necessary (IP-2) bound, so the search would have
      exhausted its tree and returned ``None`` too.
    * **SCHEDULABLE** with *analytic_witness* → return the engine's
      capacity-verified assignment (zero search, zero LP solves).  By
      Theorem IV.3 it is a genuine witness; it may differ from the one the
      search would pick, so the default keeps the exact search for
      byte-identical templates.
    * otherwise → fall through to
      :func:`repro.core.exact.find_assignment_within` on the restricted
      instance, whose result is identical with and without the pre-filter.

    A :class:`~repro.exceptions.SolverError` from the exact search
    propagates — callers decide whether "gave up" is tabulated.
    """
    from ..baselines.restrictions import (
        restrict_instance,
        restricted_family_for,
    )
    from ..core.exact import find_assignment_within
    from ..exceptions import InvalidFamilyError
    from ..rta import SCHEDULABLE, UNSCHEDULABLE, analytic_schedulable

    with trace_span(
        "sim.prefilter",
        scheduler_class=scheduler_class,
        enabled=prefilter,
    ) as sp:
        if prefilter:
            verdict = analytic_schedulable(instance, scheduler_class, T_ref)
            if sp:
                sp.attrs["verdict"] = verdict.status
            if verdict.status == UNSCHEDULABLE:
                return None
            if analytic_witness and verdict.status == SCHEDULABLE:
                if sp:
                    sp.attrs["fast_path"] = True
                return verdict.assignment
        try:
            sets = restricted_family_for(instance, scheduler_class)
        except InvalidFamilyError:
            return None
        restricted = restrict_instance(instance, sets)
        return find_assignment_within(restricted, T_ref, node_limit=node_limit)


def _template_pieces(
    template: Schedule,
) -> Dict[int, Tuple[List[Tuple[int, Fraction, Fraction]], List[Tuple[int, Fraction, Fraction]]]]:
    """Per job: ``(head pieces, wrapped-tail pieces)`` as machine/start/end.

    Tail detection delegates to :func:`repro.schedule.periodic.wrapped_tail`
    so admission and ``unroll(relabel=True)`` can never disagree on which
    piece wraps.
    """
    pieces = {}
    for job in template.jobs():
        tail = wrapped_tail(template, job)
        tail_ids = {(m, s.start, s.end) for m, s in tail}
        head = [
            (m, s.start, s.end)
            for m, s in template.job_segments(job)
            if (m, s.start, s.end) not in tail_ids
        ]
        pieces[job] = (head, [(m, s.start, s.end) for m, s in tail])
    return pieces


def admit(
    template: Schedule,
    arrivals: Sequence[JobArrival],
    windows: int,
    topology: Optional[Topology] = None,
    cost_model: Optional[CostModel] = None,
    _pieces=None,
) -> AdmissionResult:
    """Run *windows* planning windows of *template* against *arrivals*.

    Arrivals are consumed in ``(release, job, index)`` order; instances of
    one job are admitted FIFO, at most one per window.  Arrivals for jobs
    the template never schedules (zero-work jobs) complete instantly at
    their admitting window boundary.

    With a *topology* (and optional *cost_model*, default
    :meth:`~repro.simulation.costs.CostModel.numa_like`), each admitted
    instance is charged its distance-priced migration overhead.

    *_pieces* is the precomputed :func:`_template_pieces` decomposition —
    :func:`admit_batch` passes it so many streams share one template scan.
    """
    with trace_span(
        "sim.admit", windows=windows, arrivals=len(arrivals)
    ) as admit_sp:
        result = _admit(template, arrivals, windows, topology, cost_model, _pieces)
        if admit_sp:
            admit_sp.attrs["admitted"] = len(result.admitted)
            admit_sp.attrs["pending"] = len(result.pending)
            admit_sp.attrs["max_backlog"] = result.max_backlog
        return result


def _admit(
    template: Schedule,
    arrivals: Sequence[JobArrival],
    windows: int,
    topology: Optional[Topology],
    cost_model: Optional[CostModel],
    _pieces,
) -> AdmissionResult:
    if windows < 1:
        raise InvalidScheduleError(f"need ≥ 1 window, got {windows}")
    T = template.T
    if T <= 0:
        raise InvalidScheduleError("cannot run windows of a zero-horizon template")
    if topology is not None and cost_model is None:
        cost_model = CostModel.numa_like()

    ordered = sorted(arrivals, key=lambda a: (a.release, a.job, a.index))
    for a in ordered:
        if a.job < 0:
            raise InvalidScheduleError(f"arrival for negative job id {a.job}")

    jobs = template.jobs()
    stride = (max(jobs) + 1) if jobs else 1
    max_job = max((a.job for a in ordered), default=-1)
    if max_job >= stride:
        stride = max_job + 1
    pieces = _template_pieces(template) if _pieces is None else _pieces

    result_schedule = Schedule(template.machines, T * (windows + 1))
    queues: Dict[int, Deque[JobArrival]] = {}
    cursor = 0
    max_backlog = 0
    admitted_raw: List[
        Tuple[JobArrival, int, int, List[Tuple[int, Fraction, Fraction]]]
    ] = []

    for w in range(windows):
        boundary = w * T
        while cursor < len(ordered) and ordered[cursor].release <= boundary:
            queues.setdefault(ordered[cursor].job, deque()).append(ordered[cursor])
            cursor += 1
        for job in sorted(queues):
            queue = queues[job]
            if not queue:
                continue
            arrival = queue.popleft()
            instance_id = job + w * stride
            head, tail = pieces.get(job, ([], []))
            placed = []
            for machine, start, end in head:
                result_schedule.add_segment(
                    machine, instance_id, start + boundary, end + boundary
                )
                placed.append((machine, start + boundary, end + boundary))
            for machine, start, end in tail:
                result_schedule.add_segment(
                    machine, instance_id, start + boundary + T, end + boundary + T
                )
                placed.append((machine, start + boundary + T, end + boundary + T))
            admitted_raw.append((arrival, w, instance_id, placed))
        backlog = sum(len(q) for q in queues.values())
        max_backlog = max(max_backlog, backlog)

    admitted: List[AdmittedInstance] = []
    for arrival, w, instance_id, placed in admitted_raw:
        boundary = w * T
        # Accounting works on the instance's own pieces (already in hand)
        # rather than re-scanning the whole materialized schedule — admit()
        # stays linear in total placed pieces.
        merged = merge_piece_runs(placed)
        if merged:
            start = min(s for _m, s, _e in merged)
            completion = max(e for _m, _s, e in merged)
        else:
            start = completion = boundary
        migrations = transitions_of_merged(merged).migrations
        if topology is not None and cost_model is not None:
            overhead = priced_cost_of_merged(merged, topology, cost_model)
        else:
            overhead = Fraction(0)
        admitted.append(
            AdmittedInstance(
                job=arrival.job,
                index=arrival.index,
                release=arrival.release,
                deadline=arrival.deadline,
                window=w,
                instance_id=instance_id,
                start=start,
                completion=completion,
                migrations=migrations,
                priced_overhead=overhead,
            )
        )

    pending = sorted(
        (a for q in queues.values() for a in q),
        key=lambda a: (a.release, a.job, a.index),
    )
    return AdmissionResult(
        schedule=result_schedule,
        admitted=admitted,
        pending=pending,
        unreleased=list(ordered[cursor:]),
        template_T=T,
        windows=windows,
        max_backlog=max_backlog,
    )


def admit_batch(
    template: Schedule,
    streams: Sequence[Sequence[JobArrival]],
    windows: int,
    topology: Optional[Topology] = None,
    cost_model: Optional[CostModel] = None,
) -> List[AdmissionResult]:
    """Admit many independent arrival *streams* against one template.

    The batch entry point of the scheduling-as-a-service layer: the
    template's per-job piece decomposition (the only per-template scan in
    :func:`admit`) is computed **once** and shared, so ``k`` streams cost
    one template analysis plus ``k`` linear admission passes.  Results are
    returned in stream order and are identical to calling :func:`admit`
    per stream — the streams are independent workload scenarios (e.g. the
    arrival-family axis of E18), not one merged arrival set.
    """
    if not streams:
        return []
    if windows < 1:
        raise InvalidScheduleError(f"need ≥ 1 window, got {windows}")
    if template.T <= 0:
        raise InvalidScheduleError("cannot run windows of a zero-horizon template")
    with trace_span(
        "sim.admit_batch", streams=len(streams), windows=windows
    ):
        pieces = _template_pieces(template)
        return [
            admit(
                template, stream, windows,
                topology=topology, cost_model=cost_model, _pieces=pieces,
            )
            for stream in streams
        ]
