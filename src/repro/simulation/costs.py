"""Migration/preemption cost models over a topology.

The paper's modelling assumption is that migration overhead can be folded
into the mask-dependent processing time ``P_j(α)`` (Section I, justified by
the migration bound of Proposition III.2).  A :class:`CostModel` makes the
underlying per-event costs explicit so the execution simulator can charge
them, and :func:`mask_overhead_budget` computes the per-mask overhead the
workload generator folds into ``P_j(α)`` — monotone by construction because
wider masks can only raise the worst migration tier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, Sequence, Tuple, Union

from .._fraction import to_fraction
from ..exceptions import InvalidInstanceError
from .topology import Topology

Time = Union[int, Fraction]


@dataclass(frozen=True)
class CostModel:
    """Per-event overheads, indexed by migration tier.

    ``tier_costs[t]`` is the cost of resuming a job after crossing a
    tier-``t`` domain boundary (tier 1 = same chip, 2 = same node, …);
    index 0 is the cost of resuming on the *same* core (a pure preemption).
    Costs must be non-decreasing in the tier — the paper's premise that
    intra-CMP beats inter-CMP beats inter-node.

    ``distance_rate`` additionally prices each migration proportionally to
    the topology's NUMA distance between the two cores (see
    :meth:`repro.simulation.topology.Topology.distance`): the charged cost
    of a migration is ``tier_costs[tier] + distance_rate · d(a, b)``.  The
    default rate 0 reproduces the pure tier model.
    """

    tier_costs: Tuple[Fraction, ...]
    distance_rate: Fraction = Fraction(0)

    def __post_init__(self):
        costs = tuple(to_fraction(c) for c in self.tier_costs)
        object.__setattr__(self, "tier_costs", costs)
        object.__setattr__(self, "distance_rate", to_fraction(self.distance_rate))
        if any(c < 0 for c in costs):
            raise InvalidInstanceError("costs must be non-negative")
        if any(a > b for a, b in zip(costs, costs[1:])):
            raise InvalidInstanceError(
                "tier costs must be non-decreasing (intra beats inter)"
            )
        if self.distance_rate < 0:
            raise InvalidInstanceError("distance_rate must be non-negative")

    def cost_of_tier(self, tier: int) -> Fraction:
        if tier < len(self.tier_costs):
            return self.tier_costs[tier]
        return self.tier_costs[-1]

    def migration_cost(self, topology: Topology, a: int, b: int) -> Fraction:
        """Cost of moving a job from core *a* to core *b*.

        The tier cost plus the distance-proportional term; on a topology
        without a distance matrix the tier index itself is the distance.
        """
        cost = self.cost_of_tier(topology.migration_tier(a, b))
        if self.distance_rate and a != b:
            cost += self.distance_rate * topology.distance(a, b)
        return cost

    @classmethod
    def xeon_like(cls) -> "CostModel":
        """Default three-tier model shaped like the paper's Xeon example.

        Resume-on-same-core is nearly free; intra-CMP (shared L2) cheap;
        inter-CMP moderate; inter-node expensive.  Units are abstract time
        quanta, chosen so overheads stay small next to unit-scale jobs.
        """
        return cls((Fraction(0), Fraction(1, 10), Fraction(1, 2), Fraction(2)))

    @classmethod
    def numa_like(cls, rate: Union[int, Fraction] = Fraction(1, 4)) -> "CostModel":
        """A distance-dominated model for NUMA topologies.

        A small flat resume cost per tier plus ``rate`` per unit of SLIT
        distance — migrations between far nodes cost proportionally more
        than between near ones even at the same tree tier.
        """
        return cls((Fraction(0), Fraction(1, 10)), distance_rate=to_fraction(rate))


def mask_overhead_budget(
    topology: Topology,
    cost_model: CostModel,
    alpha: Iterable[int],
) -> Fraction:
    """Worst-case migration overhead of running one job inside mask *alpha*.

    In the wrap-around constructions a job's processing line crosses at most
    ``s − 1`` chunk boundaries (``s = |α|``) and wraps past T at most once,
    so it splits into at most ``s + 1`` pieces — at most ``s`` wall-clock
    transitions, each charged at most the mask's widest tier (pure
    preemptions cost the tier-0 rate, which is no larger).  The budget

        s · cost(tier(α)) + cost(0)

    therefore upper-bounds what the simulator can ever charge the job, and
    folding it into ``P_j(α)`` is monotone: supersets have at least the size
    and at least the tier.
    """
    alpha = frozenset(alpha)
    size = len(alpha)
    if size <= 1:
        return cost_model.cost_of_tier(0)
    tier = topology.mask_tier(alpha)
    per_transition = cost_model.cost_of_tier(tier)
    if cost_model.distance_rate:
        # Distance-priced migrations: a transition inside the mask costs at
        # most the tier cost plus the rate times the mask's diameter, and
        # wider masks have at least the diameter — monotone as before.
        per_transition += cost_model.distance_rate * topology.mask_diameter(alpha)
    return size * per_transition + cost_model.cost_of_tier(0)
