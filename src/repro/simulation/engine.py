"""Event-driven execution of a schedule on a hierarchical machine model.

The simulator replays a :class:`~repro.schedule.schedule.Schedule` against a
:class:`~repro.simulation.topology.Topology` and
:class:`~repro.simulation.costs.CostModel`, emitting the event log a real
runtime would produce (start / preempt / resume / migrate / complete) and
charging each transition its tier cost.

Its purpose in the reproduction is to *close the modelling loop*: the paper
claims migration costs can be folded into the mask-dependent processing
times ``P_j(α)``.  :func:`check_overhead_budgets` verifies, schedule by
schedule, that the overhead actually charged to a job never exceeds the
budget ``P_j(α) − base_j`` its mask paid for (with budgets produced by
:func:`repro.simulation.costs.mask_overhead_budget`, this is a theorem-level
invariant: the wrap-around constructions keep each job's transition count
within the budgeted ``|α| − 1`` migrations plus wrap preemption).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .._fraction import to_fraction
from ..core.assignment import Assignment
from ..core.instance import Instance
from ..schedule.schedule import Schedule
from .costs import CostModel, mask_overhead_budget
from .topology import Topology
from .trace import Event, EventKind, ExecutionTrace

Time = Union[int, Fraction]


def simulate(
    schedule: Schedule,
    topology: Topology,
    cost_model: CostModel,
) -> ExecutionTrace:
    """Replay *schedule* and emit the full event trace with charged costs."""
    trace = ExecutionTrace()
    for job in schedule.jobs():
        merged: List[Tuple[int, Fraction, Fraction]] = []
        for machine, seg in schedule.job_segments(job):
            if merged and merged[-1][0] == machine and merged[-1][2] == seg.start:
                merged[-1] = (machine, merged[-1][1], seg.end)
            else:
                merged.append((machine, seg.start, seg.end))
        if not merged:
            continue
        first_machine, first_start, _ = merged[0]
        trace.add(Event(first_start, EventKind.START, job, first_machine))
        for (m1, _s1, e1), (m2, s2, _e2) in zip(merged, merged[1:]):
            if m1 != m2:
                tier = topology.migration_tier(m1, m2)
                cost = cost_model.migration_cost(topology, m1, m2)
                trace.add(Event(e1, EventKind.PREEMPT, job, m1))
                trace.add(
                    Event(
                        s2,
                        EventKind.MIGRATE,
                        job,
                        m2,
                        source_machine=m1,
                        overhead=cost,
                        tier=tier,
                    )
                )
            else:
                trace.add(Event(e1, EventKind.PREEMPT, job, m1))
                trace.add(
                    Event(
                        s2,
                        EventKind.RESUME,
                        job,
                        m2,
                        overhead=cost_model.cost_of_tier(0),
                    )
                )
        last_machine, _s, last_end = merged[-1]
        trace.add(Event(last_end, EventKind.COMPLETE, job, last_machine))
    # At equal timestamps a job's PREEMPT (leaving) precedes the MIGRATE /
    # RESUME it causes; COMPLETE sorts last.
    rank = {
        EventKind.PREEMPT: 0,
        EventKind.MIGRATE: 1,
        EventKind.RESUME: 1,
        EventKind.START: 2,
        EventKind.COMPLETE: 3,
    }
    trace.events.sort(key=lambda e: (e.time, e.job, rank[e.kind]))
    return trace


@dataclass
class BudgetReport:
    """Per-job comparison of charged overhead vs. the mask's budget."""

    job: int
    mask: frozenset
    charged: Fraction
    budget: Fraction

    @property
    def within_budget(self) -> bool:
        return self.charged <= self.budget


def check_overhead_budgets(
    trace: ExecutionTrace,
    instance: Instance,
    assignment: Assignment,
    base_work: Mapping[int, Time],
    topology: Topology,
    cost_model: CostModel,
) -> List[BudgetReport]:
    """Verify charged overheads against ``P_j(α) − base_j`` budgets.

    *base_work[j]* is the pure computation content of job *j* (what it would
    take with zero migrations); the mask's processing time must have been
    generated as ``base + mask_overhead_budget`` (see
    :func:`repro.workloads.generators.instance_from_topology`).
    """
    stats = trace.job_stats()
    reports: List[BudgetReport] = []
    for job, alpha in assignment.items():
        charged = stats[job].overhead if job in stats else Fraction(0)
        p = to_fraction(instance.p(job, alpha))
        budget = p - to_fraction(base_work[job])
        reports.append(BudgetReport(job=job, mask=alpha, charged=charged, budget=budget))
    return reports
