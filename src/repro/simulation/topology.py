"""Hierarchical machine topologies (the paper's SMP-CMP cluster motivation).

The introduction motivates the model with Intel's dual-core Xeon clusters:
communication is cheapest between cores on one chip (intra-CMP), pricier
across chips in a node (inter-CMP), and priciest across nodes (inter-node).
A :class:`Topology` is a laminar *tree* over the cores whose internal levels
are those domains; the cost of migrating a job between two cores is decided
by the smallest set containing both (their lowest common ancestor).

Beyond the tree itself a topology can carry two optional platform vectors:

* a **NUMA distance matrix** (``distances``) giving the per-pair migration
  distance the cost model prices — validated against the metric axioms
  (zero diagonal, symmetry, non-negativity, triangle inequality).  The
  :meth:`Topology.with_tier_distances` builder derives one from per-tier
  distances; because the migration tier is an ultrametric (it is the LCA
  height), any non-decreasing per-tier profile yields a valid metric.
* a **per-core speed vector** (``speeds``) for heterogeneous clusters
  (big.LITTLE-style): workload generators divide base work by the speed of
  the core, so slow cores run jobs longer.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from .._fraction import to_fraction
from ..core.laminar import LaminarFamily, MachineSet
from ..exceptions import InvalidFamilyError, InvalidInstanceError

Num = Union[int, Fraction]


@dataclass(frozen=True)
class Topology:
    """A machine hierarchy: a tree-shaped laminar family with all singletons.

    ``level_names[d]`` names the migration domain at height ``d`` of the
    tree: index 0 is a single core, the last index the whole system.
    ``distances``/``speeds`` are optional platform annotations (see the
    module docstring); both are indexed by position in ``sorted(machines)``.
    """

    family: LaminarFamily
    level_names: Tuple[str, ...]
    distances: Optional[Tuple[Tuple[Fraction, ...], ...]] = None
    speeds: Optional[Tuple[Fraction, ...]] = None

    def __post_init__(self):
        if not self.family.is_tree:
            raise InvalidFamilyError("a topology must be a single tree")
        if not self.family.has_all_singletons:
            raise InvalidFamilyError("a topology must contain every core as a leaf")
        # Migration tiers use the LONGEST distance to a leaf, not
        # LaminarFamily.height (shortest — Model 2's convention): on
        # asymmetric trees the shortest-path height is not monotone under
        # inclusion, which would price a system-wide migration below a
        # strictly more local one.  The longest-path tier is monotone along
        # every chain (identical on uniform trees), which also makes every
        # non-decreasing per-tier distance profile an ultrametric.
        tiers: Dict[MachineSet, int] = {}
        for alpha in self.family.bottom_up():
            kids = self.family.children(alpha)
            tiers[alpha] = 1 + max((tiers[k] for k in kids), default=-1)
        object.__setattr__(self, "_tiers", tiers)
        object.__setattr__(
            self, "_core_index", {c: k for k, c in enumerate(sorted(self.machines))}
        )
        if self.distances is not None:
            object.__setattr__(
                self, "distances", self._validated_distances(self.distances)
            )
        if self.speeds is not None:
            speeds = tuple(to_fraction(s) for s in self.speeds)
            if len(speeds) != self.m:
                raise InvalidInstanceError(
                    f"speed vector has {len(speeds)} entries for {self.m} cores"
                )
            if any(s <= 0 for s in speeds):
                raise InvalidInstanceError("core speeds must be positive")
            object.__setattr__(self, "speeds", speeds)

    def _validated_distances(
        self, matrix: Sequence[Sequence[Num]]
    ) -> Tuple[Tuple[Fraction, ...], ...]:
        m = self.m
        rows = tuple(tuple(to_fraction(v) for v in row) for row in matrix)
        if len(rows) != m or any(len(row) != m for row in rows):
            raise InvalidInstanceError(
                f"distance matrix must be {m}×{m} over the cores"
            )
        for a in range(m):
            if rows[a][a] != 0:
                raise InvalidInstanceError(
                    f"distance matrix diagonal must be zero (d[{a}][{a}] = "
                    f"{rows[a][a]})"
                )
            for b in range(m):
                if rows[a][b] < 0:
                    raise InvalidInstanceError("distances must be non-negative")
                if rows[a][b] != rows[b][a]:
                    raise InvalidInstanceError(
                        f"distance matrix must be symmetric "
                        f"(d[{a}][{b}] ≠ d[{b}][{a}])"
                    )
        for a in range(m):
            for b in range(m):
                for c in range(m):
                    if rows[a][b] > rows[a][c] + rows[c][b]:
                        raise InvalidInstanceError(
                            f"triangle inequality violated: d[{a}][{b}] > "
                            f"d[{a}][{c}] + d[{c}][{b}]"
                        )
        return rows

    @property
    def m(self) -> int:
        return self.family.m

    @property
    def machines(self) -> MachineSet:
        return self.family.machines

    @property
    def num_levels(self) -> int:
        return self.family.num_levels

    @property
    def is_heterogeneous(self) -> bool:
        """Whether cores differ in speed."""
        return self.speeds is not None and len(set(self.speeds)) > 1

    def _index(self, core: int) -> int:
        try:
            return self._core_index[core]
        except KeyError:
            raise InvalidFamilyError(f"unknown core {core}") from None

    def lca(self, a: int, b: int) -> MachineSet:
        """The smallest admissible set containing both cores."""
        containing = self.family.minimal_containing([a, b])
        assert containing is not None  # the root contains everything
        return containing

    def migration_tier(self, a: int, b: int) -> int:
        """0 for a = b, else the tier of the LCA domain (1 = same chip…).

        The tier is the longest distance from the domain to a leaf of the
        tree — monotone under inclusion even on asymmetric trees (see
        ``__post_init__``); on uniform trees it equals the family height.
        """
        if a == b:
            return 0
        return self._tiers[self.lca(a, b)]

    def distance(self, a: int, b: int) -> Fraction:
        """NUMA distance between two cores.

        The annotated matrix when present, else the migration tier itself
        (an ultrametric, hence a valid default distance).
        """
        if self.distances is not None:
            return self.distances[self._index(a)][self._index(b)]
        return Fraction(self.migration_tier(a, b))

    def speed(self, core: int) -> Fraction:
        """Relative speed of a core (1 on homogeneous platforms)."""
        if self.speeds is None:
            return Fraction(1)
        return self.speeds[self._index(core)]

    def tier_name(self, tier: int) -> str:
        if tier < len(self.level_names):
            return self.level_names[tier]
        return f"level-{tier}"

    def mask_tier(self, alpha: Iterable[int]) -> int:
        """The tier of a mask — the widest migration domain it spans."""
        alpha = frozenset(alpha)
        if alpha not in self.family:
            raise InvalidFamilyError(f"{sorted(alpha)} is not a topology domain")
        return self._tiers[alpha]

    def mask_diameter(self, alpha: Iterable[int]) -> Fraction:
        """Largest pairwise distance inside a mask (0 for singletons)."""
        members = sorted(frozenset(alpha))
        return max(
            (self.distance(a, b) for a in members for b in members),
            default=Fraction(0),
        )

    # ------------------------------------------------------------------
    # Derived topologies
    # ------------------------------------------------------------------

    def with_tier_distances(self, tier_distances: Sequence[Num]) -> "Topology":
        """Annotate with a NUMA matrix derived from per-tier distances.

        ``tier_distances[t]`` is the distance of a tier-``t`` migration
        (index 0 is same-core and must be 0); tiers beyond the profile reuse
        its last entry.  The profile must be non-decreasing, which makes the
        derived matrix an ultrametric and hence a metric.
        """
        profile = [to_fraction(d) for d in tier_distances]
        if not profile or profile[0] != 0:
            raise InvalidInstanceError("tier_distances[0] must exist and be 0")
        if any(x > y for x, y in zip(profile, profile[1:])):
            raise InvalidInstanceError(
                "tier distances must be non-decreasing (intra beats inter)"
            )
        cores = sorted(self.machines)
        matrix = tuple(
            tuple(
                profile[min(self.migration_tier(a, b), len(profile) - 1)]
                for b in cores
            )
            for a in cores
        )
        return Topology(self.family, self.level_names, matrix, self.speeds)

    def with_speeds(self, speeds: Union[Sequence[Num], Mapping[int, Num]]) -> "Topology":
        """Annotate with a per-core speed vector (heterogeneous platform)."""
        cores = sorted(self.machines)
        if isinstance(speeds, Mapping):
            vector = tuple(to_fraction(speeds[i]) for i in cores)
        else:
            vector = tuple(to_fraction(s) for s in speeds)
        return Topology(self.family, self.level_names, self.distances, vector)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------

    @classmethod
    def flat(cls, m: int) -> "Topology":
        """A single shared domain of *m* symmetric cores."""
        family = LaminarFamily.semi_partitioned(m)
        names = ("core",) if m == 1 else ("core", "system")
        return cls(family, names)

    @classmethod
    def clustered(cls, m: int, cluster_size: int) -> "Topology":
        """Cores grouped into equal clusters (chips) under one system."""
        family = LaminarFamily.clustered(m, cluster_size)
        names: List[str] = ["core"]
        if 1 < cluster_size < m:
            names.append("chip")
        if m > 1:
            names.append("system")
        return cls(family, tuple(names))

    @classmethod
    def smp_cmp(
        cls,
        nodes: int,
        chips_per_node: int,
        cores_per_chip: int,
    ) -> "Topology":
        """The paper's SMP-CMP cluster: nodes × chips × cores.

        Yields a 4-level family: cores ⊂ chips ⊂ nodes ⊂ system.  Degenerate
        dimensions collapse automatically (a count of 1 merges adjacent
        levels), and ``level_names`` is derived from the *deduplicated*
        family heights so ``tier_name`` always matches the surviving level:
        a collapsed level keeps the singleton name ``core`` at the bottom,
        the name ``system`` at the top, and the innermost of ``chip``/
        ``node`` in between.
        """
        if min(nodes, chips_per_node, cores_per_chip) < 1:
            raise InvalidFamilyError("all topology dimensions must be ≥ 1")
        m = nodes * chips_per_node * cores_per_chip
        all_sets = {frozenset(range(m))}
        core = 0
        for _node in range(nodes):
            node_members: List[int] = []
            for _chip in range(chips_per_node):
                chip_members = list(range(core, core + cores_per_chip))
                core += cores_per_chip
                node_members.extend(chip_members)
                all_sets.add(frozenset(chip_members))
            all_sets.add(frozenset(node_members))
        for i in range(m):
            all_sets.add(frozenset([i]))
        # One name per *distinct* level size = per surviving tree height.
        # Later entries win a size collision: a chip that coincides with its
        # node keeps the innermost name "chip", the full system always keeps
        # "system", and a single core is always "core".
        size_names: Dict[int, str] = {}
        size_names[cores_per_chip * chips_per_node] = "node"
        size_names[cores_per_chip] = "chip"
        size_names[m] = "system"
        size_names[1] = "core"
        names = tuple(
            size_names[size]
            for size in sorted({1, cores_per_chip,
                               cores_per_chip * chips_per_node, m})
        )
        family = LaminarFamily(range(m), all_sets)
        return cls(family, names)

    @classmethod
    def binary(cls, depth: int) -> "Topology":
        """A complete binary hierarchy with ``2**depth`` cores."""
        if depth < 1:
            raise InvalidFamilyError("depth must be ≥ 1")
        m = 2 ** depth
        sets: List[FrozenSet[int]] = []
        width = m
        while width >= 1:
            for start in range(0, m, width):
                sets.append(frozenset(range(start, start + width)))
            width //= 2
        family = LaminarFamily(range(m), set(sets))
        names = tuple(["core"] + [f"l{d}" for d in range(1, depth)] + ["system"])
        return cls(family, names)

    @classmethod
    def numa(
        cls,
        nodes: int,
        cores_per_node: int,
        near: Num = 1,
        far: Num = 4,
    ) -> "Topology":
        """A NUMA platform: node-local migrations at distance *near*,
        cross-node at *far* (the SLIT-table shape, e.g. 10/21 scaled)."""
        if nodes < 1 or cores_per_node < 1:
            raise InvalidFamilyError("nodes and cores_per_node must be ≥ 1")
        topo = cls.clustered(nodes * cores_per_node, cores_per_node)
        profile: List[Num] = [0, near]
        if nodes > 1 and cores_per_node > 1:
            profile.append(far)
        elif nodes > 1:
            profile = [0, far]
        return topo.with_tier_distances(profile)

    @classmethod
    def heterogeneous(
        cls,
        cluster_speeds: Sequence[Num],
        cores_per_cluster: int,
    ) -> "Topology":
        """A big.LITTLE-style platform: equal clusters, per-cluster speeds.

        ``cluster_speeds[c]`` is the speed of every core in cluster *c*
        (e.g. ``(2, 1)`` = one fast chip, one slow chip).
        """
        if cores_per_cluster < 1 or not cluster_speeds:
            raise InvalidFamilyError("need ≥ 1 cluster and ≥ 1 core each")
        m = len(cluster_speeds) * cores_per_cluster
        topo = cls.clustered(m, cores_per_cluster)
        speeds = [s for s in cluster_speeds for _ in range(cores_per_cluster)]
        return topo.with_speeds(speeds)

    @classmethod
    def asymmetric(cls, nested) -> "Topology":
        """An asymmetric tree from nested core lists.

        ``Topology.asymmetric([[0, 1], [[2, 3], [4, 5]]])`` builds a system
        whose left node is a bare chip and whose right node holds two chips
        — heights differ per branch.  Level names are generic (``core``,
        ``l1``, …, ``system``) because asymmetric levels have no uniform
        architectural reading.
        """
        family = LaminarFamily.from_nested(nested)
        # The root's longest distance to a leaf = the topmost tier index.
        tiers: Dict[MachineSet, int] = {}
        for alpha in family.bottom_up():
            kids = family.children(alpha)
            tiers[alpha] = 1 + max((tiers[k] for k in kids), default=-1)
        top = tiers[frozenset(family.machines)]
        names = ["core"] + [f"l{d}" for d in range(1, top)] + (
            ["system"] if top >= 1 else []
        )
        return cls(family, tuple(names))
