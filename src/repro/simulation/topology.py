"""Hierarchical machine topologies (the paper's SMP-CMP cluster motivation).

The introduction motivates the model with Intel's dual-core Xeon clusters:
communication is cheapest between cores on one chip (intra-CMP), pricier
across chips in a node (inter-CMP), and priciest across nodes (inter-node).
A :class:`Topology` is a laminar *tree* over the cores whose internal levels
are those domains; the cost of migrating a job between two cores is decided
by the smallest set containing both (their lowest common ancestor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..core.laminar import LaminarFamily, MachineSet
from ..exceptions import InvalidFamilyError


@dataclass(frozen=True)
class Topology:
    """A machine hierarchy: a tree-shaped laminar family with all singletons.

    ``level_names[d]`` names the migration domain at height ``d`` of the
    tree: index 0 is a single core, the last index the whole system.
    """

    family: LaminarFamily
    level_names: Tuple[str, ...]

    def __post_init__(self):
        if not self.family.is_tree:
            raise InvalidFamilyError("a topology must be a single tree")
        if not self.family.has_all_singletons:
            raise InvalidFamilyError("a topology must contain every core as a leaf")

    @property
    def m(self) -> int:
        return self.family.m

    @property
    def machines(self) -> MachineSet:
        return self.family.machines

    @property
    def num_levels(self) -> int:
        return self.family.num_levels

    def lca(self, a: int, b: int) -> MachineSet:
        """The smallest admissible set containing both cores."""
        containing = self.family.minimal_containing([a, b])
        assert containing is not None  # the root contains everything
        return containing

    def migration_tier(self, a: int, b: int) -> int:
        """0 for a = b, else the height of the LCA domain (1 = same chip…)."""
        if a == b:
            return 0
        return self.family.height(self.lca(a, b))

    def tier_name(self, tier: int) -> str:
        if tier < len(self.level_names):
            return self.level_names[tier]
        return f"level-{tier}"

    def mask_tier(self, alpha: Iterable[int]) -> int:
        """The height of a mask — the widest migration domain it spans."""
        alpha = frozenset(alpha)
        if alpha not in self.family:
            raise InvalidFamilyError(f"{sorted(alpha)} is not a topology domain")
        return self.family.height(alpha)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------

    @classmethod
    def flat(cls, m: int) -> "Topology":
        """A single shared domain of *m* symmetric cores."""
        family = LaminarFamily.semi_partitioned(m)
        return cls(family, ("core", "system"))

    @classmethod
    def clustered(cls, m: int, cluster_size: int) -> "Topology":
        """Cores grouped into equal clusters (chips) under one system."""
        family = LaminarFamily.clustered(m, cluster_size)
        return cls(family, ("core", "chip", "system"))

    @classmethod
    def smp_cmp(
        cls,
        nodes: int,
        chips_per_node: int,
        cores_per_chip: int,
    ) -> "Topology":
        """The paper's SMP-CMP cluster: nodes × chips × cores.

        Yields a 4-level family: cores ⊂ chips ⊂ nodes ⊂ system (degenerate
        levels collapse automatically when a count is 1).
        """
        if min(nodes, chips_per_node, cores_per_chip) < 1:
            raise InvalidFamilyError("all topology dimensions must be ≥ 1")
        m = nodes * chips_per_node * cores_per_chip
        sets: List[FrozenSet[int]] = [frozenset(range(m))]
        names: List[str] = ["core"]
        core = 0
        node_sets: List[FrozenSet[int]] = []
        chip_sets: List[FrozenSet[int]] = []
        for _node in range(nodes):
            node_members: List[int] = []
            for _chip in range(chips_per_node):
                chip_members = list(range(core, core + cores_per_chip))
                core += cores_per_chip
                node_members.extend(chip_members)
                chip_sets.append(frozenset(chip_members))
            node_sets.append(frozenset(node_members))
        if cores_per_chip > 1:
            names.append("chip")
        if chips_per_node > 1:
            names.append("node")
        names.append("system")
        all_sets = set(sets)
        for s in chip_sets + node_sets:
            all_sets.add(s)
        for i in range(m):
            all_sets.add(frozenset([i]))
        family = LaminarFamily(range(m), all_sets)
        return cls(family, tuple(names))

    @classmethod
    def binary(cls, depth: int) -> "Topology":
        """A complete binary hierarchy with ``2**depth`` cores."""
        if depth < 1:
            raise InvalidFamilyError("depth must be ≥ 1")
        m = 2 ** depth
        sets: List[FrozenSet[int]] = []
        width = m
        while width >= 1:
            for start in range(0, m, width):
                sets.append(frozenset(range(start, start + width)))
            width //= 2
        family = LaminarFamily(range(m), set(sets))
        names = tuple(["core"] + [f"l{d}" for d in range(1, depth)] + ["system"])
        return cls(family, names)
