"""Execution traces: the event log produced by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from fractions import Fraction
from typing import Dict, List, Optional, Tuple


class EventKind(Enum):
    """The five event types a runtime observes (see the paper's §I)."""

    START = "start"
    PREEMPT = "preempt"
    RESUME = "resume"
    MIGRATE = "migrate"
    COMPLETE = "complete"


@dataclass(frozen=True)
class Event:
    time: Fraction
    kind: EventKind
    job: int
    machine: int
    """Machine the event happens on (target machine for MIGRATE)."""

    source_machine: Optional[int] = None
    """For MIGRATE: where the job came from."""

    overhead: Fraction = Fraction(0)
    """Cost charged for this event by the cost model."""

    tier: Optional[int] = None
    """Migration tier for MIGRATE events (1 = intra-chip, …)."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = f"t={self.time} {self.kind.value} job {self.job} @m{self.machine}"
        if self.kind is EventKind.MIGRATE:
            base += f" (from m{self.source_machine}, tier {self.tier})"
        if self.overhead:
            base += f" [+{self.overhead}]"
        return base


@dataclass
class JobStats:
    job: int
    migrations: int = 0
    preemptions: int = 0
    overhead: Fraction = Fraction(0)
    completion: Fraction = Fraction(0)
    work: Fraction = Fraction(0)

    @property
    def transitions(self) -> int:
        return self.migrations + self.preemptions


@dataclass
class ExecutionTrace:
    events: List[Event] = field(default_factory=list)

    def add(self, event: Event) -> None:
        self.events.append(event)

    def for_job(self, job: int) -> List[Event]:
        return [e for e in self.events if e.job == job]

    def job_stats(self) -> Dict[int, JobStats]:
        stats: Dict[int, JobStats] = {}
        for event in self.events:
            s = stats.setdefault(event.job, JobStats(event.job))
            if event.kind is EventKind.MIGRATE:
                s.migrations += 1
            elif event.kind is EventKind.PREEMPT:
                s.preemptions += 1
            if event.kind is EventKind.COMPLETE:
                s.completion = event.time
            s.overhead += event.overhead
        return stats

    @property
    def total_migrations(self) -> int:
        return sum(1 for e in self.events if e.kind is EventKind.MIGRATE)

    @property
    def total_preemptions(self) -> int:
        return sum(1 for e in self.events if e.kind is EventKind.PREEMPT)

    @property
    def total_overhead(self) -> Fraction:
        return sum((e.overhead for e in self.events), Fraction(0))

    def tier_histogram(self) -> Dict[int, int]:
        """Migration counts per tier — the paper's intra/inter breakdown."""
        histogram: Dict[int, int] = {}
        for e in self.events:
            if e.kind is EventKind.MIGRATE and e.tier is not None:
                histogram[e.tier] = histogram.get(e.tier, 0) + 1
        return histogram

    def render(self, limit: int = 50) -> str:  # pragma: no cover - cosmetic
        lines = [str(e) for e in sorted(self.events, key=lambda e: (e.time, e.job))]
        if len(lines) > limit:
            lines = lines[:limit] + [f"... ({len(lines) - limit} more events)"]
        return "\n".join(lines)
