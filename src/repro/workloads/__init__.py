"""Workload generators: random instances, topologies, adversarial families."""

from .adversarial import (
    BIG,
    example_ii1,
    example_ii1_optimal_assignment,
    example_v1,
    example_v1_gap,
    example_v1_optimal_assignment,
    lp_gap_instance,
)
from .generators import (
    derive_seed,
    instance_from_topology,
    monotone_instance,
    random_feasible_pair,
    random_hierarchical,
    random_laminar_family,
    random_semi_partitioned,
    rng_from_seed,
    scale_to_utilization,
)

__all__ = [
    "BIG",
    "example_ii1",
    "example_ii1_optimal_assignment",
    "example_v1",
    "example_v1_gap",
    "derive_seed",
    "example_v1_optimal_assignment",
    "instance_from_topology",
    "lp_gap_instance",
    "monotone_instance",
    "random_feasible_pair",
    "random_hierarchical",
    "random_laminar_family",
    "random_semi_partitioned",
    "rng_from_seed",
    "scale_to_utilization",
]
