"""The paper's worked examples and adversarial instance families.

* :func:`example_ii1` — Example II.1/III.1: two pinned specialists plus one
  flexible job; hierarchical optimum 2, unrelated collapse optimum 3.
* :func:`example_v1` — Example V.1: the family showing the integral gap
  between a semi-partitioned instance ``I`` and its unrelated collapse
  ``Iu`` approaches 2 (``opt(I) = n−1`` vs ``opt(Iu) = 2n−3``).
* :func:`lp_gap_instance` — the classic ``R||Cmax`` LP integrality-gap
  construction (one long job split across machines by the LP), used in E13.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Tuple

from .._fraction import INF
from ..core.assignment import Assignment
from ..core.instance import Instance
from ..exceptions import InvalidInstanceError

#: The "sufficiently large constant" of Example II.1 — any value that can
#: never be part of an optimal schedule works; INF masks the pair entirely.
BIG = 10**6


def example_ii1(use_inf: bool = True) -> Instance:
    """Example II.1: 3 jobs, 2 machines, semi-partitioned family.

    Job 0 must run on machine 0 (time 1), job 1 on machine 1 (time 1), job 2
    takes 2 anywhere.  Semi-partitioned optimum 2; unrelated collapse 3.
    """
    big = INF if use_inf else BIG
    return Instance.semi_partitioned(
        p_local=[[1, big], [big, 1], [2, 2]],
        p_global=[big, big, 2],
    )


def example_ii1_optimal_assignment() -> Tuple[Assignment, int]:
    """The optimal assignment of Example III.1 and its makespan 2."""
    root = frozenset({0, 1})
    return Assignment({0: frozenset({0}), 1: frozenset({1}), 2: root}), 2


def example_v1(n: int, use_inf: bool = True) -> Instance:
    """Example V.1 with *n* jobs and ``m = n − 1`` machines.

    Job ``j < n−1`` runs only on machine ``j`` (time ``n−2``); job ``n−1``
    takes ``n−1`` anywhere.  ``opt(I) = n−1`` while the unrelated collapse
    has ``opt(Iu) = 2n−3`` — a ratio approaching 2.
    """
    if n < 3:
        raise InvalidInstanceError("Example V.1 needs n ≥ 3")
    m = n - 1
    big = INF if use_inf else BIG
    p_local = []
    for j in range(n - 1):
        row = [big] * m
        row[j] = n - 2
        p_local.append(row)
    p_local.append([n - 1] * m)
    p_global = [big] * (n - 1) + [n - 1]
    return Instance.semi_partitioned(p_local=p_local, p_global=p_global)


def example_v1_optimal_assignment(n: int) -> Tuple[Assignment, int]:
    """The paper's optimal solution of Example V.1: makespan ``n − 1``."""
    m = n - 1
    masks: Dict[int, frozenset] = {j: frozenset({j}) for j in range(n - 1)}
    masks[n - 1] = frozenset(range(m))
    return Assignment(masks), n - 1


def example_v1_gap(n: int) -> Fraction:
    """The predicted gap ``opt(Iu)/opt(I) = (2n−3)/(n−1)`` (→ 2)."""
    return Fraction(2 * n - 3, n - 1)


def lp_gap_instance(m: int) -> Instance:
    """The standard ``R||Cmax`` integrality-gap family (gap → 2).

    One job of length ``m`` runnable anywhere plus ``m·(m−1)`` unit jobs
    pinned round-robin.  The LP spreads the long job (``T* close to m``
    …actually ``T* = m``), while any integral schedule must put it whole on
    one machine on top of that machine's units.
    """
    if m < 2:
        raise InvalidInstanceError("need m ≥ 2")
    matrix = [[m] * m]  # the long job
    for i in range(m):
        for _ in range(m - 1):
            row = [INF] * m
            row[i] = 1
            matrix.append(row)
    return Instance.unrelated(matrix)
