"""Parametric workload families and the topology zoo (scenario diversity).

Every family is a generator ``f(rng, topology, n) -> Instance`` registered
in :data:`FAMILIES`; :data:`TOPOLOGIES` is the matching zoo of platform
shapes (flat, clustered, SMP-CMP, NUMA-annotated, heterogeneous,
asymmetric).  Experiment E17 sweeps the cartesian product; the table in
EXPERIMENTS.md records which family stresses which code path.

The families deliberately leave the happy path of the random generators in
:mod:`repro.workloads.generators`:

* ``density``/``near_critical`` control total volume relative to capacity —
  bin-packing fragmentation appears as density → 1;
* ``aligned``/``misaligned`` place each job's cheap cores either inside one
  topology domain or on a transversal across sibling domains, so the same
  platform looks friendly or hostile to clustered/semi-partitioned masks;
* ``heavy_tailed`` draws Pareto job sizes — a few giants dominating the
  makespan, the regime where McNaughton wrap-around placement matters;
* ``heterogeneous`` divides base work by per-core speeds (big.LITTLE),
  turning even identical jobs into unrelated-machine instances.

:func:`fallback_stress_program` is different in kind: it builds raw
assignment + packing programs (not scheduling instances) whose unique LP
vertex is locked on an odd cycle of tight rows, engineered so Lemma VI.2's
*certified* drop rules fail to fire once the declared ρ is scaled below the
true column bound — the only regime in which the fallback drop in
:mod:`repro.rounding.iterative` is reachable at all (see the completeness
argument in that module's docstring).  Experiment E16 sweeps ``rho_scale``
to map the resulting phase diagram: certified drops only → fallback drops
with the (1+ρ) bound still met → structured certification failure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, Hashable, List, Sequence, Tuple

import numpy as np

from .._fraction import to_fraction
from ..core.instance import Instance
from ..core.laminar import LaminarFamily, MachineSet
from ..exceptions import InvalidInstanceError
from ..rounding.iterative import PackingRow, column_rho
from ..simulation.costs import CostModel, mask_overhead_budget
from ..simulation.topology import Topology
from .generators import derive_seed, rng_from_seed, utilization_workload

FamilyFn = Callable[[np.random.Generator, Topology, int], Instance]


# ---------------------------------------------------------------------------
# The topology zoo
# ---------------------------------------------------------------------------

#: Named platform shapes for E17 (small enough for exact restricted solves).
TOPOLOGIES: Dict[str, Callable[[], Topology]] = {
    "flat4": lambda: Topology.flat(4),
    "clustered4x2": lambda: Topology.clustered(4, 2),
    "smp2x2x2": lambda: Topology.smp_cmp(2, 2, 2),
    "numa2x2": lambda: Topology.numa(2, 2, near=1, far=4),
    "hetero2x2": lambda: Topology.heterogeneous((2, 1), 2),
    "asym6": lambda: Topology.asymmetric([[0, 1], [[2, 3], [4, 5]]]),
}


def make_topology(name: str) -> Topology:
    try:
        return TOPOLOGIES[name]()
    except KeyError:
        raise InvalidInstanceError(
            f"unknown topology {name!r}; known: {sorted(TOPOLOGIES)}"
        ) from None


# ---------------------------------------------------------------------------
# Instance families
# ---------------------------------------------------------------------------


def _bottom_up_instance(
    family: LaminarFamily,
    singleton_times: Sequence[Sequence[int]],
    increments: Sequence[Sequence[int]] = (),
) -> Instance:
    """Monotone instance from singleton rows (+ optional per-level bumps).

    ``increments[j][h]`` (when given) is added to job *j*'s time on every
    set of height ``h`` relative to the max of its children — the standard
    bottom-up construction every generator in this package uses.
    """
    machine_pos = {i: k for k, i in enumerate(sorted(family.machines))}
    n = len(singleton_times)
    processing: Dict[int, Dict[MachineSet, int]] = {j: {} for j in range(n)}
    for alpha in family.bottom_up():
        h = family.height(alpha)
        for j in range(n):
            if len(alpha) == 1:
                (i,) = tuple(alpha)
                processing[j][alpha] = singleton_times[j][machine_pos[i]]
            else:
                below = max(processing[j][beta] for beta in family.children(alpha))
                bump = 0
                if increments and h < len(increments[j]):
                    bump = increments[j][h]
                processing[j][alpha] = below + bump
    return Instance(family, processing, validate=False)


def density_instance(
    rng: np.random.Generator,
    topology: Topology,
    n: int,
    density: float = 0.8,
    T_ref: int = 24,
) -> Instance:
    """Volume-controlled random workload: total cheapest work ≈ density·m·T.

    *n* only scales the reference horizon (jobs are drawn until the volume
    target is met); densities near 1 drive every scheduler class toward its
    fragmentation cliff (the E15 phenomenon, now sweepable per topology).
    """
    return utilization_workload(rng, topology.family, density, T_ref)


def aligned_instance(
    rng: np.random.Generator,
    topology: Topology,
    n: int,
    base_range: Tuple[int, int] = (4, 12),
    penalty: int = 6,
) -> Instance:
    """Mask-structured jobs whose cheap cores fill one topology domain.

    Each job draws a non-singleton domain α of the topology and is cheap
    exactly on α's cores: clustered and hierarchical masks capture the
    whole cheap set at tier cost ≈ 0, so this is the friendly regime.
    """
    domains = [a for a in topology.family.sets if len(a) > 1]
    if not domains:
        domains = [frozenset(topology.machines)]
    machines = sorted(topology.machines)
    rows: List[List[int]] = []
    for _j in range(n):
        alpha = domains[int(rng.integers(0, len(domains)))]
        base = int(rng.integers(base_range[0], base_range[1] + 1))
        rows.append([base if i in alpha else base * penalty for i in machines])
    return _bottom_up_instance(topology.family, rows)


def misaligned_instance(
    rng: np.random.Generator,
    topology: Topology,
    n: int,
    base_range: Tuple[int, int] = (4, 12),
    penalty: int = 6,
) -> Instance:
    """Mask-structured jobs whose cheap cores straddle sibling domains.

    Each job's cheap set is a transversal — one core from every child of
    the root — so no narrow mask contains two cheap cores: migrating among
    them forces the widest tier, while partitioned placement can still pin
    each job to a single cheap core.  Hostile to clustered masks.
    """
    root = frozenset(topology.machines)
    children = topology.family.children(root)
    blocks = [sorted(c) for c in children] or [sorted(root)]
    machines = sorted(topology.machines)
    rows: List[List[int]] = []
    for _j in range(n):
        cheap = {block[int(rng.integers(0, len(block)))] for block in blocks}
        base = int(rng.integers(base_range[0], base_range[1] + 1))
        rows.append([base if i in cheap else base * penalty for i in machines])
    return _bottom_up_instance(topology.family, rows)


def heavy_tailed_instance(
    rng: np.random.Generator,
    topology: Topology,
    n: int,
    shape: float = 1.2,
    scale: int = 4,
    cap: int = 64,
) -> Instance:
    """Pareto-sized migration-tolerant jobs: a few giants, many dwarfs.

    Flat profiles (no migration overhead) isolate the load-balancing
    question: the giants decide whether wrap-around splitting pays off.
    """
    machines = sorted(topology.machines)
    rows: List[List[int]] = []
    for _j in range(n):
        size = 1 + min(cap, int(rng.pareto(shape) * scale))
        rows.append([size] * len(machines))
    return _bottom_up_instance(topology.family, rows)


def near_critical_instance(
    rng: np.random.Generator,
    topology: Topology,
    n: int,
    slack_percent: int = 5,
    T_ref: int = 24,
) -> Instance:
    """The gap regime: volume within ``slack_percent`` of full capacity."""
    density = max(0.05, 1.0 - slack_percent / 100.0)
    return utilization_workload(rng, topology.family, density, T_ref)


def heterogeneous_instance(
    rng: np.random.Generator,
    topology: Topology,
    n: int,
    base_range: Tuple[int, int] = (4, 12),
) -> Instance:
    """Speed-scaled jobs: core *i* runs base work at ``base / speed(i)``.

    On a homogeneous topology this degenerates to identical machines; on a
    heterogeneous one it yields the unrelated-style asymmetry the paper's
    model absorbs through the singleton times.
    """
    machines = sorted(topology.machines)
    rows: List[List[int]] = []
    for _j in range(n):
        base = int(rng.integers(base_range[0], base_range[1] + 1))
        rows.append(
            [max(1, math.ceil(base / topology.speed(i))) for i in machines]
        )
    return _bottom_up_instance(topology.family, rows)


def budgeted_instance(
    rng: np.random.Generator,
    topology: Topology,
    n: int,
    cost_model: CostModel = None,
    base_range: Tuple[int, int] = (4, 12),
) -> Instance:
    """Migration-averse jobs paying exactly the topology's overhead budget.

    The per-level increment of mask α is ``⌈mask_overhead_budget(α)⌉`` with
    the (distance-aware) cost model — the workload whose masks price NUMA
    distance, closing the loop with :func:`repro.simulation.costs`.
    """
    cm = cost_model or CostModel.numa_like()
    family = topology.family
    machines = sorted(topology.machines)
    rows: List[List[int]] = []
    for _j in range(n):
        base = int(rng.integers(base_range[0], base_range[1] + 1))
        jitter = rng.integers(0, max(1, base // 4) + 1, size=len(machines))
        rows.append([base + int(v) for v in jitter])
    machine_pos = {i: k for k, i in enumerate(machines)}
    processing: Dict[int, Dict[MachineSet, int]] = {j: {} for j in range(n)}
    for alpha in family.bottom_up():
        if len(alpha) == 1:
            (i,) = tuple(alpha)
            for j in range(n):
                processing[j][alpha] = rows[j][machine_pos[i]]
        else:
            bump = math.ceil(mask_overhead_budget(topology, cm, alpha))
            for j in range(n):
                below = max(processing[j][beta] for beta in family.children(alpha))
                processing[j][alpha] = below + bump
    return Instance(family, processing, validate=False)


#: The family registry E17 sweeps (name → generator).
FAMILIES: Dict[str, FamilyFn] = {
    "density": density_instance,
    "aligned": aligned_instance,
    "misaligned": misaligned_instance,
    "heavy_tailed": heavy_tailed_instance,
    "near_critical": near_critical_instance,
    "heterogeneous": heterogeneous_instance,
    "budgeted": budgeted_instance,
}


def make_instance(
    family_name: str,
    rng: np.random.Generator,
    topology: Topology,
    n: int,
    **params,
) -> Instance:
    try:
        fn = FAMILIES[family_name]
    except KeyError:
        raise InvalidInstanceError(
            f"unknown workload family {family_name!r}; known: {sorted(FAMILIES)}"
        ) from None
    return fn(rng, topology, n, **params)


# ---------------------------------------------------------------------------
# Arrival families (online arrivals, experiment E18)
# ---------------------------------------------------------------------------

#: An arrival family builds an :class:`~repro.schedule.arrivals.ArrivalModel`
#: for ``n_jobs`` template jobs over planning windows of length ``period``.
#: Randomized variants derive per-job streams from *seed* through
#: :func:`~repro.workloads.generators.derive_seed`, so streams are pure
#: functions of ``(seed, job)`` — sweep-parallel safe.
ArrivalFamilyFn = Callable[[int, int, Fraction], "ArrivalModel"]


def synchronous_arrivals(seed: int, n_jobs: int, period: Fraction):
    """The baseline: every job releases at every window boundary.

    Zero offsets, zero jitter — the stream whose admission reproduces the
    cyclic reading of :func:`repro.schedule.periodic.unroll` exactly.
    """
    from ..schedule.arrivals import PeriodicArrivals

    return PeriodicArrivals(n_jobs=n_jobs, period=to_fraction(period), seed=seed)


def bursty_arrivals(
    seed: int, n_jobs: int, period: Fraction, bursts: int = 2
):
    """Jobs release in *bursts*: groups sharing one offset inside the window.

    Burst ``b`` releases at offset ``b·period/(2·bursts)`` — the second half
    of the window stays arrival-free, so late bursts wait for the next
    boundary and response times stretch by the waiting term.
    """
    from ..schedule.arrivals import PeriodicArrivals

    period = to_fraction(period)
    bursts = max(1, int(bursts))
    rng = rng_from_seed(derive_seed(seed, "bursty"))
    assignment = rng.integers(0, bursts, size=n_jobs)
    offsets = tuple(
        Fraction(int(b), 2 * bursts) * period for b in assignment
    )
    return PeriodicArrivals(
        n_jobs=n_jobs, period=period, offsets=offsets, seed=seed
    )


def harmonic_arrivals(
    seed: int, n_jobs: int, period: Fraction, multiples: Sequence[int] = (1, 2, 4)
):
    """Harmonic task set: per-job periods are 2-power multiples of the window.

    A job with multiple ``k`` releases every ``k``-th window — the light-
    load regime where most windows run a strict subset of the template's
    slots.  Deadlines stay at the *base* period so the long-period jobs are
    the slack-rich ones, as in harmonic rate-monotonic task sets.
    """
    from ..schedule.arrivals import PeriodicArrivals

    period = to_fraction(period)
    rng = rng_from_seed(derive_seed(seed, "harmonic"))
    mults = [int(multiples[int(k)]) for k in rng.integers(0, len(multiples), size=n_jobs)]
    if any(m < 1 for m in mults):
        raise InvalidInstanceError("period multiples must be ≥ 1")
    periods = tuple(period * m for m in mults)
    return PeriodicArrivals(
        n_jobs=n_jobs,
        period=period,
        periods=periods,
        relative_deadline=period,
        seed=seed,
    )


def jittered_arrivals(
    seed: int, n_jobs: int, period: Fraction, jitter_fraction: Fraction = Fraction(1, 4)
):
    """Periodic releases with exact per-instance jitter in
    ``[0, jitter_fraction·period]``.

    Jitter pushes a release past its window boundary, sliding the instance
    to the next window: the classic release-jitter response-time penalty.
    """
    from ..schedule.arrivals import PeriodicArrivals

    period = to_fraction(period)
    return PeriodicArrivals(
        n_jobs=n_jobs,
        period=period,
        jitter=to_fraction(jitter_fraction) * period,
        seed=seed,
    )


def sporadic_arrivals(
    seed: int, n_jobs: int, period: Fraction, slack_fraction: Fraction = Fraction(1, 4)
):
    """Sporadic tasks: minimum interarrival = the window, random extra slack.

    Releases drift later over time, so windows alternate between serving a
    fresh instance and idling — the under-load regime semi-partitioned
    admission handles natively.
    """
    from ..schedule.arrivals import SporadicArrivals

    period = to_fraction(period)
    return SporadicArrivals(
        n_jobs=n_jobs,
        min_interarrival=period,
        max_slack=to_fraction(slack_fraction) * period,
        relative_deadline=period,
        seed=seed,
    )


#: The arrival-family registry E18 sweeps (name → builder).
ARRIVAL_FAMILIES: Dict[str, ArrivalFamilyFn] = {
    "synchronous": synchronous_arrivals,
    "bursty": bursty_arrivals,
    "harmonic": harmonic_arrivals,
    "jittered": jittered_arrivals,
    "sporadic": sporadic_arrivals,
}


def make_arrivals(
    family_name: str, seed: int, n_jobs: int, period: Fraction, **params
):
    """Build the named arrival family's model (E18's entry point)."""
    try:
        fn = ARRIVAL_FAMILIES[family_name]
    except KeyError:
        raise InvalidInstanceError(
            f"unknown arrival family {family_name!r}; "
            f"known: {sorted(ARRIVAL_FAMILIES)}"
        ) from None
    return fn(seed, n_jobs, period, **params)


# ---------------------------------------------------------------------------
# Fallback-stress packing programs (Lemma VI.2 off the happy path)
# ---------------------------------------------------------------------------


@dataclass
class StressProgram:
    """An assignment+packing program for :func:`repro.rounding.iterative_round`.

    ``rho`` is the *declared* drop threshold (``rho_scale × true_rho``);
    passing it to ``iterative_round`` reproduces the stress regime, while
    passing ``None`` (→ ``true_rho``) exercises the certified-only path.
    """

    groups: Dict[Hashable, List]
    rows: List[PackingRow]
    costs: Dict[Hashable, Fraction]
    rho: Fraction
    true_rho: Fraction
    cycle: int = 0


def fallback_stress_program(
    cycle: int = 3,
    rho_scale: Fraction = Fraction(1, 2),
    alpha: Fraction = Fraction(1),
    beta: Fraction = Fraction(1, 2),
    bound: Fraction = Fraction(3, 4),
    bound_jitter_denom: int = 0,
    seed: int = 0,
) -> StressProgram:
    """A packing program whose LP vertex is locked on a cycle of tight rows.

    Construction: ``cycle`` groups ``G_i = {x_i, y_i}`` and rows ``R_i``
    with ``x_i`` weighing ``alpha`` on ``R_i`` and ``y_i`` weighing ``beta``
    on ``R_{i+1 mod cycle}``; costs 0 on the ``x`` side and 1 on the ``y``
    side.  Minimizing cost maximizes ``Σ x_i``, whose unique optimum makes
    *every* row tight (summing the per-row bounds shows the slack telescopes
    when ``alpha ≠ beta``), so the LP lands on the fully fractional locked
    vertex — nothing rounds to 0/1 and every row keeps two fractional
    variables.

    At that vertex each row has fractional weight ``F = alpha + beta``
    against threshold ``ρ·b + (b − W)``; with the default numbers the
    certified rules fire iff the declared ``ρ = rho_scale × column_rho``
    satisfies ``rho_scale ≥ 3/4``.  Below that the fallback fires; below
    ``1/4`` the achieved usage exceeds ``(1+ρ)·b`` and the self-
    certification raises.  ``bound_jitter_denom`` perturbs the row bounds
    (``b_i = bound ± k/denom`` drawn from *seed*) to de-symmetrize the
    instance without unlocking the vertex.
    """
    if cycle < 2:
        raise InvalidInstanceError("need a cycle of ≥ 2 rows")
    alpha, beta = Fraction(alpha), Fraction(beta)
    if alpha == beta:
        raise InvalidInstanceError(
            "alpha must differ from beta (equal coefficients make the cycle "
            "rows linearly dependent on the group equalities)"
        )
    rng = np.random.default_rng(seed)
    bounds: List[Fraction] = []
    for _i in range(cycle):
        b = Fraction(bound)
        if bound_jitter_denom:
            b += Fraction(int(rng.integers(0, 2)), bound_jitter_denom)
        if not beta < b < alpha + beta:
            raise InvalidInstanceError(
                f"row bound {b} must lie strictly between beta and "
                f"alpha + beta for an interior locked vertex"
            )
        bounds.append(b)
    groups: Dict[Hashable, List] = {}
    costs: Dict[Hashable, Fraction] = {}
    coeffs: List[Dict] = [dict() for _ in range(cycle)]
    for i in range(cycle):
        x, y = ("x", i), ("y", i)
        groups[i] = [x, y]
        coeffs[i][x] = alpha
        coeffs[(i + 1) % cycle][y] = beta
        costs[x], costs[y] = Fraction(0), Fraction(1)
    rows = [PackingRow(f"R{i}", coeffs[i], bounds[i]) for i in range(cycle)]
    true_rho = column_rho(groups, rows)
    return StressProgram(
        groups=groups,
        rows=rows,
        costs=costs,
        rho=Fraction(rho_scale) * true_rho,
        true_rho=true_rho,
        cycle=cycle,
    )
