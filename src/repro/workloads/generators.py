"""Random workload generators with monotone mask-dependent processing times.

All generators take a :class:`numpy.random.Generator` so every experiment is
reproducible from a seed, and build times **bottom-up** so monotonicity holds
by construction:

    P_j({i})   = base singleton time (unrelated-style, with optional
                 per-job machine affinity),
    P_j(α)     = max over children β of P_j(β)  +  overhead_j(α),

with non-negative overhead increments.  The increment is where the migration
cost story lives: :func:`instance_from_topology` draws it from the topology's
cost model via :func:`repro.simulation.costs.mask_overhead_budget`, i.e. a
wider mask pays exactly the worst-case migration budget of its domain.

Per-job *flexibility* interpolates between migration-tolerant jobs (flat
profiles — bigger masks cost nothing extra, so hierarchy purely helps load
balancing, as in Example II.1's job 3) and pinned specialists (cheap on one
machine, expensive elsewhere — Example II.1's jobs 1 and 2).
"""

from __future__ import annotations

import hashlib
import math
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .._fraction import INF, to_fraction
from ..core.assignment import Assignment, min_T_for_assignment
from ..core.instance import Instance
from ..core.laminar import LaminarFamily, MachineSet
from ..exceptions import InvalidInstanceError
from ..simulation.costs import CostModel, mask_overhead_budget
from ..simulation.topology import Topology


def rng_from_seed(seed: int) -> np.random.Generator:
    """The package-standard way to get a reproducible generator."""
    return np.random.default_rng(seed)


def derive_seed(root_seed: int, *components: Union[int, str]) -> int:
    """A stable per-task seed from a root seed and a path of components.

    The sweep runner (:mod:`repro.runner`) shards one sweep into many
    ``(experiment, params, replicate)`` tasks; each task's seed is derived
    here so that results are a pure function of *what* the task is — never
    of which worker ran it or in what order.  That is the property that
    makes ``--jobs N`` output bit-identical to serial runs.

    Implementation: SHA-256 over the root seed and the stringified
    components, folded to a non-negative 63-bit integer (valid NumPy
    ``default_rng`` seed).  Changing any component decorrelates the stream.
    """
    parts = [str(int(root_seed))] + [str(c) for c in components]
    digest = hashlib.sha256("\x1f".join(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def random_laminar_family(
    rng: np.random.Generator,
    m: int,
    split_probability: float = 0.7,
    max_children: int = 3,
    include_singletons: bool = True,
) -> LaminarFamily:
    """A random tree-shaped laminar family over *m* machines.

    Recursively partitions the machine set: each block of size ≥ 2 splits
    into 2…*max_children* parts with the given probability.  Singletons are
    appended when requested (they are w.l.o.g. for Section V anyway).
    """
    if m < 1:
        raise InvalidInstanceError("m must be ≥ 1")
    sets: List[frozenset] = [frozenset(range(m))]

    def split(block: Sequence[int]) -> None:
        if len(block) < 2 or rng.random() > split_probability:
            return
        parts = int(rng.integers(2, min(max_children, len(block)) + 1))
        shuffled = list(block)
        rng.shuffle(shuffled)
        cuts = sorted(rng.choice(range(1, len(block)), size=parts - 1, replace=False))
        pieces = []
        prev = 0
        for cut in list(cuts) + [len(block)]:
            pieces.append(shuffled[prev:cut])
            prev = cut
        for piece in pieces:
            if len(piece) >= 2:
                sets.append(frozenset(piece))
                split(piece)

    split(list(range(m)))
    if include_singletons:
        for i in range(m):
            sets.append(frozenset([i]))
    return LaminarFamily(range(m), set(sets))


def _base_singleton_times(
    rng: np.random.Generator,
    n: int,
    m: int,
    base_range: Tuple[int, int],
    specialist_fraction: float,
    specialist_penalty: int,
) -> List[List[int]]:
    """Integer singleton times; specialists are cheap on one machine only."""
    lo, hi = base_range
    if not 1 <= lo <= hi:
        raise InvalidInstanceError(f"bad base range {base_range}")
    times: List[List[int]] = []
    for j in range(n):
        base = int(rng.integers(lo, hi + 1))
        if rng.random() < specialist_fraction:
            home = int(rng.integers(0, m))
            row = [base * specialist_penalty] * m
            row[home] = base
        else:
            jitter = rng.integers(0, max(1, base // 4) + 1, size=m)
            row = [base + int(v) for v in jitter]
        times.append(row)
    return times


def monotone_instance(
    rng: np.random.Generator,
    family: LaminarFamily,
    n: int,
    base_range: Tuple[int, int] = (1, 20),
    overhead_range: Tuple[int, int] = (0, 3),
    flexible_fraction: float = 0.5,
    specialist_fraction: float = 0.25,
    specialist_penalty: int = 8,
) -> Instance:
    """A random instance on *family* with bottom-up monotone times.

    ``flexible_fraction`` of the jobs get zero overhead increments (flat
    profiles up their chain); the rest pay a random per-level increment from
    *overhead_range* — migration-averse jobs.
    """
    if not family.has_all_singletons:
        family = family.with_singletons()
    m = family.m
    machine_list = sorted(family.machines)
    machine_pos = {i: k for k, i in enumerate(machine_list)}
    singleton_times = _base_singleton_times(
        rng, n, m, base_range, specialist_fraction, specialist_penalty
    )
    flexible = [rng.random() < flexible_fraction for _ in range(n)]
    processing: Dict[int, Dict[frozenset, int]] = {j: {} for j in range(n)}
    for alpha in family.bottom_up():
        for j in range(n):
            if len(alpha) == 1:
                (i,) = tuple(alpha)
                processing[j][alpha] = singleton_times[j][machine_pos[i]]
            else:
                below = max(
                    processing[j][beta] for beta in family.children(alpha)
                )
                uncovered = family.uncovered(alpha)
                if uncovered:  # pragma: no cover - singletons guarantee cover
                    below = max(
                        [below]
                        + [singleton_times[j][machine_pos[i]] for i in uncovered]
                    )
                if flexible[j]:
                    increment = 0
                else:
                    increment = int(rng.integers(overhead_range[0], overhead_range[1] + 1))
                processing[j][alpha] = below + increment
    return Instance(family, processing)


def random_semi_partitioned(
    rng: np.random.Generator,
    n: int,
    m: int,
    **kwargs,
) -> Instance:
    """A random instance on the two-level family ``{M} ∪ singletons``."""
    return monotone_instance(rng, LaminarFamily.semi_partitioned(m), n, **kwargs)


def random_hierarchical(
    rng: np.random.Generator,
    n: int,
    m: int,
    split_probability: float = 0.7,
    **kwargs,
) -> Instance:
    """A random instance on a random tree family over *m* machines."""
    family = random_laminar_family(rng, m, split_probability=split_probability)
    return monotone_instance(rng, family, n, **kwargs)


def instance_from_topology(
    rng: np.random.Generator,
    topology: Topology,
    cost_model: CostModel,
    n: int,
    base_range: Tuple[int, int] = (2, 30),
    flexible_fraction: float = 0.5,
    specialist_fraction: float = 0.25,
    specialist_penalty: int = 8,
) -> Tuple[Instance, Dict[int, int]]:
    """An instance whose mask overheads are *exactly* the migration budgets.

    Returns ``(instance, base_work)`` where ``base_work[j]`` is the pure
    computation content.  ``P_j(α) = base-profile + ceil(budget(α))`` with
    ``budget`` from :func:`mask_overhead_budget`, so
    :func:`repro.simulation.engine.check_overhead_budgets` holds by
    construction for any schedule whose per-job transitions respect
    Proposition III.2's per-mask counts.
    """
    family = topology.family
    m = family.m
    machine_list = sorted(family.machines)
    machine_pos = {i: k for k, i in enumerate(machine_list)}
    singleton_times = _base_singleton_times(
        rng, n, m, base_range, specialist_fraction, specialist_penalty
    )
    flexible = [rng.random() < flexible_fraction for _ in range(n)]
    base_work: Dict[int, int] = {}
    processing: Dict[int, Dict[frozenset, Union[int, Fraction]]] = {
        j: {} for j in range(n)
    }
    for j in range(n):
        base_work[j] = min(singleton_times[j])
    for alpha in family.bottom_up():
        budget = mask_overhead_budget(topology, cost_model, alpha)
        for j in range(n):
            if len(alpha) == 1:
                (i,) = tuple(alpha)
                processing[j][alpha] = singleton_times[j][machine_pos[i]]
            else:
                below = max(processing[j][beta] for beta in family.children(alpha))
                scale = Fraction(1, 4) if flexible[j] else Fraction(1)
                processing[j][alpha] = to_fraction(below) + scale * budget
    return Instance(family, processing), base_work


def random_feasible_pair(
    rng: np.random.Generator,
    instance: Instance,
    slack_numerator: int = 0,
    slack_denominator: int = 10,
) -> Tuple[Assignment, Fraction]:
    """A uniformly random assignment plus a horizon that makes it feasible.

    Every job picks an admissible set with finite time uniformly at random;
    ``T`` is the assignment's exact minimum (Theorem IV.3), optionally
    inflated by ``1 + slack_numerator/slack_denominator`` to exercise
    schedules with idle time.  This is the workhorse of the scheduler
    property tests: any returned pair satisfies (IP-2) by construction.
    """
    masks: Dict[int, MachineSet] = {}
    for j in range(instance.n):
        choices = instance.allowed_sets(j)
        if not choices:
            raise InvalidInstanceError(f"job {j} has no admissible set")
        masks[j] = choices[int(rng.integers(0, len(choices)))]
    assignment = Assignment(masks)
    T = min_T_for_assignment(instance, assignment)
    if slack_numerator:
        T = T * (1 + Fraction(slack_numerator, slack_denominator))
    return assignment, T


def scale_to_utilization(
    instance: Instance,
    target_utilization: Fraction,
    reference_T: Union[int, Fraction],
) -> Fraction:
    """The system utilization ``Σ_j min_α P_j(α) / (m · T_ref)`` of an instance.

    Returned for reporting; generators control utilization through ``n`` and
    *base_range* rather than post-scaling (integer times stay integer).
    """
    total = sum((to_fraction(instance.min_p(j)) for j in range(instance.n)), Fraction(0))
    return total / (instance.m * to_fraction(reference_T))


def utilization_workload(
    rng: np.random.Generator,
    family: LaminarFamily,
    utilization: float,
    reference_T: int,
    overhead_range: Tuple[int, int] = (0, 2),
    flexible_fraction: float = 0.5,
    specialist_fraction: float = 0.25,
    specialist_penalty: int = 6,
    min_job: Optional[int] = None,
    max_job: Optional[int] = None,
) -> Instance:
    """An instance with total cheapest volume ≈ ``utilization · m · T_ref``.

    The workhorse of the schedulability study (experiment E15): jobs are
    drawn until the target volume is reached, job sizes between ``T_ref/8``
    and ``T_ref/2`` by default (the coarse-grain regime where scheduler
    class matters), with the usual specialist/flexible mix.
    """
    if not 0 < utilization <= 1.2:
        raise InvalidInstanceError(f"utilization {utilization} out of range")
    m = family.m
    budget = int(round(utilization * m * reference_T))
    lo = min_job if min_job is not None else max(1, reference_T // 8)
    hi = max_job if max_job is not None else max(lo, reference_T // 2)
    sizes: List[int] = []
    remaining = budget
    while remaining > 0:
        size = int(rng.integers(lo, hi + 1))
        size = min(size, remaining) if remaining >= lo else remaining
        sizes.append(max(1, size))
        remaining -= sizes[-1]

    if not family.has_all_singletons:
        family = family.with_singletons()
    machine_list = sorted(family.machines)
    machine_pos = {i: k for k, i in enumerate(machine_list)}
    n = len(sizes)
    flexible = [rng.random() < flexible_fraction for _ in range(n)]
    processing: Dict[int, Dict[frozenset, int]] = {j: {} for j in range(n)}
    singleton_times: List[List[int]] = []
    for j, base in enumerate(sizes):
        if rng.random() < specialist_fraction:
            home = int(rng.integers(0, m))
            row = [min(base * specialist_penalty, base + reference_T)] * m
            row[home] = base
        else:
            row = [base] * m
        singleton_times.append(row)
    for alpha in family.bottom_up():
        for j in range(n):
            if len(alpha) == 1:
                (i,) = tuple(alpha)
                processing[j][alpha] = singleton_times[j][machine_pos[i]]
            else:
                below = max(processing[j][beta] for beta in family.children(alpha))
                increment = 0 if flexible[j] else int(
                    rng.integers(overhead_range[0], overhead_range[1] + 1)
                )
                processing[j][alpha] = below + increment
    return Instance(family, processing)
