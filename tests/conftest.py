"""Shared fixtures for the test suite."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro import INF, Assignment, Instance, LaminarFamily
from repro.workloads import example_ii1, example_v1, rng_from_seed


@pytest.fixture
def rng():
    """Deterministic RNG; tests that need different streams reseed locally."""
    return rng_from_seed(12345)


@pytest.fixture
def family_semi_4() -> LaminarFamily:
    return LaminarFamily.semi_partitioned(4)


@pytest.fixture
def family_clustered_4() -> LaminarFamily:
    return LaminarFamily.clustered(4, 2)


@pytest.fixture
def instance_ii1() -> Instance:
    """Example II.1 with INF sentinels."""
    return example_ii1()


@pytest.fixture
def instance_ii1_big() -> Instance:
    """Example II.1 with a large finite constant instead of INF."""
    return example_ii1(use_inf=False)


@pytest.fixture
def assignment_ii1() -> Assignment:
    return Assignment({0: frozenset({0}), 1: frozenset({1}), 2: frozenset({0, 1})})


@pytest.fixture
def small_hierarchical() -> Instance:
    """A 3-level instance: {0,1,2,3} ⊃ {0,1}, {2,3} ⊃ singletons."""
    family = LaminarFamily.clustered(4, 2)
    processing = {}
    for j in range(5):
        processing[j] = {}
        for alpha in family.sets:
            base = 2 + (j % 3)
            processing[j][alpha] = base + len(alpha) - 1
    return Instance(family, processing)
