"""Tests for the Theorem V.2 2-approximation and the exact solver."""

from fractions import Fraction

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import (
    Instance,
    LaminarFamily,
    minimal_fractional_T,
    solve_exact,
    two_approximation,
    validate_schedule,
)
from repro.exceptions import InfeasibleError, SolverError
from repro.workloads import (
    example_ii1,
    example_v1,
    example_v1_optimal_assignment,
    random_hierarchical,
    random_semi_partitioned,
    rng_from_seed,
)


class TestSolveExact:
    def test_example_ii1_optimum(self, instance_ii1):
        result = solve_exact(instance_ii1)
        assert result.optimum == 2
        assert result.assignment[2] == frozenset({0, 1})

    def test_example_v1_series(self):
        for n in (3, 4, 6):
            inst = example_v1(n)
            result = solve_exact(inst)
            assert result.optimum == n - 1
            _opt_assign, opt = example_v1_optimal_assignment(n)
            assert result.optimum == opt

    def test_schedule_buildable(self, instance_ii1):
        result = solve_exact(instance_ii1)
        schedule = result.build_schedule(instance_ii1)
        assert validate_schedule(instance_ii1, result.assignment, schedule).valid

    def test_matches_brute_force_on_tiny_instances(self):
        from itertools import product

        from repro.core.assignment import Assignment, min_T_for_assignment

        rng = rng_from_seed(21)
        for _ in range(5):
            inst = random_hierarchical(rng, n=3, m=3)
            sets = inst.family.sets
            best = None
            for combo in product(range(len(sets)), repeat=3):
                try:
                    a = Assignment({j: sets[combo[j]] for j in range(3)})
                    T = min_T_for_assignment(inst, a)
                except Exception:
                    continue
                if best is None or T < best:
                    best = T
            assert solve_exact(inst).optimum == best

    def test_upper_bound_hint_does_not_change_result(self, instance_ii1):
        plain = solve_exact(instance_ii1)
        hinted = solve_exact(instance_ii1, upper_bound=10)
        assert plain.optimum == hinted.optimum

    def test_infeasible_job_raises(self):
        from repro import INF

        fam = LaminarFamily.global_only(2)
        inst = Instance(fam, {0: {frozenset({0, 1}): INF}})
        with pytest.raises(InfeasibleError):
            solve_exact(inst)

    def test_node_limit(self):
        rng = rng_from_seed(3)
        inst = random_hierarchical(rng, n=8, m=4)
        with pytest.raises(SolverError):
            solve_exact(inst, node_limit=2)


class TestTwoApproximation:
    def test_example_ii1(self, instance_ii1):
        result = two_approximation(instance_ii1)
        assert result.T_lp == 2
        assert result.makespan <= result.bound
        assert result.ratio_vs_lp <= 2

    def test_schedule_valid_in_extended_instance(self, instance_ii1):
        result = two_approximation(instance_ii1)
        report = validate_schedule(result.instance, result.assignment, result.schedule)
        assert report.valid

    def test_original_masks_map_back(self, instance_ii1):
        result = two_approximation(instance_ii1)
        masks = result.original_masks()
        for j in masks:
            assert masks[j] in instance_ii1.family

    def test_pushdown_certificate_path(self, instance_ii1):
        result = two_approximation(instance_ii1, use_pushdown_certificate=True)
        assert result.makespan <= 2 * result.T_lp

    def test_family_without_singletons(self):
        # Theorem V.2 requires the w.l.o.g. singleton completion; check the
        # pipeline performs it internally.
        fam = LaminarFamily([0, 1], [[0, 1]])
        inst = Instance(fam, {0: {frozenset({0, 1}): 4}, 1: {frozenset({0, 1}): 4}})
        result = two_approximation(inst)
        assert result.makespan <= result.bound
        assert result.instance.family.has_all_singletons

    def test_identical_machines_load_balance(self):
        inst = Instance.identical(3, [5, 5, 5])
        result = two_approximation(inst)
        # T* = 5; each job lands alone on a machine: makespan exactly 5.
        assert result.T_lp == 5
        assert result.makespan == 5

    def test_scipy_backend(self, instance_ii1):
        result = two_approximation(instance_ii1, backend="scipy")
        assert result.makespan <= result.bound

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 10**6))
    def test_theorem_v2_bound_random_semi_partitioned(self, seed):
        rng = rng_from_seed(seed)
        inst = random_semi_partitioned(
            rng, n=int(rng.integers(2, 6)), m=int(rng.integers(2, 4))
        )
        result = two_approximation(inst)
        assert result.makespan <= 2 * result.T_lp
        report = validate_schedule(result.instance, result.assignment, result.schedule)
        assert report.valid

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 10**6))
    def test_theorem_v2_bound_random_hierarchical(self, seed):
        rng = rng_from_seed(seed)
        inst = random_hierarchical(
            rng, n=int(rng.integers(2, 6)), m=int(rng.integers(2, 5))
        )
        result = two_approximation(inst, use_pushdown_certificate=True)
        assert result.makespan <= 2 * result.T_lp

    def test_ratio_vs_exact_at_most_2(self):
        rng = rng_from_seed(99)
        for _ in range(6):
            inst = random_hierarchical(rng, n=int(rng.integers(2, 5)), m=3)
            approx = two_approximation(inst)
            exact = solve_exact(inst)
            assert approx.makespan <= 2 * exact.optimum
            assert exact.optimum >= approx.T_lp


class TestFindAssignmentWithin:
    def test_witness_at_optimum(self, instance_ii1):
        from repro.core.exact import find_assignment_within
        from repro import min_T_for_assignment

        witness = find_assignment_within(instance_ii1, 2)
        assert witness is not None
        assert min_T_for_assignment(instance_ii1, witness) <= 2

    def test_no_witness_below_optimum(self, instance_ii1):
        from repro.core.exact import find_assignment_within

        assert find_assignment_within(instance_ii1, 1) is None

    def test_agrees_with_solve_exact_random(self):
        from fractions import Fraction

        from repro.core.exact import find_assignment_within
        from repro import solve_exact
        from repro.workloads import random_hierarchical, rng_from_seed

        rng = rng_from_seed(66)
        for _ in range(6):
            inst = random_hierarchical(rng, n=4, m=3)
            opt = solve_exact(inst).optimum
            assert find_assignment_within(inst, opt) is not None
            if opt > 0:
                assert find_assignment_within(inst, opt - Fraction(1, 1000)) is None


class TestEdgeCases:
    def test_zero_length_jobs_through_pipeline(self):
        inst = Instance.semi_partitioned(
            p_local=[[0, 0], [2, 2]], p_global=[0, 3]
        )
        result = two_approximation(inst)
        assert result.makespan <= result.bound
        assert validate_schedule(
            result.instance, result.assignment, result.schedule
        ).valid

    def test_single_machine_instance(self):
        inst = Instance.unrelated([[3], [4]])
        result = two_approximation(inst)
        assert result.T_lp == 7
        assert result.makespan == 7
        assert solve_exact(inst).optimum == 7

    def test_single_job_prefers_cheapest_mask(self):
        inst = Instance.semi_partitioned(p_local=[[5, 2]], p_global=[6])
        result = two_approximation(inst)
        assert result.makespan == 2
        assert solve_exact(inst).optimum == 2

    def test_all_jobs_identical_times(self):
        inst = Instance.semi_partitioned(
            p_local=[[4, 4]] * 4, p_global=[4] * 4
        )
        exact = solve_exact(inst)
        assert exact.optimum == 8  # two per machine; migration buys nothing
